//! Snapshot codec back-compat: golden v2 and v3 files decode under the
//! v4 codec.
//!
//! The cache's compatibility promise (`MIN_VERSION = 2`) says entries
//! written by older releases keep serving after an upgrade. These tests
//! pin that promise to *actual committed bytes*: genuine version-2 and
//! version-3 files live in `tests/data/`, and every release must keep
//! decoding them to the same semantic snapshot the deterministic rebuild
//! produces today — key, stream, records, certification — with the
//! version-appropriate defaults for fields the old layouts predate
//! (v2 has no transport tail, so it decodes as an inproc build with no
//! message stats).
//!
//! The fixtures are regenerated only after an *intentional* stream or
//! codec change:
//!
//! ```text
//! USNAE_REGEN_GOLDEN=1 cargo test --test snapshot_backcompat
//! git add tests/data && git commit
//! ```
//!
//! (Timings embedded in the STATS section change on regen — that is
//! expected; the tests never compare them.)

mod common;

use common::{fixture_graphs, golden_config};
use std::path::PathBuf;
use usnae::api::{BuildConfig, PartitionPolicy, TransportKind};
use usnae::core::cache::{CacheKey, Snapshot, MIN_VERSION, VERSION};
use usnae::registry;

fn regen_requested() -> bool {
    std::env::var("USNAE_REGEN_GOLDEN").is_ok_and(|v| v == "1")
}

fn fixture_path(tag: &str, algo: &str, version: u32) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(format!("{tag}.{algo}.v{version}.usnae-snap"))
}

/// The legacy fixture matrix: one single-stream v2 file and one v3 file
/// whose transport tail actually carries worker-pool message stats.
fn fixture_cases() -> Vec<(&'static str, &'static str, u32, BuildConfig)> {
    vec![
        ("grid8x8", "centralized", 2, golden_config()),
        (
            "ring48",
            "centralized",
            3,
            BuildConfig {
                shards: 2,
                partition: PartitionPolicy::DegreeBalanced,
                transport: TransportKind::Channel,
                ..golden_config()
            },
        ),
    ]
}

/// Rebuilds the snapshot a fixture was generated from. Constructions are
/// pure functions of `(graph, config)`, so everything except wall-clock
/// stats is reproducible at any commit.
fn rebuild(tag: &str, algo: &str, cfg: &BuildConfig) -> Snapshot {
    let (_, g) = fixture_graphs()
        .into_iter()
        .find(|(t, _)| *t == tag)
        .unwrap_or_else(|| panic!("unknown fixture graph {tag}"));
    let c = registry::find(algo).unwrap_or_else(|| panic!("unknown algorithm {algo}"));
    let out = c
        .build(&g, cfg)
        .unwrap_or_else(|e| panic!("{algo} on {tag}: {e}"));
    Snapshot::from_output(CacheKey::new(&g, algo, cfg), &out)
}

/// Field-wise equality on everything a legacy file is required to
/// preserve — all semantic content; never the embedded timings.
fn assert_semantically_equal(decoded: &Snapshot, want: &Snapshot, what: &str) {
    assert_eq!(decoded.key, want.key, "{what}: cache key");
    assert_eq!(
        decoded.stream_fingerprint, want.stream_fingerprint,
        "{what}: stream fingerprint"
    );
    assert_eq!(decoded.num_vertices, want.num_vertices, "{what}: n");
    assert_eq!(decoded.records, want.records, "{what}: insertion records");
    assert_eq!(decoded.certified, want.certified, "{what}: certified pair");
    assert_eq!(decoded.size_bound, want.size_bound, "{what}: size bound");
    assert_eq!(decoded.congest, want.congest, "{what}: congest stats");
}

#[test]
fn golden_v2_and_v3_snapshots_decode_under_the_v4_codec() {
    for (tag, algo, version, cfg) in fixture_cases() {
        assert!((MIN_VERSION..VERSION).contains(&version));
        let want = rebuild(tag, algo, &cfg);
        let path = fixture_path(tag, algo, version);
        if regen_requested() {
            std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/data");
            std::fs::write(&path, want.encode_version(version))
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        }
        let bytes = std::fs::read(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden snapshot {} ({e}); regenerate with \
                 `USNAE_REGEN_GOLDEN=1 cargo test --test snapshot_backcompat` \
                 and commit tests/data",
                path.display()
            )
        });
        assert_eq!(
            u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
            version,
            "{}: fixture does not carry the version it claims",
            path.display()
        );
        let decoded = Snapshot::decode(&bytes).unwrap_or_else(|e| {
            panic!(
                "golden v{version} snapshot {} no longer decodes: {e}",
                path.display()
            )
        });
        assert_semantically_equal(&decoded, &want, &format!("{tag}.{algo}.v{version}"));
        match version {
            // v2 predates worker transports: the decoder must default the
            // tail, not invent one.
            2 => {
                assert_eq!(decoded.stats.transport, TransportKind::Inproc);
                assert!(decoded.stats.messages.is_none());
            }
            // v3 carries the transport tail; this fixture was a channel
            // worker-pool build, so its message stats must survive.
            3 => {
                assert_eq!(decoded.stats.transport, TransportKind::Channel);
                assert!(
                    decoded.stats.messages.is_some(),
                    "v3 fixture lost its worker message stats"
                );
            }
            _ => unreachable!(),
        }
    }
}

#[test]
fn legacy_snapshots_reencode_to_v4_and_round_trip() {
    // The upgrade path a long-lived cache directory takes: decode an old
    // entry, re-encode at the current version (gaining the section
    // directory and the EMU_CSR serving image), decode again. Nothing
    // semantic may change, and the re-encoded file must pass the v4
    // decoder's stricter checks (directory bounds, EMU recomputation).
    for (tag, algo, version, _cfg) in fixture_cases() {
        let path = fixture_path(tag, algo, version);
        let Ok(bytes) = std::fs::read(&path) else {
            continue; // the decode test reports missing fixtures
        };
        let decoded = Snapshot::decode(&bytes).expect("fixture decodes");
        let reencoded = decoded.encode();
        assert_eq!(
            u32::from_le_bytes(reencoded[8..12].try_into().unwrap()),
            VERSION,
            "re-encode must produce the current version"
        );
        let round = Snapshot::decode(&reencoded)
            .unwrap_or_else(|e| panic!("v{version}->v4 re-encode of {tag}.{algo} broke: {e}"));
        assert_eq!(
            round, decoded,
            "{tag}.{algo}: v{version}->v4 round trip changed the snapshot"
        );
    }
}

#[test]
fn legacy_reencode_at_same_version_is_byte_stable() {
    // decode ∘ encode is the identity on the legacy layouts too: decoding
    // an old file and re-encoding it at its own version reproduces the
    // committed bytes exactly. This pins the legacy writers, so the
    // fixtures cannot silently drift out of reach of `encode_version`.
    for (tag, algo, version, _cfg) in fixture_cases() {
        let path = fixture_path(tag, algo, version);
        let Ok(bytes) = std::fs::read(&path) else {
            continue; // the decode test reports missing fixtures
        };
        let decoded = Snapshot::decode(&bytes).expect("fixture decodes");
        assert_eq!(
            decoded.encode_version(version),
            bytes,
            "{tag}.{algo}: encode_version({version}) no longer reproduces the \
             committed fixture byte-for-byte"
        );
    }
}
