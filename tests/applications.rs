//! Integration tests for the application layer: distance oracle, hopset
//! view, I/O roundtrips, and the distributed spanner driver — the pieces a
//! downstream user of the library touches first.

use usnae::api::{Algorithm, Emulator};
use usnae::core::hopset::{bounded_hop_distances, measure_hopbound};
use usnae::core::oracle::ApproxDistanceOracle;
use usnae::core::verify::is_subgraph_spanner;
use usnae::graph::distance::{exact_pair_distances, sample_pairs, Apsp};
use usnae::graph::{generators, io as gio};

#[test]
fn oracle_guarantee_holds_across_suite() {
    for w in usnae::eval::workloads::standard_suite(120, 3)
        .into_iter()
        .take(5)
    {
        let g = &w.graph;
        let oracle = ApproxDistanceOracle::build(g, 0.5, 4).unwrap();
        let (alpha, beta) = oracle.guarantee();
        let apsp = Apsp::new(g);
        for (u, v) in sample_pairs(g, 80, 9) {
            let exact = apsp.distance(u, v).unwrap();
            let approx = oracle
                .query(u, v)
                .unwrap_or_else(|| panic!("{}: pair ({u},{v}) unanswered", w.name));
            assert!(approx >= exact, "{}", w.name);
            assert!(
                approx as f64 <= alpha * exact as f64 + beta,
                "{}: ({u},{v}) {approx} vs {alpha}*{exact}+{beta}",
                w.name
            );
        }
    }
}

#[test]
fn oracle_structure_much_sparser_than_dense_input() {
    let n = 600;
    let g = generators::gnp_connected(n, 30.0 / n as f64, 7).unwrap();
    let oracle = ApproxDistanceOracle::build(&g, 0.5, 8).unwrap();
    assert!(
        oracle.num_edges() * 3 < g.num_edges(),
        "oracle {} vs graph {}",
        oracle.num_edges(),
        g.num_edges()
    );
}

#[test]
fn hopset_union_never_shortens_below_graph_distance() {
    let g = generators::gnp_connected(100, 0.06, 5).unwrap();
    let oracle = ApproxDistanceOracle::build(&g, 0.5, 4).unwrap();
    let layers = bounded_hop_distances(&g, oracle.emulator(), 0, 12);
    let exact = usnae::graph::bfs::bfs(&g, 0);
    for layer in &layers {
        for v in 0..100 {
            if let (Some(hop), Some(dg)) = (layer[v], exact[v]) {
                assert!(hop >= dg, "vertex {v}: {hop} < {dg}");
            }
        }
    }
}

#[test]
fn hopbound_improves_with_emulator_on_grid() {
    let g = generators::grid2d(14, 14).unwrap();
    let out = Emulator::builder(&g)
        .kappa(8)
        .raw_epsilon(true)
        .order(usnae::api::ProcessingOrder::ByDegreeDesc)
        .build()
        .unwrap();
    let (alpha, beta) = out.certified.unwrap();
    let h = out.emulator;
    let pairs = sample_pairs(&g, 60, 3);
    let exact = exact_pair_distances(&g, &pairs);
    let empty = usnae::core::Emulator::new(g.num_vertices());
    let plain = measure_hopbound(&g, &empty, &pairs, &exact, alpha, beta, 40);
    let union = measure_hopbound(&g, &h, &pairs, &exact, alpha, beta, 40);
    let (Some(p_hb), Some(u_hb)) = (plain.hopbound, union.hopbound) else {
        panic!("both should resolve within 40 hops: {plain:?} {union:?}")
    };
    assert!(u_hb <= p_hb, "union {u_hb} vs plain {p_hb}");
}

#[test]
fn emulator_roundtrips_through_edge_list_files() {
    let g = generators::gnp_connected(80, 0.08, 11).unwrap();
    let oracle = ApproxDistanceOracle::build(&g, 0.5, 4).unwrap();
    let mut buf = Vec::new();
    gio::write_weighted_edge_list(oracle.emulator().graph(), &mut buf).unwrap();
    let back = gio::read_weighted_edge_list(buf.as_slice(), 80).unwrap();
    assert_eq!(back.num_edges(), oracle.num_edges());
    // Distances agree after the roundtrip.
    let before = usnae::graph::dijkstra::dijkstra(oracle.emulator().graph(), 0);
    let after = usnae::graph::dijkstra::dijkstra(&back, 0);
    assert_eq!(before, after);
}

#[test]
fn distributed_spanner_driver_full_contract() {
    for w in usnae::eval::workloads::congest_suite(96, 13) {
        let g = &w.graph;
        let out = Emulator::builder(g)
            .algorithm(Algorithm::DistributedSpanner)
            .build()
            .unwrap();
        assert!(is_subgraph_spanner(g, out.emulator.graph()), "{}", w.name);
        let stats = out.congest.as_ref().expect("congest build");
        assert!(stats.metrics.rounds > 0, "{}", w.name);
        let (alpha, beta) = out.certified.unwrap();
        let pairs = sample_pairs(g, 100, 5);
        let rep = usnae::core::verify::audit_stretch(g, out.emulator.graph(), alpha, beta, &pairs);
        assert!(rep.passed(), "{}: {rep:?}", w.name);
    }
}
