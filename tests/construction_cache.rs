//! Registry-wide construction-cache suite: every algorithm's output
//! survives a snapshot round trip **exactly**, and a warm cache hit is
//! provably identical to a cold rebuild.
//!
//! This extends the determinism parity suite (`parallel_determinism.rs`)
//! across the process/disk boundary: PR 3 made every construction a pure
//! function of `(graph, config)` with a cross-process stream fingerprint;
//! here that contract is what makes `save → load` a safe substitute for
//! `rebuild`, and the suite enforces it with no per-algorithm exceptions:
//!
//! * **Round trip.** `Snapshot::from_output` → `encode` → `decode` →
//!   `rebuild_emulator` reproduces the exact insertion stream (edges,
//!   weights, per-edge provenance — the trace of every insertion), the
//!   certified `(α, β)`, the size bound, the CONGEST metrics, and the
//!   producing build's stats counters, for all 9 registry algorithms.
//! * **Warm parity.** `build_cached` twice: the second call reports a
//!   `Hit`, skips all phase work (empty `stats.phases`), and its output is
//!   fingerprint- and stream-identical to the cold build.
//! * **Rejection.** Corrupted, truncated, and version-bumped snapshot
//!   files fail with a *typed* `SnapshotError` — never a panic, and never
//!   a silently-wrong hit.

use usnae::api::{BuildConfig, CacheStatus};
use usnae::core::cache::{
    build_cached, CacheConfig, CacheKey, ConstructionCache, Snapshot, SnapshotError, VERSION,
};
use usnae::graph::{generators, Graph};
use usnae::registry;

fn input(seed: u64, congest: bool) -> Graph {
    let n = if congest { 70 } else { 130 };
    generators::gnp_connected(n, 8.0 / n as f64, seed).expect("valid gnp parameters")
}

fn temp_cache(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("usnae-cache-suite-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn every_registry_algorithm_round_trips_through_the_snapshot_codec() {
    for c in registry::all() {
        let g = input(17, c.supports().congest);
        let cfg = BuildConfig {
            seed: 17,
            ..BuildConfig::default()
        };
        let out = c
            .build(&g, &cfg)
            .unwrap_or_else(|e| panic!("{}: {e}", c.name()));
        let key = CacheKey::new(&g, c.name(), &cfg);
        let snap = Snapshot::from_output(key.clone(), &out);
        let decoded = Snapshot::decode(&snap.encode())
            .unwrap_or_else(|e| panic!("{}: decode failed: {e}", c.name()));
        let ctx = c.name();

        // Exact edge stream with provenance — the insertion trace.
        assert_eq!(decoded.records, out.emulator.provenance(), "{ctx}: stream");
        let rebuilt = decoded.rebuild_emulator();
        assert_eq!(
            rebuilt.provenance(),
            out.emulator.provenance(),
            "{ctx}: rebuilt emulator stream"
        );
        assert_eq!(rebuilt.num_edges(), out.num_edges(), "{ctx}: edge count");
        // Structure-level identity, independent of insertion order: the
        // rebuilt weighted graph is the same (u, v, w) set.
        assert_eq!(
            usnae::graph::metrics::weighted_fingerprint(rebuilt.graph()),
            usnae::graph::metrics::weighted_fingerprint(out.emulator.graph()),
            "{ctx}: weighted structure fingerprint"
        );

        // Certification, bounds, CONGEST stats.
        assert_eq!(decoded.certified, out.certified, "{ctx}: certified");
        assert_eq!(decoded.size_bound, out.size_bound, "{ctx}: size bound");
        assert_eq!(decoded.congest, out.congest, "{ctx}: congest stats");

        // Stats equality: the stored stats are the producing build's,
        // modulo the cache marker the snapshot stamps on them.
        assert_eq!(decoded.stats.threads, out.stats.threads, "{ctx}");
        assert_eq!(decoded.stats.total, out.stats.total, "{ctx}");
        assert_eq!(
            decoded.stats.phases, out.stats.phases,
            "{ctx}: phase timings"
        );

        // And the identity: stored fingerprint == live fingerprint.
        assert_eq!(
            decoded.stream_fingerprint,
            out.stream_fingerprint(),
            "{ctx}: fingerprint"
        );
        assert_eq!(decoded.key, key, "{ctx}: key");
    }
}

#[test]
fn warm_hit_is_fingerprint_identical_to_cold_build_for_every_algorithm() {
    let dir = temp_cache("warm-parity");
    let cache_cfg = CacheConfig::new(&dir);
    for c in registry::all() {
        let g = input(23, c.supports().congest);
        let cfg = BuildConfig {
            seed: 23,
            ..BuildConfig::default()
        };
        let cold = build_cached(c.as_ref(), &g, &cfg, &cache_cfg)
            .unwrap_or_else(|e| panic!("{} cold: {e}", c.name()));
        assert_eq!(cold.stats.cache, CacheStatus::Miss, "{}", c.name());

        let warm = build_cached(c.as_ref(), &g, &cfg, &cache_cfg)
            .unwrap_or_else(|e| panic!("{} warm: {e}", c.name()));
        let ctx = c.name();
        assert_eq!(warm.stats.cache, CacheStatus::Hit, "{ctx}");
        assert!(
            warm.stats.phases.is_empty(),
            "{ctx}: warm hit must skip phase work (got {} phases)",
            warm.stats.phases.len()
        );
        assert_eq!(
            warm.stream_fingerprint(),
            cold.stream_fingerprint(),
            "{ctx}: fingerprint parity"
        );
        assert_eq!(
            warm.emulator.provenance(),
            cold.emulator.provenance(),
            "{ctx}: exact stream parity"
        );
        assert_eq!(warm.certified, cold.certified, "{ctx}");
        assert_eq!(warm.size_bound, cold.size_bound, "{ctx}");
        assert_eq!(warm.congest, cold.congest, "{ctx}: congest stats survive");
        assert_eq!(warm.algorithm, cold.algorithm, "{ctx}");
    }
    // One entry per algorithm, all healthy.
    let cache = ConstructionCache::new(&dir);
    assert_eq!(cache.ls().unwrap().len(), registry::all().len());
    assert!(cache.verify().unwrap().is_empty(), "all entries verify");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn damaged_snapshots_are_rejected_with_typed_errors_for_every_algorithm() {
    for c in registry::all() {
        let g = input(5, c.supports().congest);
        let cfg = BuildConfig {
            seed: 5,
            ..BuildConfig::default()
        };
        let out = c.build(&g, &cfg).unwrap();
        let key = CacheKey::new(&g, c.name(), &cfg);
        let good = Snapshot::from_output(key, &out).encode();
        let ctx = c.name();

        // Truncation at every interesting boundary.
        for cut in [0, 4, 11, good.len() / 3, good.len() - 1] {
            let err = Snapshot::decode(&good[..cut]).expect_err(&format!("{ctx}: cut at {cut}"));
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. } | SnapshotError::ChecksumMismatch { .. }
                ),
                "{ctx}: cut at {cut} gave {err:?}"
            );
        }

        // Version mismatch is its own, actionable error.
        let mut versioned = good.clone();
        versioned[8] = VERSION as u8 + 1;
        match Snapshot::decode(&versioned) {
            Err(SnapshotError::UnsupportedVersion { found, supported }) => {
                assert_eq!(supported, VERSION, "{ctx}");
                assert_ne!(found, VERSION, "{ctx}");
            }
            other => panic!("{ctx}: version bump gave {other:?}"),
        }

        // Bit rot anywhere in the payload is caught by the checksum.
        for pos in [12, good.len() / 2, good.len() - 9] {
            let mut rotten = good.clone();
            rotten[pos] ^= 0x20;
            let err = Snapshot::decode(&rotten).expect_err(&format!("{ctx}: rot at {pos}"));
            assert!(
                matches!(
                    err,
                    SnapshotError::ChecksumMismatch { .. }
                        | SnapshotError::BadMagic
                        | SnapshotError::UnsupportedVersion { .. }
                ),
                "{ctx}: rot at {pos} gave {err:?}"
            );
        }

        // Not-a-snapshot bytes.
        assert!(matches!(
            Snapshot::decode(b"definitely not a snapshot file"),
            Err(SnapshotError::BadMagic)
        ));
    }
}

#[test]
fn seeded_corruption_sweep_never_panics_and_never_serves_a_wrong_hit() {
    // Satellite of the partition PR: a seeded bit-flip + truncation sweep
    // over **every snapshot section**. The builds are chosen to populate
    // them all: `distributed` carries CONGEST stats + certification +
    // per-phase timings, a partitioned `centralized` build carries the v2
    // per-shard section, and `tz06` leaves the optional sections empty
    // (exercising the None tags). Every corruption must decode to a
    // *typed* `SnapshotError` — never a panic, and never a silently wrong
    // snapshot.
    use usnae::graph::rng::Rng;

    let mut cases: Vec<(String, Snapshot)> = Vec::new();
    for (name, cfg) in [
        ("distributed", BuildConfig::default()),
        (
            "centralized",
            BuildConfig {
                shards: 4,
                partition: usnae::api::PartitionPolicy::DegreeBalanced,
                ..BuildConfig::default()
            },
        ),
        ("tz06", BuildConfig::default()),
    ] {
        let c = registry::find(name).unwrap();
        let g = input(7, c.supports().congest);
        let out = c.build(&g, &cfg).unwrap();
        let key = CacheKey::new(&g, name, &cfg);
        cases.push((name.to_string(), Snapshot::from_output(key, &out)));
    }
    // The partitioned case must actually populate the shard section.
    assert!(!cases[1].1.stats.shards.is_empty(), "shard section empty");
    assert!(cases[0].1.congest.is_some(), "congest section empty");

    for (name, snap) in &cases {
        let good = snap.encode();
        assert_eq!(&Snapshot::decode(&good).unwrap(), snap, "{name}: clean");

        let mut rng = Rng::seed_from_u64(0xC0FFEE ^ good.len() as u64);
        // Bit flips: seeded positions across the whole file (header, key,
        // records, optional sections, stats, shard section, checksum).
        for i in 0..500 {
            let pos = rng.gen_index(good.len());
            let bit = 1u8 << rng.gen_index(8);
            let mut bad = good.clone();
            bad[pos] ^= bit;
            match Snapshot::decode(&bad) {
                Err(_) => {} // typed error — the only acceptable outcome
                Ok(decoded) => assert_eq!(
                    &decoded, snap,
                    "{name}: flip #{i} at byte {pos} decoded to a DIFFERENT snapshot \
                     — a silent wrong hit"
                ),
            }
        }
        // Truncations: every 7th prefix plus all short prefixes, so each
        // section boundary is crossed.
        for cut in (0..good.len().min(64)).chain((0..good.len()).step_by(7)) {
            let err = Snapshot::decode(&good[..cut])
                .expect_err(&format!("{name}: truncation at {cut} must fail"));
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. }
                        | SnapshotError::ChecksumMismatch { .. }
                        | SnapshotError::BadMagic
                        | SnapshotError::UnsupportedVersion { .. }
                        | SnapshotError::Corrupt { .. }
                ),
                "{name}: truncation at {cut} gave {err:?}"
            );
        }
        // Seeded byte-range zeroing: wipes whole fields, not just bits.
        for _ in 0..100 {
            let start = rng.gen_index(good.len());
            let len = 1 + rng.gen_index(16).min(good.len() - start - 1);
            let mut bad = good.clone();
            for b in &mut bad[start..start + len] {
                *b = 0;
            }
            if let Ok(decoded) = Snapshot::decode(&bad) {
                assert_eq!(&decoded, snap, "{name}: zeroing [{start}, {start}+{len})");
            }
        }
    }
}

#[test]
fn every_section_directory_byte_is_corruption_covered() {
    // Exhaustive (not sampled) corruption of the v4 header + section
    // directory: every byte of `MAGIC | version | count | (id, offset,
    // len) × 5` is flipped with every single-bit pattern. A directory
    // entry steering a reader out of bounds, into another section, or
    // over the checksum must surface as a typed error — or, where the
    // flip is provably immaterial, decode to the identical snapshot.
    let c = registry::find("centralized").unwrap();
    let g = input(11, false);
    let cfg = BuildConfig::default();
    let out = c.build(&g, &cfg).unwrap();
    let snap = Snapshot::from_output(CacheKey::new(&g, "centralized", &cfg), &out);
    let good = snap.encode();
    assert_eq!(
        u32::from_le_bytes(good[8..12].try_into().unwrap()),
        VERSION,
        "sweep must run on the directory-bearing v4 layout"
    );
    // 8 magic + 4 version + 4 count + 5 × 24 directory bytes.
    let directory_end = 16 + 5 * 24;
    for pos in 0..directory_end {
        for bit in 0..8 {
            let mut bad = good.clone();
            bad[pos] ^= 1u8 << bit;
            match Snapshot::decode(&bad) {
                Err(_) => {} // typed rejection — the expected outcome
                Ok(decoded) => assert_eq!(
                    decoded, snap,
                    "directory byte {pos} bit {bit}: corrupt directory decoded \
                     to a DIFFERENT snapshot — a silent wrong hit"
                ),
            }
        }
    }
}

#[test]
fn stale_entry_for_a_different_key_is_not_served() {
    // A snapshot renamed onto another key's file name must be refused:
    // the decoded key disagrees with the requested one.
    let dir = temp_cache("stale-key");
    let cache = ConstructionCache::new(&dir);
    let c = registry::find("centralized").unwrap();
    let g = input(3, false);
    let cfg_a = BuildConfig::default();
    let cfg_b = BuildConfig {
        kappa: 8,
        ..BuildConfig::default()
    };
    let out = c.build(&g, &cfg_a).unwrap();
    let key_a = CacheKey::new(&g, c.name(), &cfg_a);
    let key_b = CacheKey::new(&g, c.name(), &cfg_b);
    cache
        .store(&Snapshot::from_output(key_a.clone(), &out))
        .unwrap();
    // Misfile A's entry under B's name.
    std::fs::rename(cache.entry_path(&key_a), cache.entry_path(&key_b)).unwrap();
    match cache.load(&key_b) {
        Err(SnapshotError::KeyMismatch { .. }) => {}
        other => panic!("stale entry served: {other:?}"),
    }
    // And build_cached degrades to an honest rebuild.
    let rebuilt = build_cached(c.as_ref(), &g, &cfg_b, &CacheConfig::new(&dir)).unwrap();
    assert_eq!(rebuilt.stats.cache, CacheStatus::Miss);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_verify_finds_exactly_the_damaged_entries() {
    let dir = temp_cache("verify-sweep");
    let cache_cfg = CacheConfig::new(&dir);
    let cache = ConstructionCache::new(&dir);
    // Warm three entries.
    let names = ["centralized", "spanner", "ep01"];
    let g = input(29, false);
    let cfg = BuildConfig::default();
    for name in names {
        let c = registry::find(name).unwrap();
        build_cached(c.as_ref(), &g, &cfg, &cache_cfg).unwrap();
    }
    assert!(cache.verify().unwrap().is_empty());
    // Damage exactly one.
    let victim = cache.entry_path(&CacheKey::new(&g, "spanner", &cfg));
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x04;
    std::fs::write(&victim, &bytes).unwrap();
    let broken = cache.verify().unwrap();
    assert_eq!(broken.len(), 1);
    assert_eq!(broken[0].path, victim);
    let _ = std::fs::remove_dir_all(&dir);
}
