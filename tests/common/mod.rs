#![allow(dead_code)]

//! Shared fixtures for the golden-stream and partition-conformance
//! suites: two small fixed graphs, a canonical text serialization of a
//! build's insertion stream, and the `tests/data/` path conventions.

use std::path::PathBuf;
use usnae::api::{BuildConfig, BuildOutput, QueryEngine};
use usnae::graph::{generators, Graph, GraphBuilder};

/// The two fixed fixture graphs the golden streams are recorded on.
///
/// * `ring48` — a 48-vertex ring with `+7` chords (the same deterministic
///   input CI's cold/warm cache sweep uses);
/// * `grid8x8` — an 8×8 grid.
///
/// Both are small enough for the CONGEST simulations and fully
/// deterministic: no seeds, no environment dependence.
pub fn fixture_graphs() -> Vec<(&'static str, Graph)> {
    let mut b = GraphBuilder::new(48);
    for i in 0..48usize {
        b.add_edge(i, (i + 1) % 48).expect("ring edge");
        b.add_edge(i, (i + 7) % 48).expect("chord edge");
    }
    vec![
        ("ring48", b.build()),
        ("grid8x8", generators::grid2d(8, 8).expect("valid grid")),
    ]
}

/// The config every golden stream is recorded under (the default config;
/// spelled out so a future default change fails loudly here instead of
/// silently invalidating the fixtures).
pub fn golden_config() -> BuildConfig {
    BuildConfig::default()
}

/// Canonical text form of a build's exact insertion stream: a commented
/// header (graph, algorithm, stream fingerprint, record count) followed by
/// one `u v w phase kind charged_to` line per insertion, in insertion
/// order. Two builds serialize identically iff their streams are
/// byte-identical.
pub fn stream_text(graph_tag: &str, algo: &str, out: &BuildOutput) -> String {
    let mut s = String::new();
    s.push_str("# usnae golden stream v1\n");
    s.push_str(&format!(
        "# graph={graph_tag} algo={algo} n={}\n",
        out.emulator.num_vertices()
    ));
    s.push_str(&format!(
        "# fingerprint={:016x}\n",
        out.stream_fingerprint()
    ));
    s.push_str(&format!("# records={}\n", out.emulator.provenance().len()));
    for (e, p) in out.emulator.provenance() {
        s.push_str(&format!(
            "{} {} {} {} {} {}\n",
            e.u,
            e.v,
            e.weight,
            p.phase,
            p.kind.code(),
            p.charged_to
        ));
    }
    s
}

/// `tests/data/<graph>.<algo>.stream` under the workspace root.
pub fn golden_path(graph_tag: &str, algo: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(format!("{graph_tag}.{algo}.stream"))
}

/// Parses the `# fingerprint=` header line of a golden stream file.
pub fn golden_fingerprint(text: &str) -> Option<u64> {
    text.lines()
        .find_map(|l| l.strip_prefix("# fingerprint="))
        .and_then(|h| u64::from_str_radix(h.trim(), 16).ok())
}

/// Seed of the fixed query sets the golden query fixtures are recorded on.
pub const QUERY_SEED: u64 = 0xE7;

/// Queries per fixture graph.
pub const QUERY_COUNT: usize = 40;

/// The fixed, seeded query set for one fixture graph — the same pairs for
/// every algorithm, so fixture diffs isolate the serving structure.
pub fn query_pairs(g: &Graph) -> Vec<(usize, usize)> {
    usnae::graph::distance::sample_pairs(g, QUERY_COUNT, QUERY_SEED)
}

/// Canonical text form of one engine's answers to the fixture query set:
/// a commented header (graph, algorithm, certified pair, query seed)
/// followed by one `u v answer` line per pair, in pair order (`-` =
/// unreachable). Two engines serialize identically iff their answers are
/// byte-identical.
pub fn queries_text(
    graph_tag: &str,
    algo: &str,
    engine: &QueryEngine,
    pairs: &[(usize, usize)],
) -> String {
    let (alpha, beta) = engine.guarantee();
    let mut s = String::new();
    s.push_str("# usnae golden queries v1\n");
    s.push_str(&format!(
        "# graph={graph_tag} algo={algo} n={}\n",
        engine.num_vertices()
    ));
    s.push_str(&format!("# alpha={alpha} beta={beta}\n"));
    s.push_str(&format!("# seed={QUERY_SEED:#x} pairs={}\n", pairs.len()));
    for (&(u, v), a) in pairs.iter().zip(engine.distances(pairs)) {
        match a.value {
            Some(d) => s.push_str(&format!("{u} {v} {d}\n")),
            None => s.push_str(&format!("{u} {v} -\n")),
        }
    }
    s
}

/// `tests/data/<graph>.<algo>.queries` under the workspace root.
pub fn golden_queries_path(graph_tag: &str, algo: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(format!("{graph_tag}.{algo}.queries"))
}
