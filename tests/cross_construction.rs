//! Registry-driven parity suite: every `Construction` in the catalogue —
//! paper constructions and baselines alike — is held to the same contract
//! on shared inputs, with no hand-enumerated algorithm lists. Registering a
//! new construction automatically subjects it to this suite.
//!
//! The contract, per construction and input:
//!
//! * when `size_bound` reports a bound, the output respects it;
//! * when `certified_stretch` reports `(α, β)`, a sampled-pair audit passes
//!   (which also checks the never-shorten and never-disconnect properties);
//! * when `supports().subgraph`, the output is a unit-weight subgraph of G;
//! * when `supports().congest`, the build reports metrics and zero
//!   knowledge violations;
//! * outputs keep G's connectivity (emulators must span the graph).

use usnae::api::{BuildConfig, Construction};
use usnae::core::verify::{audit_stretch, is_subgraph_spanner};
use usnae::graph::distance::sample_pairs;
use usnae::graph::{generators, Graph};
use usnae::registry;

/// The parity inputs: a G(n, p) and a grid, per the issue's checklist. The
/// CONGEST constructions get smaller instances of the same families.
fn parity_inputs(congest: bool) -> Vec<(&'static str, Graph)> {
    if congest {
        vec![
            ("gnp", generators::gnp_connected(80, 0.07, 21).unwrap()),
            ("grid", generators::grid2d(9, 9).unwrap()),
        ]
    } else {
        vec![
            ("gnp", generators::gnp_connected(160, 0.05, 21).unwrap()),
            ("grid", generators::grid2d(13, 13).unwrap()),
        ]
    }
}

fn check_contract(c: &dyn Construction, cfg: &BuildConfig) {
    let s = c.supports();
    for (family, g) in parity_inputs(s.congest) {
        let n = g.num_vertices();
        let label = format!("{} on {family}", c.name());
        let out = c.build(&g, cfg).unwrap_or_else(|e| panic!("{label}: {e}"));
        assert_eq!(out.algorithm, c.name(), "{label}");

        // Size bound, when the construction promises one.
        if let Some(bound) = c.size_bound(n, cfg) {
            assert_eq!(out.size_bound, Some(bound), "{label}: bound mismatch");
            assert!(
                out.num_edges() as f64 <= bound + 1e-6,
                "{label}: {} edges > bound {bound}",
                out.num_edges()
            );
        }

        // Certified stretch, when promised: audit on sampled pairs. The
        // audit also rejects shortening and lost connectivity.
        assert_eq!(out.certified.is_some(), s.certified, "{label}");
        let pairs = sample_pairs(&g, 120, 5);
        if let Some((alpha, beta)) = out.certified {
            assert_eq!(c.certified_stretch(cfg), Some((alpha, beta)), "{label}");
            let rep = audit_stretch(&g, out.emulator.graph(), alpha, beta, &pairs);
            assert!(rep.passed(), "{label}: {rep:?}");
        } else {
            // Even uncertified baselines must never shorten or disconnect.
            let rep = audit_stretch(&g, out.emulator.graph(), f64::INFINITY, 0.0, &pairs);
            assert_eq!(rep.shortening_violations, 0, "{label}: {rep:?}");
            assert_eq!(rep.unreachable_pairs, 0, "{label}: {rep:?}");
        }

        // Subgraph property for spanners.
        if s.subgraph {
            assert!(
                is_subgraph_spanner(&g, out.emulator.graph()),
                "{label}: not a subgraph"
            );
            assert!(out.num_edges() <= g.num_edges(), "{label}");
        }

        // CONGEST builds report honest metrics and perfect edge knowledge.
        assert_eq!(out.congest.is_some(), s.congest, "{label}");
        if let Some(stats) = &out.congest {
            assert!(stats.metrics.rounds > 0, "{label}");
            assert!(stats.metrics.messages > 0, "{label}");
            assert_eq!(stats.knowledge_violations, 0, "{label}");
        }
    }
}

#[test]
fn every_registered_construction_meets_its_contract() {
    let cfg = BuildConfig::default();
    for c in registry::all() {
        check_contract(c.as_ref(), &cfg);
    }
}

#[test]
fn every_registered_construction_meets_its_contract_in_raw_epsilon_mode() {
    // Raw-ε keeps multi-phase structure alive at these sizes; certification
    // is rescale-free, so the same contract must hold.
    let cfg = BuildConfig {
        raw_epsilon: true,
        kappa: 8,
        ..BuildConfig::default()
    };
    for c in registry::all() {
        // The CONGEST builds get slow in raw mode at kappa 8; the
        // centralized pipelines cover the raw-ε certification story.
        if c.supports().congest {
            continue;
        }
        check_contract(c.as_ref(), &cfg);
    }
}

#[test]
fn registry_names_are_stable_and_complete() {
    let names = registry::names();
    // The four paper emulator/spanner constructions plus the distributed
    // spanner, then the four baselines.
    assert_eq!(
        names,
        vec![
            "centralized",
            "fast-centralized",
            "distributed",
            "spanner",
            "distributed-spanner",
            "ep01",
            "tz06",
            "en17a",
            "em19",
        ]
    );
    for name in names {
        assert!(registry::find(name).is_some(), "{name}");
    }
}

#[test]
fn spanner_beats_or_ties_em19_on_suite_raw_mode() {
    // Aggregate shape of E7 through the registry: the §4 sequence never
    // loses overall.
    let ours_c = registry::find("spanner").unwrap();
    let em19_c = registry::find("em19").unwrap();
    let cfg = BuildConfig {
        raw_epsilon: true,
        ..BuildConfig::default()
    };
    let mut ours_total = 0usize;
    let mut em19_total = 0usize;
    for w in usnae::eval::workloads::standard_suite(200, 91) {
        ours_total += ours_c.build(&w.graph, &cfg).unwrap().num_edges();
        em19_total += em19_c.build(&w.graph, &cfg).unwrap().num_edges();
    }
    assert!(
        ours_total <= em19_total + 200,
        "ours {ours_total} vs em19 {em19_total}"
    );
}

#[test]
fn sparsest_spanner_configuration_is_n_log_log_n() {
    // End of §4: at κ = Θ(log n / log⁽³⁾n) the spanner has O(n·log log n)
    // edges. Check the size against that bound with a modest constant.
    use usnae::core::params::SpannerParams;
    let spanner = registry::find("spanner").unwrap();
    for n in [512usize, 1024] {
        let g = generators::gnp_connected(n, 16.0 / n as f64, 9).unwrap();
        let kappa = SpannerParams::sparsest_kappa(n);
        assert!(kappa >= 4, "kappa = {kappa}");
        let cfg = BuildConfig {
            kappa,
            raw_epsilon: true,
            ..BuildConfig::default()
        };
        let out = spanner.build(&g, &cfg).unwrap();
        let log_log_n = (n as f64).log2().log2();
        assert!(
            (out.num_edges() as f64) <= 3.0 * n as f64 * log_log_n,
            "n={n}: {} edges vs 3·n·loglog n = {}",
            out.num_edges(),
            3.0 * n as f64 * log_log_n
        );
        assert!(is_subgraph_spanner(&g, out.emulator.graph()));
    }
}

#[test]
fn charging_discipline_across_constructions_and_orders() {
    use usnae::api::{Algorithm, Emulator, ProcessingOrder};
    use usnae::core::charging::ChargeLedger;
    use usnae::core::params::{CentralizedParams, DistributedParams};
    for w in usnae::eval::workloads::standard_suite(140, 55)
        .into_iter()
        .take(5)
    {
        let g = &w.graph;
        let n = g.num_vertices();
        let pc = CentralizedParams::new(0.5, 4).unwrap();
        for order in [
            ProcessingOrder::ById,
            ProcessingOrder::ByIdDesc,
            ProcessingOrder::ByDegreeDesc,
            ProcessingOrder::ByDegreeAsc,
        ] {
            let out = Emulator::builder(g).order(order).build().unwrap();
            ChargeLedger::from_emulator(&out.emulator)
                .verify(|phase| pc.degree_cap(phase, n))
                .unwrap_or_else(|v| panic!("{} {order:?}: {v}", w.name));
        }
        let pd = DistributedParams::new(0.5, 4, 0.5).unwrap();
        let out = Emulator::builder(g)
            .algorithm(Algorithm::FastCentralized)
            .build()
            .unwrap();
        ChargeLedger::from_emulator(&out.emulator)
            .verify(|phase| pd.degree_cap(phase, n))
            .unwrap_or_else(|v| panic!("{} fast: {v}", w.name));
    }
}

#[test]
fn distributed_rounds_are_phase_consistent() {
    use usnae::api::{Algorithm, Emulator};
    for w in usnae::eval::workloads::congest_suite(80, 33) {
        let out = Emulator::builder(&w.graph)
            .algorithm(Algorithm::Distributed)
            .traced(true)
            .build()
            .unwrap();
        let stats = out.congest.as_ref().unwrap();
        let phases = out.trace.as_ref().unwrap().as_distributed().unwrap();
        assert_eq!(
            phases.iter().map(|t| t.rounds).sum::<u64>(),
            stats.metrics.rounds,
            "{}",
            w.name
        );
    }
}
