//! Cross-crate integration: all four constructions (centralized Algorithm 1,
//! fast centralized §3.3, distributed §3, spanner §4) on the shared workload
//! suite, audited with the shared verifiers.

use usnae::baselines::em19::build_em19_spanner;
use usnae::core::centralized::{build_emulator_traced, ProcessingOrder};
use usnae::core::charging::ChargeLedger;
use usnae::core::distributed::build_emulator_distributed;
use usnae::core::fast_centralized::build_emulator_fast;
use usnae::core::params::{CentralizedParams, DistributedParams, SpannerParams};
use usnae::core::spanner::build_spanner;
use usnae::core::verify::{audit_stretch, is_subgraph_spanner};
use usnae::eval::workloads::standard_suite;
use usnae::graph::distance::sample_pairs;

#[test]
fn all_constructions_meet_size_and_stretch_on_suite() {
    for w in standard_suite(160, 21) {
        let g = &w.graph;
        let n = g.num_vertices();
        let pairs = sample_pairs(g, 120, 5);

        // Centralized Algorithm 1.
        let pc = CentralizedParams::new(0.5, 4).unwrap();
        let (h, _) = build_emulator_traced(g, &pc, ProcessingOrder::ById);
        assert!(
            h.num_edges() as f64 <= pc.size_bound(n),
            "{}: centralized size",
            w.name
        );
        let (a, b) = pc.certified_stretch();
        let rep = audit_stretch(g, h.graph(), a, b, &pairs);
        assert!(rep.passed(), "{}: centralized stretch {rep:?}", w.name);

        // Fast centralized (§3.3).
        let pd = DistributedParams::new(0.5, 4, 0.5).unwrap();
        let hf = build_emulator_fast(g, &pd);
        assert!(
            hf.num_edges() as f64 <= pd.size_bound(n),
            "{}: fast size",
            w.name
        );
        let (a, b) = pd.certified_stretch();
        let rep = audit_stretch(g, hf.graph(), a, b, &pairs);
        assert!(rep.passed(), "{}: fast stretch {rep:?}", w.name);

        // §4 spanner.
        let ps = SpannerParams::new(0.5, 4, 0.5).unwrap();
        let s = build_spanner(g, &ps);
        assert!(
            is_subgraph_spanner(g, s.graph()),
            "{}: spanner subgraph",
            w.name
        );
        let (a, b) = ps.certified_stretch();
        let rep = audit_stretch(g, s.graph(), a, b, &pairs);
        assert!(rep.passed(), "{}: spanner stretch {rep:?}", w.name);
    }
}

#[test]
fn distributed_matches_guarantees_on_suite() {
    // The CONGEST simulation is the slow one: smaller n, fewer families.
    for w in standard_suite(80, 33).into_iter().take(4) {
        let g = &w.graph;
        let n = g.num_vertices();
        let p = DistributedParams::new(0.5, 4, 0.5).unwrap();
        let build = build_emulator_distributed(g, &p).unwrap();
        assert_eq!(build.knowledge_violations, 0, "{}", w.name);
        assert!(
            build.emulator.num_edges() as f64 <= p.size_bound(n),
            "{}",
            w.name
        );
        let (a, b) = p.certified_stretch();
        let pairs = sample_pairs(g, 80, 9);
        let rep = audit_stretch(g, build.emulator.graph(), a, b, &pairs);
        assert!(rep.passed(), "{}: {rep:?}", w.name);
        // Round accounting is positive and phase-consistent.
        assert!(build.metrics.rounds > 0);
        assert_eq!(
            build.phases.iter().map(|t| t.rounds).sum::<u64>(),
            build.metrics.rounds,
            "{}",
            w.name
        );
    }
}

#[test]
fn charging_discipline_across_constructions_and_orders() {
    for w in standard_suite(140, 55).into_iter().take(5) {
        let g = &w.graph;
        let n = g.num_vertices();
        let pc = CentralizedParams::new(0.5, 4).unwrap();
        for order in [
            ProcessingOrder::ById,
            ProcessingOrder::ByIdDesc,
            ProcessingOrder::ByDegreeDesc,
            ProcessingOrder::ByDegreeAsc,
        ] {
            let (h, _) = build_emulator_traced(g, &pc, order);
            ChargeLedger::from_emulator(&h)
                .verify(|phase| pc.degree_cap(phase, n))
                .unwrap_or_else(|v| panic!("{} {order:?}: {v}", w.name));
        }
        let pd = DistributedParams::new(0.5, 4, 0.5).unwrap();
        let hf = build_emulator_fast(g, &pd);
        ChargeLedger::from_emulator(&hf)
            .verify(|phase| pd.degree_cap(phase, n))
            .unwrap_or_else(|v| panic!("{} fast: {v}", w.name));
    }
}

#[test]
fn raw_epsilon_mode_certified_stretch_holds() {
    // Raw-ε mode (no §2.2.4 rescaling) keeps multi-phase structure alive at
    // small n; the exact-recursion certification must still hold.
    for w in standard_suite(160, 77).into_iter().take(5) {
        let g = &w.graph;
        let n = g.num_vertices();
        let p = CentralizedParams::with_raw_epsilon(0.5, 8).unwrap();
        let (h, trace) = build_emulator_traced(g, &p, ProcessingOrder::ById);
        assert!(h.num_edges() as f64 <= p.size_bound(n), "{}", w.name);
        // Raw mode must actually exercise several phases on sparse families.
        assert!(trace.phases.len() == p.ell() + 1);
        let (a, b) = p.certified_stretch();
        let pairs = sample_pairs(g, 120, 13);
        let rep = audit_stretch(g, h.graph(), a, b, &pairs);
        assert!(rep.passed(), "{}: {rep:?}", w.name);
    }
}

#[test]
fn spanner_beats_or_ties_em19_on_suite_raw_mode() {
    let mut ours_total = 0usize;
    let mut em19_total = 0usize;
    for w in standard_suite(200, 91) {
        let g = &w.graph;
        let ps = SpannerParams::with_raw_epsilon(0.5, 4, 0.5).unwrap();
        let pd = DistributedParams::with_raw_epsilon(0.5, 4, 0.5).unwrap();
        let ours = build_spanner(g, &ps);
        let theirs = build_em19_spanner(g, &pd);
        ours_total += ours.num_edges();
        em19_total += theirs.num_edges();
    }
    // Aggregate shape of E7: the §4 sequence never loses overall.
    assert!(
        ours_total <= em19_total + 200,
        "ours {ours_total} vs em19 {em19_total}"
    );
}

#[test]
fn sparsest_spanner_configuration_is_n_log_log_n() {
    // End of §4: at κ = Θ(log n / log⁽³⁾n) the spanner has O(n·log log n)
    // edges. Check the size against that bound with a modest constant.
    use usnae::core::params::SpannerParams;
    for n in [512usize, 1024] {
        let g = usnae::graph::generators::gnp_connected(n, 16.0 / n as f64, 9).unwrap();
        let kappa = SpannerParams::sparsest_kappa(n);
        assert!(kappa >= 4, "kappa = {kappa}");
        let p = SpannerParams::with_raw_epsilon(0.5, kappa, 0.5).unwrap();
        let s = usnae::core::spanner::build_spanner(&g, &p);
        let log_log_n = (n as f64).log2().log2();
        assert!(
            (s.num_edges() as f64) <= 3.0 * n as f64 * log_log_n,
            "n={n}: {} edges vs 3·n·loglog n = {}",
            s.num_edges(),
            3.0 * n as f64 * log_log_n
        );
        assert!(usnae::core::verify::is_subgraph_spanner(&g, s.graph()));
    }
}
