//! Out-of-core conformance: registry-wide mapped-vs-heap identity.
//!
//! The storage seam's contract is that *where the graph lives is
//! unobservable*: for every algorithm in the registry, a build over a
//! file-backed [`MappedGraph`] must be indistinguishable from the same
//! build over the heap CSR — same insertion stream, same provenance,
//! same certification, and byte-identical snapshot sections — and a
//! query engine serving the stored snapshot zero-copy
//! ([`MappedBackend`] + [`QueryEngine::open`]) must answer every query
//! identically to a live heap engine, without ever materializing a heap
//! emulator.
//!
//! Byte-identity is asserted per snapshot *section*: the KEY, META,
//! RECORDS, and EMU_CSR sections are pure functions of `(graph, config,
//! algorithm)` and must match exactly; only STATS (wall-clock timings)
//! may differ between the two builds.

mod common;

use common::{fixture_graphs, golden_config, query_pairs};
use usnae::api::{MappedBackend, QueryEngine};
use usnae::core::cache::{CacheKey, Snapshot, MAGIC, SECTION_STATS, VERSION};
use usnae::graph::MappedGraph;
use usnae::registry;

/// A scratch directory under the system temp dir, wiped on create.
fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("usnae-ooc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Parses a v4 snapshot's section directory: `(id, byte range)` per
/// section, straight from the wire layout (`MAGIC | version | count |
/// (id, offset, len)*`).
fn v4_sections(bytes: &[u8]) -> Vec<(u64, std::ops::Range<usize>)> {
    assert_eq!(&bytes[..8], MAGIC.as_slice(), "snapshot magic");
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    assert_eq!(version, VERSION, "conformance suite expects the v4 layout");
    let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    (0..count)
        .map(|i| {
            let at = 16 + i * 24;
            let word = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
            let (id, off, len) = (word(at), word(at + 8) as usize, word(at + 16) as usize);
            (id, off..off + len)
        })
        .collect()
}

/// The tentpole sweep: every registry algorithm, on both fixture graphs,
/// built from heap storage and from a mapped CSR file. The outputs must
/// be identical in every deterministic respect, down to the bytes of the
/// non-timing snapshot sections.
#[test]
fn every_registry_algorithm_builds_byte_identically_from_mapped_storage() {
    let dir = scratch("build");
    let cfg = golden_config();
    for (tag, g) in fixture_graphs() {
        let csr = dir.join(format!("{tag}.csr"));
        g.write_csr_file(&csr).expect("write csr file");
        let mg = MappedGraph::open(&csr).expect("open mapped csr");
        assert_eq!(mg.num_vertices(), g.num_vertices(), "{tag}: vertex count");
        assert_eq!(mg.num_edges(), g.num_edges(), "{tag}: edge count");
        for c in registry::all() {
            let heap = c
                .build(&g, &cfg)
                .unwrap_or_else(|e| panic!("{} on {tag} (heap): {e}", c.name()));
            let mapped = c
                .build_mapped(&mg, &cfg)
                .unwrap_or_else(|e| panic!("{} on {tag} (mapped): {e}", c.name()));

            assert_eq!(
                heap.stream_fingerprint(),
                mapped.stream_fingerprint(),
                "{} on {tag}: insertion streams diverged across storage",
                c.name()
            );
            assert_eq!(
                heap.emulator.provenance(),
                mapped.emulator.provenance(),
                "{} on {tag}: provenance records diverged",
                c.name()
            );
            assert_eq!(heap.certified, mapped.certified, "{}: certified", c.name());
            assert_eq!(
                heap.emulator.num_edges(),
                mapped.emulator.num_edges(),
                "{}: emulator size",
                c.name()
            );

            // Snapshot byte-identity, section by section. The cache keys
            // must agree too — `fingerprint` is storage-generic.
            let heap_key = CacheKey::new(&g, c.name(), &cfg);
            let mapped_key = CacheKey::new(&mg, c.name(), &cfg);
            assert_eq!(heap_key, mapped_key, "{} on {tag}: cache keys", c.name());
            let a = Snapshot::from_output(heap_key, &heap).encode();
            let b = Snapshot::from_output(mapped_key, &mapped).encode();
            let (sa, sb) = (v4_sections(&a), v4_sections(&b));
            assert_eq!(
                sa.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
                sb.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
                "{} on {tag}: section directories disagree",
                c.name()
            );
            for ((id, ra), (_, rb)) in sa.iter().zip(&sb) {
                if *id == SECTION_STATS {
                    continue; // wall-clock timings — legitimately differ
                }
                assert_eq!(
                    &a[ra.clone()],
                    &b[rb.clone()],
                    "{} on {tag}: snapshot section {id} is not byte-identical \
                     between the heap and mapped builds",
                    c.name()
                );
            }
        }
    }
}

/// Serving conformance: a zero-copy engine over the stored snapshot
/// answers every fixture query identically — value, α, and β — to a live
/// heap engine over the same build, and never materializes a heap
/// emulator.
#[test]
fn mapped_serving_answers_match_heap_serving_registry_wide() {
    let dir = scratch("serve");
    let cfg = golden_config();
    for (tag, g) in fixture_graphs() {
        let pairs = query_pairs(&g);
        for c in registry::all() {
            let out = c
                .build(&g, &cfg)
                .unwrap_or_else(|e| panic!("{} on {tag}: {e}", c.name()));
            let key = CacheKey::new(&g, c.name(), &cfg);
            let snap_path = dir.join(format!("{tag}.{}.usnae-snap", c.name()));
            std::fs::write(&snap_path, Snapshot::from_output(key, &out).encode())
                .expect("write snapshot");

            let heap_engine = QueryEngine::from_output(&out);
            let backend = MappedBackend::open(&snap_path)
                .unwrap_or_else(|e| panic!("{} on {tag}: open mapped: {e}", c.name()));
            let mapped_engine = QueryEngine::open(&backend)
                .unwrap_or_else(|e| panic!("{} on {tag}: serve mapped: {e}", c.name()));
            assert!(
                mapped_engine.emulator().is_none(),
                "{} on {tag}: mapped serving materialized a heap emulator",
                c.name()
            );
            assert_eq!(
                mapped_engine.num_vertices(),
                heap_engine.num_vertices(),
                "{} on {tag}: vertex counts",
                c.name()
            );
            assert_eq!(
                mapped_engine.num_edges(),
                heap_engine.num_edges(),
                "{} on {tag}: emulator edge counts",
                c.name()
            );
            for &(u, v) in &pairs {
                let a = heap_engine.distance(u, v);
                let b = mapped_engine.distance(u, v);
                assert_eq!(
                    (a.value, a.alpha, a.beta),
                    (b.value, b.alpha, b.beta),
                    "{} on {tag}: query ({u}, {v}) diverged between heap and \
                     mapped serving",
                    c.name()
                );
            }
        }
    }
}
