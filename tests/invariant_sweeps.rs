//! Property-style tests through the unified API: the paper's invariants
//! checked over a deterministic sweep of seeded random inputs and
//! parameters (the repository is dependency-free, so no proptest — the
//! sweep plays its role; it replaces the former `proptest_invariants.rs`).

use usnae::api::{Algorithm, BuildOutput, Emulator, ProcessingOrder};
use usnae::core::charging::ChargeLedger;
use usnae::core::params::{CentralizedParams, DistributedParams};
use usnae::core::verify::{audit_stretch, is_subgraph_spanner};
use usnae::graph::distance::sample_pairs;
use usnae::graph::rng::Rng;
use usnae::graph::{generators, Graph};

/// A connected random graph on `20..120` vertices from the sweep seed.
fn random_graph(seed: u64) -> Graph {
    let mut rng = Rng::seed_from_u64(seed);
    let n = rng.gen_range(20, 120);
    let density = rng.gen_range(15, 60) as f64;
    generators::gnp_connected(n, density / 10.0 / n as f64, seed).expect("valid gnp parameters")
}

const ORDERS: [ProcessingOrder; 4] = [
    ProcessingOrder::ById,
    ProcessingOrder::ByIdDesc,
    ProcessingOrder::ByDegreeDesc,
    ProcessingOrder::ByDegreeAsc,
];

/// Cor 2.14 end to end: size bound, charging, stretch, never-shorten.
#[test]
fn centralized_emulator_full_contract() {
    for seed in 0..24u64 {
        let g = random_graph(seed);
        let n = g.num_vertices();
        let kappa = 2 + (seed % 8) as u32;
        let eps = 0.2 + 0.09 * (seed % 8) as f64;
        let order = ORDERS[(seed % 4) as usize];
        let out: BuildOutput = Emulator::builder(&g)
            .epsilon(eps)
            .kappa(kappa)
            .order(order)
            .traced(true)
            .build()
            .unwrap();

        // Size (leading constant 1).
        let bound = out.size_bound.unwrap();
        assert!(out.num_edges() as f64 <= bound + 1e-6, "seed {seed}");

        // Charging discipline (Lemma 2.4's skeleton).
        let p = CentralizedParams::new(eps, kappa).unwrap();
        ChargeLedger::from_emulator(&out.emulator)
            .verify(|phase| p.degree_cap(phase, n))
            .unwrap_or_else(|v| panic!("seed {seed}: {v}"));

        // Stretch on a pair sample.
        let (alpha, beta) = out.certified.unwrap();
        let pairs = sample_pairs(&g, 60, 7);
        let rep = audit_stretch(&g, out.emulator.graph(), alpha, beta, &pairs);
        assert!(rep.passed(), "seed {seed}: {rep:?}");

        // Trace bookkeeping: insertions ≥ distinct edges.
        let trace = out.trace.unwrap();
        let insertions = trace.as_centralized().unwrap().total_insertions();
        assert!(insertions >= out.emulator.num_edges(), "seed {seed}");
    }
}

/// Raw-ε mode keeps the same contract (certification is rescale-free).
#[test]
fn raw_epsilon_contract() {
    for seed in 0..24u64 {
        let g = random_graph(seed + 1000);
        let n = g.num_vertices();
        let kappa = 2 + (seed % 10) as u32;
        let eps = 0.3 + 0.06 * (seed % 10) as f64;
        let out = Emulator::builder(&g)
            .epsilon(eps)
            .kappa(kappa)
            .raw_epsilon(true)
            .build()
            .unwrap();
        assert!(
            out.num_edges() as f64 <= out.size_bound.unwrap() + 1e-6,
            "seed {seed} n {n}"
        );
        let (alpha, beta) = out.certified.unwrap();
        let pairs = sample_pairs(&g, 50, 11);
        let rep = audit_stretch(&g, out.emulator.graph(), alpha, beta, &pairs);
        assert!(rep.passed(), "seed {seed}: {rep:?}");
    }
}

/// Cor 4.4: the spanner is always a subgraph with certified stretch.
#[test]
fn spanner_contract() {
    for seed in 0..24u64 {
        let g = random_graph(seed + 2000);
        let kappa = 2 + (seed % 6) as u32;
        let out = Emulator::builder(&g)
            .kappa(kappa)
            .algorithm(Algorithm::Spanner)
            .build()
            .unwrap();
        assert!(is_subgraph_spanner(&g, out.emulator.graph()), "seed {seed}");
        assert!(out.num_edges() <= g.num_edges());
        let (alpha, beta) = out.certified.unwrap();
        let pairs = sample_pairs(&g, 50, 13);
        let rep = audit_stretch(&g, out.emulator.graph(), alpha, beta, &pairs);
        assert!(rep.passed(), "seed {seed}: {rep:?}");
    }
}

/// Emulator distances dominate graph distances pointwise (d_G ≤ d_H) and
/// every connected pair stays connected.
#[test]
fn emulator_never_shortens_or_disconnects() {
    for seed in 0..24u64 {
        let g = random_graph(seed + 3000);
        let kappa = 2 + (seed % 6) as u32;
        let out = Emulator::builder(&g).kappa(kappa).build().unwrap();
        let source = 0;
        let dg = usnae::graph::bfs::bfs(&g, source);
        let dh = out.emulator.distances_from(source);
        for v in 0..g.num_vertices() {
            match (dg[v], dh[v]) {
                (Some(a), Some(b)) => assert!(b >= a, "seed {seed} pair (0,{v}): {b} < {a}"),
                (Some(_), None) => panic!("seed {seed}: vertex {v} lost connectivity"),
                _ => {}
            }
        }
    }
}

/// Registry-wide stretch verification (the issue's checklist item): for
/// every algorithm in the catalogue — paper constructions *and* baselines —
/// certified stretch is audited through `verify.rs` on six graph families:
/// sparse Erdős–Rényi and grid (the original pair) plus torus, hypercube,
/// circulant, and binary tree, so the size/stretch invariants are exercised
/// on non-mesh topologies (wrap-around symmetry, log-diameter expanders,
/// chorded rings, and trees with pendant leaves). Baselines certify no
/// `(α, β)`; for them the same audit still enforces the never-shorten
/// and never-disconnect halves of the contract (`α = ∞` disables only the
/// stretch inequality).
#[test]
fn registry_certified_stretch_on_random_families() {
    use usnae::core::verify::audit_stretch as audit;
    for c in usnae::registry::all() {
        let congest = c.supports().congest;
        for seed in [19u64, 43] {
            let families: Vec<(&str, Graph)> = if congest {
                vec![
                    (
                        "gnp",
                        generators::gnp_connected(70, 9.0 / 70.0, seed).unwrap(),
                    ),
                    ("grid", generators::grid2d(8, 8).unwrap()),
                    ("torus2d", generators::torus2d(6, 6).unwrap()),
                    ("hypercube", generators::hypercube(5).unwrap()),
                    ("circulant", generators::circulant(36, &[1, 2, 5]).unwrap()),
                    ("binary_tree", generators::binary_tree(40).unwrap()),
                ]
            } else {
                vec![
                    (
                        "gnp",
                        generators::gnp_connected(160, 7.0 / 160.0, seed).unwrap(),
                    ),
                    ("grid", generators::grid2d(12, 12).unwrap()),
                    ("torus2d", generators::torus2d(10, 12).unwrap()),
                    ("hypercube", generators::hypercube(7).unwrap()),
                    ("circulant", generators::circulant(120, &[1, 3, 9]).unwrap()),
                    ("binary_tree", generators::binary_tree(127).unwrap()),
                ]
            };
            for (family, g) in families {
                let cfg = usnae::api::BuildConfig {
                    seed,
                    ..usnae::api::BuildConfig::default()
                };
                let out = c
                    .build(&g, &cfg)
                    .unwrap_or_else(|e| panic!("{} on {family} seed {seed}: {e}", c.name()));
                let pairs = sample_pairs(&g, 120, seed.wrapping_add(3));
                let (alpha, beta) = out.certified.unwrap_or((f64::INFINITY, 0.0));
                let rep = audit(&g, out.emulator.graph(), alpha, beta, &pairs);
                assert!(
                    rep.passed(),
                    "{} on {family} seed {seed}: {rep:?}",
                    c.name()
                );
            }
        }
    }
}

/// Parameter algebra invariants: deg_{i+1} ≤ deg_i² and α within 1+ε
/// (rescaled mode) across the admissible space.
#[test]
fn parameter_algebra_invariants() {
    for seed in 0..40u64 {
        let mut rng = Rng::seed_from_u64(seed + 4000);
        let kappa = rng.gen_range(2, 200) as u32;
        let eps = rng.gen_f64_range(0.05, 0.99);
        let p = CentralizedParams::new(eps, kappa).unwrap();
        let n = 100_000;
        for i in 1..=p.ell() {
            let prev = p.degree_threshold(i - 1, n);
            assert!(
                p.degree_threshold(i, n) <= prev * prev * (1.0 + 1e-9),
                "seed {seed} phase {i}"
            );
        }
        let (alpha, beta) = p.certified_stretch();
        assert!(alpha <= 1.0 + eps + 1e-9, "seed {seed}");
        assert!(beta.is_finite() && beta >= 0.0);

        // Distributed params across the admissible ρ range.
        let lo = 1.0 / kappa as f64;
        let rho = (lo + rng.gen_f64() * (0.5 - lo)).clamp(lo, 0.5);
        let pd = DistributedParams::new(eps, kappa, rho).unwrap();
        for i in 0..pd.ell() {
            let cur = pd.degree_threshold(i, n);
            assert!(
                pd.degree_threshold(i + 1, n) <= cur * cur * (1.0 + 1e-9),
                "seed {seed} phase {i}"
            );
        }
        let (alpha_d, _) = pd.certified_stretch();
        assert!(alpha_d <= 1.0 + eps + 1e-9, "seed {seed}");
    }
}
