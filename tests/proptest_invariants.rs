//! Property-based tests: the paper's invariants under randomized inputs
//! and parameters.

use proptest::prelude::*;
use usnae::core::centralized::{build_emulator_traced, ProcessingOrder};
use usnae::core::charging::ChargeLedger;
use usnae::core::params::{CentralizedParams, DistributedParams, SpannerParams};
use usnae::core::spanner::build_spanner;
use usnae::core::verify::{audit_stretch, is_subgraph_spanner};
use usnae::graph::distance::sample_pairs;
use usnae::graph::generators;

fn arb_graph() -> impl Strategy<Value = usnae::graph::Graph> {
    (20usize..120, 1u64..500, 15u32..60).prop_map(|(n, seed, density)| {
        generators::gnp_connected(n, density as f64 / 10.0 / n as f64, seed)
            .expect("valid gnp parameters")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cor 2.14 end to end: size bound, charging, stretch, never-shorten.
    #[test]
    fn centralized_emulator_full_contract(
        g in arb_graph(),
        kappa in 2u32..10,
        eps in 0.2f64..0.95,
        order_pick in 0usize..4,
    ) {
        let n = g.num_vertices();
        let order = [
            ProcessingOrder::ById,
            ProcessingOrder::ByIdDesc,
            ProcessingOrder::ByDegreeDesc,
            ProcessingOrder::ByDegreeAsc,
        ][order_pick];
        let p = CentralizedParams::new(eps, kappa).unwrap();
        let (h, trace) = build_emulator_traced(&g, &p, order);

        // Size (leading constant 1).
        prop_assert!(h.num_edges() as f64 <= p.size_bound(n) + 1e-6);

        // Charging discipline (Lemma 2.4's skeleton).
        ChargeLedger::from_emulator(&h)
            .verify(|phase| p.degree_cap(phase, n))
            .map_err(|v| TestCaseError::fail(v.to_string()))?;

        // Stretch on a pair sample.
        let (alpha, beta) = p.certified_stretch();
        let pairs = sample_pairs(&g, 60, 7);
        let rep = audit_stretch(&g, h.graph(), alpha, beta, &pairs);
        prop_assert!(rep.passed(), "{rep:?}");

        // Trace bookkeeping: insertions ≥ distinct edges.
        prop_assert!(trace.total_insertions() >= h.num_edges());
    }

    /// Raw-ε mode keeps the same contract (certification is rescale-free).
    #[test]
    fn raw_epsilon_contract(
        g in arb_graph(),
        kappa in 2u32..12,
        eps in 0.3f64..0.9,
    ) {
        let n = g.num_vertices();
        let p = CentralizedParams::with_raw_epsilon(eps, kappa).unwrap();
        let (h, _) = build_emulator_traced(&g, &p, ProcessingOrder::ById);
        prop_assert!(h.num_edges() as f64 <= p.size_bound(n) + 1e-6);
        let (alpha, beta) = p.certified_stretch();
        let pairs = sample_pairs(&g, 50, 11);
        let rep = audit_stretch(&g, h.graph(), alpha, beta, &pairs);
        prop_assert!(rep.passed(), "{rep:?}");
    }

    /// Cor 4.4: the spanner is always a subgraph with certified stretch.
    #[test]
    fn spanner_contract(
        g in arb_graph(),
        kappa in 2u32..8,
    ) {
        let p = SpannerParams::new(0.5, kappa, 0.5).unwrap();
        let s = build_spanner(&g, &p);
        prop_assert!(is_subgraph_spanner(&g, s.graph()));
        prop_assert!(s.num_edges() <= g.num_edges());
        let (alpha, beta) = p.certified_stretch();
        let pairs = sample_pairs(&g, 50, 13);
        let rep = audit_stretch(&g, s.graph(), alpha, beta, &pairs);
        prop_assert!(rep.passed(), "{rep:?}");
    }

    /// Emulator distances dominate graph distances pointwise (d_G ≤ d_H)
    /// and every connected pair stays connected.
    #[test]
    fn emulator_never_shortens_or_disconnects(
        g in arb_graph(),
        kappa in 2u32..8,
    ) {
        let p = CentralizedParams::new(0.5, kappa).unwrap();
        let (h, _) = build_emulator_traced(&g, &p, ProcessingOrder::ById);
        let source = 0;
        let dg = usnae::graph::bfs::bfs(&g, source);
        let dh = h.distances_from(source);
        for v in 0..g.num_vertices() {
            match (dg[v], dh[v]) {
                (Some(a), Some(b)) => prop_assert!(b >= a, "pair (0,{v}): {b} < {a}"),
                (Some(_), None) => prop_assert!(false, "vertex {v} lost connectivity"),
                _ => {}
            }
        }
    }

    /// Parameter algebra invariants: deg_{i+1} ≤ deg_i² and α within 1+ε
    /// (rescaled mode) across the admissible space.
    #[test]
    fn parameter_algebra_invariants(
        kappa in 2u32..200,
        eps in 0.05f64..0.99,
        rho_scale in 0.0f64..1.0,
    ) {
        let p = CentralizedParams::new(eps, kappa).unwrap();
        let n = 100_000;
        for i in 1..=p.ell() {
            let prev = p.degree_threshold(i - 1, n);
            prop_assert!(p.degree_threshold(i, n) <= prev * prev * (1.0 + 1e-9));
        }
        let (alpha, beta) = p.certified_stretch();
        prop_assert!(alpha <= 1.0 + eps + 1e-9);
        prop_assert!(beta.is_finite() && beta >= 0.0);

        // Distributed params across the admissible ρ range.
        let lo = 1.0 / kappa as f64;
        let rho = (lo + rho_scale * (0.5 - lo)).clamp(lo, 0.5);
        let pd = DistributedParams::new(eps, kappa, rho).unwrap();
        for i in 0..pd.ell() {
            let cur = pd.degree_threshold(i, n);
            prop_assert!(pd.degree_threshold(i + 1, n) <= cur * cur * (1.0 + 1e-9));
        }
        let (alpha_d, _) = pd.certified_stretch();
        prop_assert!(alpha_d <= 1.0 + eps + 1e-9);
    }
}
