//! Integration tests of the distributed construction against the paper's
//! §3 theorems, run end to end through the CONGEST simulator.

use usnae::api::{Algorithm, Emulator};
use usnae::congest::Simulator;
use usnae::core::distributed::popular::PopularDetect;
use usnae::core::distributed::ruling::compute_ruling_set;
use usnae::core::params::DistributedParams;
use usnae::graph::bfs::bfs;
use usnae::graph::generators;

/// Theorem 3.1(2) at integration scale: after one Algorithm-2 run over all
/// vertices, every *unpopular* source knows every source within δ at the
/// exact distance.
#[test]
fn theorem_3_1_exact_knowledge_for_unpopular_centers() {
    for (name, g, cap, delta) in [
        (
            "gnp",
            generators::gnp_connected(120, 0.05, 3).unwrap(),
            6usize,
            4u64,
        ),
        ("grid", generators::grid2d(11, 11).unwrap(), 5, 6),
        (
            "ws",
            generators::watts_strogatz(120, 4, 0.05, 9).unwrap(),
            6,
            5,
        ),
    ] {
        let n = g.num_vertices();
        let sources: Vec<usize> = (0..n).collect();
        let mut sim = Simulator::new(&g);
        let mut det = PopularDetect::new(n, &sources, cap, delta);
        sim.run(&mut det, 1 << 30).unwrap();
        let popular: std::collections::HashSet<usize> = det.popular_centers().into_iter().collect();
        for c in 0..n {
            if popular.contains(&c) {
                continue;
            }
            let exact = bfs(&g, c);
            for (other, &d_other) in exact.iter().enumerate() {
                if other == c {
                    continue;
                }
                if let Some(d) = d_other {
                    if d <= delta {
                        assert_eq!(
                            det.known(c).get(&other).copied(),
                            Some(d),
                            "{name}: unpopular {c} lacks exact distance to {other}"
                        );
                    }
                }
            }
        }
    }
}

/// Theorem 3.2 substitute (S1): the distributed ruling set satisfies
/// separation ≥ 2δ+1 and domination ≤ 2δ on every family.
#[test]
fn ruling_set_guarantees_across_families() {
    for (name, g) in [
        ("gnp", generators::gnp_connected(100, 0.06, 1).unwrap()),
        ("torus", generators::torus2d(10, 10).unwrap()),
        ("ba", generators::barabasi_albert(100, 3, 5).unwrap()),
    ] {
        let candidates: Vec<usize> = (0..g.num_vertices()).step_by(2).collect();
        for delta in [1u64, 2, 3] {
            let mut sim = Simulator::new(&g);
            let rs = compute_ruling_set(&mut sim, &candidates, delta, 1 << 30).unwrap();
            for (i, &u) in rs.rulers.iter().enumerate() {
                let d = bfs(&g, u);
                for &v in rs.rulers.iter().skip(i + 1) {
                    assert!(
                        d[v].unwrap() > 2 * delta,
                        "{name} delta={delta}: rulers {u},{v} violate separation"
                    );
                }
            }
            for &c in &candidates {
                let d = bfs(&g, c);
                assert!(
                    rs.rulers
                        .iter()
                        .any(|&r| d[r].is_some_and(|x| x <= 2 * delta)),
                    "{name} delta={delta}: candidate {c} undominated"
                );
            }
        }
    }
}

/// F7 end to end: on broom graphs the backtracking must split at the hub,
/// and the final emulator still meets every guarantee.
#[test]
fn hub_splitting_preserves_guarantees_on_brooms() {
    for arms in [8usize, 16, 24] {
        let g = generators::broom(arms, 3).unwrap();
        let n = g.num_vertices();
        let out = Emulator::builder(&g)
            .kappa(2)
            .algorithm(Algorithm::Distributed)
            .build()
            .unwrap();
        let stats = out.congest.as_ref().unwrap();
        assert_eq!(stats.knowledge_violations, 0, "arms={arms}");
        assert!(
            out.num_edges() as f64 <= out.size_bound.unwrap(),
            "arms={arms}"
        );
        // Distances from the hub to arm tips must be preserved within
        // certified stretch.
        let (alpha, beta) = out.certified.unwrap();
        let dg = bfs(&g, 0);
        let dh = out.emulator.distances_from(0);
        for v in 0..n {
            let (Some(a), Some(b)) = (dg[v], dh[v]) else {
                panic!("arms={arms}: vertex {v} unreachable in H")
            };
            assert!(b as f64 <= alpha * a as f64 + beta);
            assert!(b >= a);
        }
    }
}

/// Rounds scale with the paper's budget ordering: larger ρ (bigger degree
/// caps, fewer phases) should not blow up the measured rounds beyond the
/// paper's `n^ρ/ε^ℓ` relation by orders of magnitude.
#[test]
fn rounds_stay_within_reasonable_multiple_of_budget() {
    let g = generators::gnp_connected(96, 0.07, 11).unwrap();
    for rho in [0.34f64, 0.5] {
        let p = DistributedParams::new(0.5, 4, rho).unwrap();
        let out = Emulator::builder(&g)
            .rho(rho)
            .algorithm(Algorithm::Distributed)
            .build()
            .unwrap();
        let rounds = out.congest.as_ref().unwrap().metrics.rounds;
        let budget = p.round_budget(96);
        // The paper's budget hides constants; we check we are within a
        // small constant of it (and strictly positive).
        assert!(rounds > 0);
        assert!(
            (rounds as f64) < 50.0 * budget.max(1.0),
            "rho={rho}: rounds {rounds} vs budget {budget}"
        );
    }
}

/// The distributed and fast-centralized builds realize the same schedule:
/// their phase structures see the same popularity landscape at phase 0.
#[test]
fn distributed_and_fast_agree_on_phase0_popularity() {
    let g = generators::gnp_connected(90, 0.08, 17).unwrap();
    let dist = Emulator::builder(&g)
        .algorithm(Algorithm::Distributed)
        .traced(true)
        .build()
        .unwrap();
    let fast = Emulator::builder(&g)
        .algorithm(Algorithm::FastCentralized)
        .traced(true)
        .build()
        .unwrap();
    let d_trace = dist.trace.unwrap();
    let f_trace = fast.trace.unwrap();
    assert_eq!(
        d_trace.as_distributed().unwrap()[0].num_popular,
        f_trace.as_fast().unwrap().phases[0].num_popular
    );
}

/// Failure injection: an exhausted round budget surfaces as a structured
/// error, not a hang or a panic.
#[test]
fn round_budget_exhaustion_is_reported() {
    use usnae::congest::CongestError;
    let g = generators::gnp_connected(64, 0.1, 3).unwrap();
    let sources: Vec<usize> = (0..64).collect();
    let mut sim = Simulator::new(&g);
    let mut det = PopularDetect::new(64, &sources, 4, 10);
    match sim.run(&mut det, 2) {
        Err(CongestError::RoundLimitExceeded { limit: 2 }) => {}
        other => panic!("expected round-limit error, got {other:?}"),
    }
}

/// The CONGEST drivers emit their edge streams in a single defined order
/// (ascending center/neighbor id out of `BTreeMap` knowledge tables), so
/// two end-to-end simulator builds are indistinguishable: exact stream,
/// trace, round/message metrics, and per-phase timing skeleton.
///
/// Deliberately overlaps the registry-wide run-to-run sweep in
/// `tests/parallel_determinism.rs`: this is the builder-path twin (fluent
/// API, explicit `rho`) kept in the model suite so the §3 contract is
/// asserted next to the theorems it enables.
#[test]
fn congest_builds_are_exactly_reproducible() {
    let g = generators::gnp_connected(80, 0.07, 21).unwrap();
    for algo in [Algorithm::Distributed, Algorithm::DistributedSpanner] {
        let build = || {
            Emulator::builder(&g)
                .rho(0.5)
                .traced(true)
                .algorithm(algo)
                .build()
                .unwrap()
        };
        let a = build();
        let b = build();
        assert_eq!(
            a.emulator.provenance(),
            b.emulator.provenance(),
            "{algo:?}: edge stream diverged between runs"
        );
        let ca = a.congest.as_ref().expect("CONGEST build");
        let cb = b.congest.as_ref().expect("CONGEST build");
        assert_eq!(ca.metrics, cb.metrics, "{algo:?}: metrics diverged");
        let phases = |o: &usnae::api::BuildOutput| {
            o.stats
                .phases
                .iter()
                .map(|p| (p.phase, p.explorations))
                .collect::<Vec<_>>()
        };
        assert_eq!(phases(&a), phases(&b), "{algo:?}: phase skeleton diverged");
        assert!(!a.stats.phases.is_empty(), "{algo:?}: no phase timings");
    }
}
