//! Golden-stream fixtures: the exact, fingerprinted insertion streams of
//! all 9 registry algorithms on two small fixed graphs, checked into
//! `tests/data/`.
//!
//! The determinism guarantee (see `usnae_core::api`) says every
//! construction is a pure function of `(graph, config)`; these fixtures
//! pin that function's *value* across commits. Any change that moves an
//! edge stream — a reordered emission loop, a changed tie-break, a codec
//! bug — fails here loudly, pointing at the exact drifted algorithm,
//! instead of surfacing as a mysterious cache invalidation or a
//! shard-merge mismatch three layers up. The partition-conformance suite
//! reuses the same fixtures as its fixed oracle: sharded builds are
//! checked against these files without rebuilding the unsharded baseline.
//!
//! To regenerate after an *intentional* stream change:
//!
//! ```text
//! USNAE_REGEN_GOLDEN=1 cargo test --test golden_streams
//! git add tests/data && git commit
//! ```

mod common;

use common::{fixture_graphs, golden_config, golden_fingerprint, golden_path, stream_text};
use usnae::registry;

fn regen_requested() -> bool {
    std::env::var("USNAE_REGEN_GOLDEN").is_ok_and(|v| v == "1")
}

#[test]
fn every_registry_algorithm_matches_its_golden_stream() {
    let cfg = golden_config();
    for (tag, g) in fixture_graphs() {
        for c in registry::all() {
            let out = c
                .build(&g, &cfg)
                .unwrap_or_else(|e| panic!("{} on {tag}: {e}", c.name()));
            let got = stream_text(tag, c.name(), &out);
            let path = golden_path(tag, c.name());
            if regen_requested() {
                std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/data");
                std::fs::write(&path, &got)
                    .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
            }
            let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "missing golden stream {} ({e}); regenerate with \
                     `USNAE_REGEN_GOLDEN=1 cargo test --test golden_streams` and commit tests/data",
                    path.display()
                )
            });
            assert_eq!(
                got,
                want,
                "{} on {tag}: construction drifted from its golden reference stream \
                 ({}). If the change is intentional, regenerate with \
                 `USNAE_REGEN_GOLDEN=1 cargo test --test golden_streams` and commit tests/data; \
                 otherwise this is a determinism regression.",
                c.name(),
                path.display()
            );
        }
    }
}

#[test]
fn golden_headers_are_self_consistent() {
    // The recorded fingerprint must match the stream the file itself
    // carries — a hand-edited or truncated fixture fails here, not as a
    // confusing diff in the drift test.
    let cfg = golden_config();
    for (tag, g) in fixture_graphs() {
        for c in registry::all() {
            let path = golden_path(tag, c.name());
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue; // the drift test reports missing files
            };
            let header = golden_fingerprint(&text)
                .unwrap_or_else(|| panic!("{}: no fingerprint header", path.display()));
            let out = c.build(&g, &cfg).unwrap();
            assert_eq!(
                header,
                out.stream_fingerprint(),
                "{}: header fingerprint disagrees with the rebuilt stream",
                path.display()
            );
            let records: usize = text
                .lines()
                .find_map(|l| l.strip_prefix("# records="))
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or_else(|| panic!("{}: no records header", path.display()));
            let body = text.lines().filter(|l| !l.starts_with('#')).count();
            assert_eq!(records, body, "{}: record count header", path.display());
        }
    }
}
