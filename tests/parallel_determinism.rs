//! Registry-wide parallel determinism suite: for every construction in the
//! catalogue, the sharded build (`threads > 1`) must be **byte-identical**
//! to the sequential build (`threads = 1`) — same weighted edge stream with
//! the same provenance, same certified `(α, β)`, same size stats. This is
//! the contract that makes `BuildConfig::threads` safe to flip on in any
//! consumer.
//!
//! The CI thread matrix sets `USNAE_TEST_THREADS` to focus one leg on one
//! thread count; without it the suite sweeps {2, 4, 8} against the
//! sequential baseline.

use usnae::api::{BuildConfig, BuildOutput};
use usnae::graph::{generators, Graph};
use usnae::registry;

/// Thread counts to compare against the sequential baseline. The
/// `USNAE_TEST_THREADS` env var (CI matrix) narrows the sweep to one count;
/// `1` is accepted and degenerates to a self-comparison.
fn thread_counts() -> Vec<usize> {
    match std::env::var("USNAE_TEST_THREADS") {
        Ok(v) => {
            let t: usize = v
                .parse()
                .expect("USNAE_TEST_THREADS must be a positive integer");
            assert!(t >= 1, "USNAE_TEST_THREADS must be >= 1");
            vec![t]
        }
        Err(_) => vec![2, 4, 8],
    }
}

/// Seeded inputs per construction; CONGEST simulations get smaller
/// instances of the same family.
fn input(seed: u64, congest: bool) -> Graph {
    let n = if congest { 70 } else { 130 };
    generators::gnp_connected(n, 8.0 / n as f64, seed).expect("valid gnp parameters")
}

fn config(seed: u64, threads: usize) -> BuildConfig {
    BuildConfig {
        seed,
        threads,
        traced: true,
        ..BuildConfig::default()
    }
}

/// The emulator's weighted edge set in canonical (sorted) form.
fn canonical_edges(out: &BuildOutput) -> Vec<(usize, usize, u64)> {
    let mut edges: Vec<(usize, usize, u64)> = out
        .emulator
        .graph()
        .edges()
        .map(|e| (e.u, e.v, e.weight))
        .collect();
    edges.sort_unstable();
    edges
}

/// Everything the issue's parity contract names: the emulator edge set,
/// certified `(α, β)`, and the size stats. For the sharded constructions
/// (`supports().parallel`) we hold the *stronger* invariant that the exact
/// insertion stream (provenance order included) matches; the CONGEST
/// simulations order some insertions by internal map iteration, so for
/// them only the canonical edge set is compared — it is the output
/// contract, and they ignore `threads` anyway.
fn assert_outputs_identical(
    c: &dyn usnae::api::Construction,
    seed: u64,
    threads: usize,
    a: &BuildOutput,
    b: &BuildOutput,
) {
    let ctx = format!("{} seed={seed} threads={threads}", c.name());
    assert_eq!(a.num_edges(), b.num_edges(), "{ctx}: edge count diverged");
    assert_eq!(
        canonical_edges(a),
        canonical_edges(b),
        "{ctx}: emulator edge set diverged"
    );
    if c.supports().parallel {
        assert_eq!(
            a.emulator.provenance(),
            b.emulator.provenance(),
            "{ctx}: weighted edge stream / provenance diverged"
        );
    }
    assert_eq!(a.certified, b.certified, "{ctx}: certified (α, β) diverged");
    assert_eq!(a.size_bound, b.size_bound, "{ctx}: size bound diverged");
    assert_eq!(
        a.emulator.graph().total_weight(),
        b.emulator.graph().total_weight(),
        "{ctx}: total weight diverged"
    );
    // Stats must reflect the thread count actually requested.
    assert_eq!(b.stats.threads, threads, "{ctx}: stats.threads wrong");
}

#[test]
fn every_registry_algorithm_is_thread_count_invariant() {
    let counts = thread_counts();
    for c in registry::all() {
        let congest = c.supports().congest;
        for seed in [1u64, 7, 23] {
            let g = input(seed, congest);
            let baseline = c
                .build(&g, &config(seed, 1))
                .unwrap_or_else(|e| panic!("{} seed={seed} sequential: {e}", c.name()));
            assert_eq!(baseline.stats.threads, 1);
            for &threads in &counts {
                let parallel = c
                    .build(&g, &config(seed, threads))
                    .unwrap_or_else(|e| panic!("{} seed={seed} threads={threads}: {e}", c.name()));
                assert_outputs_identical(c.as_ref(), seed, threads, &baseline, &parallel);
            }
        }
    }
}

#[test]
fn sharded_constructions_advertise_parallel_support() {
    // The constructions that actually fan out must say so; the capability
    // sheet is what lets consumers pick where extra threads pay off.
    let parallel: Vec<&str> = registry::all()
        .iter()
        .filter(|c| c.supports().parallel)
        .map(|c| c.name())
        .collect();
    for name in [
        "centralized",
        "fast-centralized",
        "spanner",
        "ep01",
        "en17a",
        "em19",
    ] {
        assert!(parallel.contains(&name), "{name} should shard explorations");
    }
    // The CONGEST simulations accept the knob but run sequentially.
    for c in registry::all() {
        if c.supports().congest {
            assert!(!c.supports().parallel, "{}", c.name());
        }
    }
}

#[test]
fn zero_threads_is_a_build_error_for_every_algorithm() {
    let g = generators::path(6).unwrap();
    let cfg = BuildConfig {
        threads: 0,
        ..BuildConfig::default()
    };
    for c in registry::all() {
        let err = c
            .build(&g, &cfg)
            .expect_err(&format!("{} must reject threads = 0", c.name()));
        assert!(
            err.to_string().contains("threads"),
            "{}: error should name threads, got {err}",
            c.name()
        );
    }
}

#[test]
fn order_and_raw_epsilon_variants_stay_invariant_too() {
    // The sharded Algorithm 1 path interacts with the processing order
    // (the prefetch order follows it); sweep the order knob explicitly.
    use usnae::api::ProcessingOrder;
    let g = generators::gnp_connected(140, 0.05, 5).unwrap();
    let c = registry::find("centralized").unwrap();
    for order in [
        ProcessingOrder::ById,
        ProcessingOrder::ByIdDesc,
        ProcessingOrder::ByDegreeDesc,
        ProcessingOrder::ByDegreeAsc,
    ] {
        for raw in [false, true] {
            let mk = |threads: usize| BuildConfig {
                order,
                raw_epsilon: raw,
                threads,
                ..BuildConfig::default()
            };
            let a = c.build(&g, &mk(1)).unwrap();
            let b = c.build(&g, &mk(4)).unwrap();
            assert_eq!(
                a.emulator.provenance(),
                b.emulator.provenance(),
                "order={order:?} raw={raw}"
            );
        }
    }
}
