//! Registry-wide determinism suite: for every construction in the
//! catalogue, the built structure is a pure function of
//! `(graph, config)` — independent of **thread count** and of the **run**.
//!
//! Two contracts are enforced, with no per-algorithm special cases:
//!
//! * **Thread invariance.** The sharded build (`threads > 1`) must be
//!   byte-identical to the sequential build (`threads = 1`): same weighted
//!   edge *stream* (insertion order and provenance included), same trace,
//!   same certified `(α, β)`, same size stats. This is what makes
//!   `BuildConfig::threads` safe to flip on in any consumer.
//! * **Run invariance.** Two builds with the identical config — even at
//!   `threads = 1` — must produce the identical stream, trace, and stats
//!   counters. This is the contract construction caching and shard merging
//!   stand on; it would catch e.g. `HashMap`-iteration order leaking into
//!   an emission loop, which thread parity alone can miss.
//!
//! The CONGEST simulations (`distributed`, `distributed-spanner`) are held
//! to the same exact-stream standard as everyone else: their drivers emit
//! edges in a single defined order (ascending center/neighbor id from
//! `BTreeMap` knowledge tables).
//!
//! The CI thread matrix sets `USNAE_TEST_THREADS` to focus one leg on one
//! thread count; without it the suite sweeps {2, 4, 8} against the
//! sequential baseline.

use usnae::api::{BuildConfig, BuildOutput};
use usnae::graph::{generators, Graph};
use usnae::registry;

/// Thread counts to compare against the sequential baseline. The
/// `USNAE_TEST_THREADS` env var (CI matrix) narrows the sweep to one count;
/// `1` is accepted and degenerates to a self-comparison.
fn thread_counts() -> Vec<usize> {
    match std::env::var("USNAE_TEST_THREADS") {
        Ok(v) => {
            let t: usize = v
                .parse()
                .expect("USNAE_TEST_THREADS must be a positive integer");
            assert!(t >= 1, "USNAE_TEST_THREADS must be >= 1");
            vec![t]
        }
        Err(_) => vec![2, 4, 8],
    }
}

/// Seeded inputs per construction; CONGEST simulations get smaller
/// instances of the same family.
fn input(seed: u64, congest: bool) -> Graph {
    let n = if congest { 70 } else { 130 };
    generators::gnp_connected(n, 8.0 / n as f64, seed).expect("valid gnp parameters")
}

fn config(seed: u64, threads: usize) -> BuildConfig {
    BuildConfig {
        seed,
        threads,
        traced: true,
        ..BuildConfig::default()
    }
}

/// The deterministic skeleton of the execution stats: everything except
/// wall-clock durations (thread count, and per-phase indices/exploration
/// counts).
fn stats_counters(out: &BuildOutput) -> (usize, Vec<(usize, usize)>) {
    (
        out.stats.threads,
        out.stats
            .phases
            .iter()
            .map(|p| (p.phase, p.explorations))
            .collect(),
    )
}

/// Asserts the full parity contract between two builds of the same
/// `(graph, config-modulo-threads)`: the exact weighted edge stream with
/// provenance — **no canonical-set fallback for anyone** — plus trace,
/// certification, size stats, and (for CONGEST builds) simulator metrics.
fn assert_outputs_identical(ctx: &str, a: &BuildOutput, b: &BuildOutput) {
    assert_eq!(
        a.emulator.provenance(),
        b.emulator.provenance(),
        "{ctx}: weighted edge stream / provenance diverged"
    );
    assert_eq!(a.num_edges(), b.num_edges(), "{ctx}: edge count diverged");
    assert_eq!(a.certified, b.certified, "{ctx}: certified (α, β) diverged");
    assert_eq!(a.size_bound, b.size_bound, "{ctx}: size bound diverged");
    assert_eq!(
        a.emulator.graph().total_weight(),
        b.emulator.graph().total_weight(),
        "{ctx}: total weight diverged"
    );
    let summaries = |o: &BuildOutput| o.trace.as_ref().map(|t| t.phase_summaries());
    assert_eq!(summaries(a), summaries(b), "{ctx}: phase trace diverged");
    match (&a.congest, &b.congest) {
        (None, None) => {}
        (Some(ca), Some(cb)) => {
            assert_eq!(ca.metrics, cb.metrics, "{ctx}: CONGEST metrics diverged");
            assert_eq!(
                (ca.knowledge_checked, ca.knowledge_violations),
                (cb.knowledge_checked, cb.knowledge_violations),
                "{ctx}: knowledge checks diverged"
            );
        }
        _ => panic!("{ctx}: congest stats presence diverged"),
    }
    // Stats *counters* are compared only between equal-thread runs (the
    // run-to-run test): the adaptive prefetch legitimately launches more
    // explorations at higher thread counts — wasted work, never different
    // output.
}

#[test]
fn every_registry_algorithm_is_thread_count_invariant() {
    let counts = thread_counts();
    for c in registry::all() {
        let congest = c.supports().congest;
        for seed in [1u64, 7, 23] {
            let g = input(seed, congest);
            let baseline = c
                .build(&g, &config(seed, 1))
                .unwrap_or_else(|e| panic!("{} seed={seed} sequential: {e}", c.name()));
            assert_eq!(baseline.stats.threads, 1);
            for &threads in &counts {
                let parallel = c
                    .build(&g, &config(seed, threads))
                    .unwrap_or_else(|e| panic!("{} seed={seed} threads={threads}: {e}", c.name()));
                let ctx = format!("{} seed={seed} threads={threads}", c.name());
                assert_outputs_identical(&ctx, &baseline, &parallel);
                // Stats must reflect the thread count actually requested.
                assert_eq!(parallel.stats.threads, threads, "{ctx}: stats.threads");
            }
        }
    }
}

#[test]
fn every_registry_algorithm_is_run_to_run_deterministic() {
    // Same graph, same config, built twice → identical edge stream, trace,
    // and stats counters. Swept at threads 1 and 4 so a regression is
    // caught even where the thread matrix degenerates to a self-compare.
    //
    // When `USNAE_FINGERPRINT_FILE` is set, the per-build stream
    // fingerprints are also diffed across *processes*: the first
    // invocation writes them to the file, subsequent invocations compare
    // against it — catching nondeterminism that is stable within one
    // process but varies between processes (per-process hash seeds,
    // address-dependent ordering). CI's repeat-determinism leg runs this
    // test twice with the same file.
    let mut fingerprints = String::new();
    for c in registry::all() {
        let congest = c.supports().congest;
        for seed in [3u64, 11] {
            let g = input(seed, congest);
            for threads in [1usize, 4] {
                let cfg = config(seed, threads);
                let first = c
                    .build(&g, &cfg)
                    .unwrap_or_else(|e| panic!("{} seed={seed} run 1: {e}", c.name()));
                let second = c
                    .build(&g, &cfg)
                    .unwrap_or_else(|e| panic!("{} seed={seed} run 2: {e}", c.name()));
                let ctx = format!("{} seed={seed} threads={threads} (repeat)", c.name());
                assert_outputs_identical(&ctx, &first, &second);
                assert_eq!(
                    stats_counters(&first),
                    stats_counters(&second),
                    "{ctx}: stats counters diverged"
                );
                fingerprints.push_str(&format!(
                    "{} seed={seed} threads={threads} {:016x}\n",
                    c.name(),
                    first.stream_fingerprint()
                ));
            }
        }
    }
    if let Ok(path) = std::env::var("USNAE_FINGERPRINT_FILE") {
        match std::fs::read_to_string(&path) {
            Ok(previous) => assert_eq!(
                previous, fingerprints,
                "stream fingerprints diverged from an earlier process's run"
            ),
            Err(_) => std::fs::write(&path, &fingerprints)
                .unwrap_or_else(|e| panic!("cannot write fingerprint file {path}: {e}")),
        }
    }
}

#[test]
fn congest_builds_record_phase_timings() {
    // The CONGEST constructions accept `threads` and now report per-phase
    // timings like the sharded family, so `usnae run --report` is uniform.
    let g = input(5, true);
    for c in registry::all() {
        if !c.supports().congest {
            continue;
        }
        let out = c.build(&g, &config(5, 1)).unwrap();
        assert!(
            !out.stats.phases.is_empty(),
            "{}: CONGEST build reports no phase timings",
            c.name()
        );
        assert!(out.stats.phase0().is_some(), "{}", c.name());
        assert!(
            out.stats.explorations() > 0,
            "{}: no explorations recorded",
            c.name()
        );
        // One timing per simulated phase, in phase order.
        let trace_phases = out
            .trace
            .as_ref()
            .map(|t| t.phase_summaries().len())
            .expect("traced build");
        assert_eq!(out.stats.phases.len(), trace_phases, "{}", c.name());
        for (i, p) in out.stats.phases.iter().enumerate() {
            assert_eq!(p.phase, i, "{}", c.name());
        }
    }
}

#[test]
fn sharded_constructions_advertise_parallel_support() {
    // The constructions that actually fan out must say so; the capability
    // sheet is what lets consumers pick where extra threads pay off.
    let parallel: Vec<&str> = registry::all()
        .iter()
        .filter(|c| c.supports().parallel)
        .map(|c| c.name())
        .collect();
    for name in [
        "centralized",
        "fast-centralized",
        "spanner",
        "ep01",
        "en17a",
        "em19",
    ] {
        assert!(parallel.contains(&name), "{name} should shard explorations");
    }
    // The CONGEST simulations accept the knob but run sequentially.
    for c in registry::all() {
        if c.supports().congest {
            assert!(!c.supports().parallel, "{}", c.name());
        }
    }
}

#[test]
fn zero_threads_is_a_build_error_for_every_algorithm() {
    let g = generators::path(6).unwrap();
    let cfg = BuildConfig {
        threads: 0,
        ..BuildConfig::default()
    };
    for c in registry::all() {
        let err = c
            .build(&g, &cfg)
            .expect_err(&format!("{} must reject threads = 0", c.name()));
        assert!(
            err.to_string().contains("threads"),
            "{}: error should name threads, got {err}",
            c.name()
        );
    }
}

#[test]
fn order_and_raw_epsilon_variants_stay_invariant_too() {
    // The sharded Algorithm 1 path interacts with the processing order
    // (the prefetch order follows it); sweep the order knob explicitly.
    use usnae::api::ProcessingOrder;
    let g = generators::gnp_connected(140, 0.05, 5).unwrap();
    let c = registry::find("centralized").unwrap();
    for order in [
        ProcessingOrder::ById,
        ProcessingOrder::ByIdDesc,
        ProcessingOrder::ByDegreeDesc,
        ProcessingOrder::ByDegreeAsc,
    ] {
        for raw in [false, true] {
            let mk = |threads: usize| BuildConfig {
                order,
                raw_epsilon: raw,
                threads,
                ..BuildConfig::default()
            };
            let a = c.build(&g, &mk(1)).unwrap();
            let b = c.build(&g, &mk(4)).unwrap();
            assert_eq!(
                a.emulator.provenance(),
                b.emulator.provenance(),
                "order={order:?} raw={raw}"
            );
        }
    }
}
