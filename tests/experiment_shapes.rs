//! The headline experiment *shapes* at integration scale: the conclusions
//! `EXPERIMENTS.md` draws must hold whenever the suite regenerates them.

use usnae::eval::experiments::{
    anatomy, e1_size, e2_ultra_sparse, e7_spanner, e8_baselines, ultra_sparse_kappa,
};
use usnae::eval::workloads::figure_suite;

#[test]
fn e1_shape_every_ratio_at_most_one_and_tighter_for_larger_kappa() {
    let t = e1_size(&[200, 400], &[2, 4, 8], 0.5, 42);
    let ratios = t.column_f64("ratio");
    assert!(!ratios.is_empty());
    for r in &ratios {
        assert!(*r <= 1.0 + 1e-9, "ratio {r}");
    }
    // Aggregate shape: mean ratio grows with κ (the bound tightens).
    let kappas = t.column_f64("kappa");
    let mean = |k: f64| {
        let xs: Vec<f64> = kappas
            .iter()
            .zip(&ratios)
            .filter(|(kk, _)| **kk == k)
            .map(|(_, r)| *r)
            .collect();
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    assert!(mean(8.0) > mean(2.0), "{} vs {}", mean(8.0), mean(2.0));
}

#[test]
fn e2_shape_ultra_sparse_stays_within_shrinking_bound() {
    // edges/n approaches 1 (from below on these inputs: the emulator is a
    // near-tree) and always sits under the bound curve n^(1/κ), which
    // itself shrinks toward 1 as n grows.
    let t = e2_ultra_sparse(&[128, 512], 0.5, 42);
    let ns = t.column_f64("n");
    let edges_over_n = t.column_f64("edges_over_n");
    let bound_over_n = t.column_f64("bound_over_n");
    for ((n, e), b) in ns.iter().zip(&edges_over_n).zip(&bound_over_n) {
        assert!(e <= b, "n={n}: edges/n {e} above bound/n {b}");
        assert!(*e <= 1.02 && *e >= 0.9, "n={n}: edges/n {e} not near 1");
    }
    let mean_bound = |lo: f64, hi: f64| {
        let xs: Vec<f64> = ns
            .iter()
            .zip(&bound_over_n)
            .filter(|(n, _)| **n >= lo && **n < hi)
            .map(|(_, b)| *b)
            .collect();
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    assert!(
        mean_bound(300.0, 1e9) < mean_bound(0.0, 300.0),
        "bound curve must shrink"
    );
}

#[test]
fn e7_shape_ours_never_loses_to_em19() {
    let t = e7_spanner(&[240], &[4, 8], 0.5, 0.5, 42);
    for f in t.column_f64("em19_over_ours") {
        assert!(f >= 1.0 - 0.05, "EM19/ours factor {f} < 1");
    }
    let subgraph_col = t.column("subgraph").unwrap();
    for i in 0..t.num_rows() {
        assert_eq!(t.cell(i, subgraph_col), Some("true"));
    }
}

#[test]
fn e8_shape_ours_never_loses_to_ep01_and_wins_on_dense_families() {
    // E8 is registry-driven long format: one row per (family, kappa, algo).
    // Regroup by (family, kappa) to compare lineages.
    let t = e8_baselines(300, &[4, 8], 0.5, 42);
    let fam = t.column("family").unwrap();
    let kap = t.column("kappa").unwrap();
    let alg = t.column("algo").unwrap();
    let edges = t.column_f64("edges");
    let mut by_case: std::collections::HashMap<
        (String, String),
        std::collections::HashMap<String, f64>,
    > = Default::default();
    for (i, &e) in edges.iter().enumerate() {
        by_case
            .entry((
                t.cell(i, fam).unwrap().to_string(),
                t.cell(i, kap).unwrap().to_string(),
            ))
            .or_default()
            .insert(t.cell(i, alg).unwrap().to_string(), e);
    }
    assert!(!by_case.is_empty());
    for ((family, kappa), algos) in &by_case {
        let ours = algos["centralized"];
        // EP01 is the deterministic comparable: same SAI skeleton plus the
        // ground partition. Ours must never exceed it (beyond tiny noise).
        let ep01 = algos["ep01"];
        assert!(
            ours <= ep01 + 8.0,
            "{family} kappa={kappa}: ours {ours} vs ep01 {ep01}"
        );
        // Against the randomized lineages the paper's win is on *dense*
        // inputs (sparse lattices are already near-optimal emulators of
        // themselves, and randomized bunches can undercut them at weaker
        // stretch). Check the dense rows.
        if family == "gnp-dense" {
            let tz = algos["tz06"];
            assert!(
                ours <= tz + 32.0,
                "{family} kappa={kappa}: ours {ours} vs tz06 {tz}"
            );
        }
    }
}

#[test]
fn anatomy_shape_buffer_joins_appear_somewhere() {
    // The buffer set must actually fire on the figure suite (Fig. 4).
    let t = anatomy(&figure_suite(96), 2, 0.5);
    let buffer_joins: f64 = t.column_f64("buffer_joins").into_iter().sum();
    assert!(
        buffer_joins > 0.0,
        "no buffer joins across the figure suite"
    );
}

#[test]
fn ultra_sparse_kappa_is_omega_log_n() {
    for n in [64usize, 256, 1024, 4096] {
        let k = ultra_sparse_kappa(n) as f64;
        let log_n = (n as f64).log2();
        assert!(k >= log_n, "kappa {k} not >= log n {log_n}");
    }
}
