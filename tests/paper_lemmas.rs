//! Lemma-level audits: the building blocks of the paper's proofs, checked
//! mechanically on random instances.

use std::collections::HashSet;
use usnae::api::Emulator;
use usnae::core::centralized::BuildTrace;
use usnae::core::params::CentralizedParams;
use usnae::graph::{generators, Graph};

fn build(
    g: &Graph,
    eps: f64,
    kappa: u32,
) -> (usnae::core::Emulator, BuildTrace, CentralizedParams) {
    let p = CentralizedParams::new(eps, kappa).unwrap();
    let out = Emulator::builder(g)
        .epsilon(eps)
        .kappa(kappa)
        .traced(true)
        .build()
        .unwrap();
    let t = out.trace.unwrap().as_centralized().unwrap().clone();
    (out.emulator, t, p)
}

/// Lemma 2.2: superclusters formed in a phase are pairwise disjoint.
#[test]
fn lemma_2_2_superclusters_disjoint() {
    for seed in 0..4u64 {
        let g = generators::gnp_connected(250, 0.06, seed).unwrap();
        let (_, trace, _) = build(&g, 0.5, 4);
        for partition in &trace.partitions {
            let mut seen = HashSet::new();
            for c in partition.clusters() {
                for &v in &c.members {
                    assert!(
                        seen.insert(v),
                        "seed {seed}: vertex {v} in two superclusters"
                    );
                }
            }
        }
    }
}

/// Lemma 2.3: `|P_i| ≤ n^(1 − (2^i − 1)/κ)`.
#[test]
fn lemma_2_3_partition_sizes() {
    for (kappa, seed) in [(2u32, 0u64), (4, 1), (8, 2)] {
        let g = generators::gnp_connected(350, 0.07, seed).unwrap();
        let (_, trace, p) = build(&g, 0.5, kappa);
        let n = g.num_vertices() as f64;
        for (i, part) in trace.partitions.iter().enumerate().take(p.ell() + 1) {
            let bound = n.powf(1.0 - (2f64.powi(i as i32) - 1.0) / kappa as f64);
            assert!(
                part.len() as f64 <= bound + 1e-6,
                "kappa {kappa} phase {i}: {} > {bound}",
                part.len()
            );
        }
    }
}

/// Lemma 2.5: `Rad(P_i) ≤ R_i` — every cluster member is within `R_i` of
/// its center *in the emulator H*.
#[test]
fn lemma_2_5_cluster_radii() {
    for seed in 0..3u64 {
        let g = generators::gnp_connected(200, 0.08, seed).unwrap();
        let (h, trace, p) = build(&g, 0.5, 4);
        for (i, partition) in trace.partitions.iter().enumerate() {
            let r_i = p.schedule().radius[i.min(p.schedule().radius.len() - 1)];
            for c in partition.clusters() {
                let dist = h.distances_from(c.center);
                for &v in &c.members {
                    let d = dist[v].unwrap_or_else(|| {
                        panic!("seed {seed} phase {i}: member {v} unreachable from center")
                    });
                    assert!(
                        d <= r_i,
                        "seed {seed} phase {i}: Rad violation d_H({},{v}) = {d} > R_i = {r_i}",
                        c.center
                    );
                }
            }
        }
    }
}

/// Lemma 2.7: a `U_i` center's emulator distance to every neighboring
/// center equals the graph distance.
#[test]
fn lemma_2_7_unclustered_centers_have_exact_neighbor_distances() {
    for seed in 0..3u64 {
        let g = generators::gnp_connected(150, 0.07, seed).unwrap();
        let (h, trace, p) = build(&g, 0.5, 4);
        for (i, u_i) in trace.unclustered.iter().enumerate() {
            let delta = p.delta(i);
            // Collect this phase's centers (clusters of P_i).
            let centers: Vec<usize> = trace.partitions[i]
                .clusters()
                .iter()
                .map(|c| c.center)
                .collect();
            let center_set: HashSet<usize> = centers.iter().copied().collect();
            for c in u_i {
                let dg = usnae::graph::bfs::bfs_bounded(&g, c.center, delta);
                for &other in &center_set {
                    if other == c.center {
                        continue;
                    }
                    if let Some(d) = dg[other] {
                        let dh = h.distance(c.center, other).unwrap_or(u64::MAX);
                        assert!(
                            dh <= d,
                            "seed {seed} phase {i}: d_H({},{other}) = {dh} > d_G = {d}",
                            c.center
                        );
                    }
                }
            }
        }
    }
}

/// Lemma 2.8 + eq. (1): the union of all `U_i` partitions `V`.
#[test]
fn lemma_2_8_unclustered_union_partitions_v() {
    for (name, g) in [
        ("gnp", generators::gnp_connected(220, 0.05, 7).unwrap()),
        ("grid", generators::grid2d(14, 14).unwrap()),
        ("star", generators::star(150).unwrap()),
        ("broom", generators::broom(12, 9).unwrap()),
    ] {
        let (_, trace, _) = build(&g, 0.5, 4);
        let n = g.num_vertices();
        let mut covered = vec![false; n];
        for u_i in &trace.unclustered {
            for c in u_i {
                for &v in &c.members {
                    assert!(!covered[v], "{name}: vertex {v} covered twice");
                    covered[v] = true;
                }
            }
        }
        assert!(
            covered.iter().all(|&b| b),
            "{name}: some vertex never unclustered"
        );
    }
}

/// Lemma 2.9: the cluster history forms a laminar family — each `P_{i+1}`
/// cluster is a union of `P_i` clusters.
#[test]
fn lemma_2_9_laminar_family() {
    let g = generators::gnp_connected(300, 0.08, 3).unwrap();
    let (_, trace, _) = build(&g, 0.5, 8);
    let n = g.num_vertices();
    for i in 0..trace.partitions.len() - 1 {
        let prev = trace.partitions[i].vertex_to_cluster(n);
        for sc in trace.partitions[i + 1].clusters() {
            let ids: HashSet<usize> = sc
                .members
                .iter()
                .map(|&v| prev[v].expect("member was clustered"))
                .collect();
            let member_set: HashSet<usize> = sc.members.iter().copied().collect();
            for id in ids {
                for &v in &trace.partitions[i].cluster(id).members {
                    assert!(
                        member_set.contains(&v),
                        "phase {i}: P_i cluster {id} split across superclusters"
                    );
                }
            }
        }
    }
}

/// Lemma 2.4's accounting identity: insertions per phase are bounded by
/// `|P_i|·deg_i − |P_{i+1}|·deg_i²` (eq. 4), which telescopes to
/// `n^(1+1/κ)`.
#[test]
fn eq_4_per_phase_edge_accounting() {
    for seed in 0..3u64 {
        let g = generators::gnp_connected(300, 0.07, seed).unwrap();
        let n = g.num_vertices();
        let (_, trace, p) = build(&g, 0.5, 4);
        for t in &trace.phases {
            let inserted = t.interconnection_edges + t.superclustering_edges + t.buffer_join_edges;
            let deg = p.degree_threshold(t.phase, n);
            let bound = t.num_clusters as f64 * deg
                - trace.partitions[t.phase + 1].len() as f64 * deg * deg;
            assert!(
                inserted as f64 <= bound + 1e-6,
                "seed {seed} phase {}: {inserted} > {bound}",
                t.phase
            );
        }
    }
}
