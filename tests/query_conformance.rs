//! Registry-wide conformance suite for the distance-oracle query engine.
//!
//! Every algorithm in the registry serves a fixed, seeded query set over
//! the two golden fixture graphs through a [`QueryEngine`], and every
//! answer must satisfy the certified stretch
//!
//! ```text
//! d_G(u, v) <= d_hat(u, v) <= alpha * d_G(u, v) + beta
//! ```
//!
//! against an exact BFS oracle ([`Apsp`]) — where `(alpha, beta)` is the
//! pair the construction's proof object certified, threaded through the
//! backend unmodified. On top of the bound, answers must be *byte-
//! identical* across every serving configuration that cannot legally
//! change them: in-memory ([`HeapBackend`]) vs. snapshot-on-disk
//! ([`SnapshotBackend`]) serving, build thread counts {1, 4}, repeat
//! builds, batched vs. one-at-a-time queries, and a warm construction
//! cache ([`CacheStatus::Hit`]) vs. a cold rebuild.
//!
//! The expected answers are pinned as golden fixtures in
//! `tests/data/<graph>.<algo>.queries`. After an intentional change to a
//! construction or the engine, regenerate with:
//!
//! ```text
//! USNAE_REGEN_GOLDEN=1 cargo test --test query_conformance
//! ```
//!
//! and review the diff like source.

mod common;

use common::{fixture_graphs, golden_config, golden_queries_path, queries_text, query_pairs};
use usnae::api::{
    BuildConfig, CacheStatus, HeapBackend, OutputBackend, QueryEngine, SnapshotBackend,
};
use usnae::core::cache::{build_cached, CacheConfig, CacheKey, Snapshot};
use usnae::graph::distance::Apsp;
use usnae::registry;

fn regen_requested() -> bool {
    std::env::var("USNAE_REGEN_GOLDEN").is_ok_and(|v| v == "1")
}

/// A scratch directory under the system temp dir, wiped on create.
fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("usnae-queryconf-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The tentpole conformance sweep: registry × backends {Heap, Snapshot} ×
/// build threads {1, 4} × repeat builds. Every answer must hold against
/// the exact BFS oracle under the engine's certified `(α, β)`, and the
/// serialized answer text must be byte-identical across all of it.
#[test]
fn certified_stretch_holds_and_answers_agree_across_backends_and_threads() {
    let dir = scratch("sweep");
    for (tag, g) in fixture_graphs() {
        let exact = Apsp::new(&g);
        let pairs = query_pairs(&g);
        for c in registry::all() {
            let mut reference: Option<String> = None;
            // The trailing `1` is a repeat build: same config as the first
            // leg, so it must reproduce the first leg's bytes exactly.
            for threads in [1usize, 4, 1] {
                let cfg = BuildConfig {
                    threads,
                    ..golden_config()
                };
                let out = c.build(&g, &cfg).unwrap_or_else(|e| {
                    panic!(
                        "{} failed to build {tag} with {threads} thread(s): {e}",
                        c.name()
                    )
                });
                let snap_path = dir.join(format!("{tag}.{}.usnae", c.name()));
                let key = CacheKey::new(&g, c.name(), &cfg);
                std::fs::write(&snap_path, Snapshot::from_output(key, &out).encode())
                    .expect("write snapshot");

                let heap = HeapBackend::from_output(&out);
                let disk = SnapshotBackend::open(&snap_path).expect("open snapshot");
                for (kind, backend) in [("heap", &heap as &dyn OutputBackend), ("snapshot", &disk)]
                {
                    let engine = QueryEngine::open(backend).expect("open engine");
                    let (alpha, beta) = engine.guarantee();
                    assert_eq!(
                        backend.certified().unwrap_or((1.0, f64::INFINITY)),
                        (alpha, beta),
                        "{}/{tag}/{kind}: backend and engine disagree on the certificate",
                        c.name()
                    );
                    let batched = engine.distances(&pairs);
                    for (&(u, v), a) in pairs.iter().zip(&batched) {
                        assert!(
                            a.holds_against(exact.distance(u, v)),
                            "{}/{tag}/{kind}/t{threads}: ({u},{v}) answer {:?} violates \
                             d_G <= d_hat <= {alpha}*d_G + {beta} (exact {:?})",
                            c.name(),
                            a.value,
                            exact.distance(u, v)
                        );
                        // Batched and one-at-a-time answers are the same
                        // pure function of the pair.
                        assert_eq!(*a, engine.distance(u, v));
                    }
                    let text = queries_text(tag, c.name(), &engine, &pairs);
                    match &reference {
                        None => reference = Some(text),
                        Some(r) => assert_eq!(
                            r,
                            &text,
                            "{}/{tag}: answers drifted ({kind} backend, {threads} thread(s))",
                            c.name()
                        ),
                    }
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every construction certifies a pair the engine actually serves under:
/// certified constructions thread a finite β from the proof object, and
/// uncertified ones degrade to the always-true lower-bound-only pair.
#[test]
fn certificates_are_threaded_not_invented() {
    let (_, g) = fixture_graphs().remove(0);
    let mut finite = 0usize;
    for c in registry::all() {
        let out = c.build(&g, &golden_config()).expect("build");
        let certified = out.certified;
        let engine = out.into_query_engine();
        match certified {
            Some((a, b)) => {
                assert_eq!(engine.guarantee(), (a, b), "{}", c.name());
                assert!(a >= 1.0 && b >= 0.0 && b.is_finite(), "{}", c.name());
                finite += 1;
            }
            None => assert_eq!(engine.guarantee(), (1.0, f64::INFINITY), "{}", c.name()),
        }
    }
    assert!(
        finite >= 2,
        "expected at least two certified constructions in the registry"
    );
}

/// Golden query fixtures: the answers to the fixed query set are pinned
/// byte-for-byte per (graph, algorithm) in `tests/data/`. Regenerate with
/// `USNAE_REGEN_GOLDEN=1 cargo test --test query_conformance`.
#[test]
fn golden_query_fixtures_pin_the_answers() {
    for (tag, g) in fixture_graphs() {
        let pairs = query_pairs(&g);
        for c in registry::all() {
            let out = c.build(&g, &golden_config()).expect("build");
            let engine = out.into_query_engine();
            let got = queries_text(tag, c.name(), &engine, &pairs);
            let path = golden_queries_path(tag, c.name());
            if regen_requested() {
                std::fs::write(&path, &got)
                    .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
                continue;
            }
            let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "missing golden query fixture {} ({e}); regenerate with \
                     USNAE_REGEN_GOLDEN=1 cargo test --test query_conformance",
                    path.display()
                )
            });
            assert_eq!(
                want,
                got,
                "{}/{} answers drifted from the golden fixture; if intentional, \
                 regenerate with USNAE_REGEN_GOLDEN=1 cargo test --test query_conformance",
                tag,
                c.name()
            );
        }
    }
}

/// The recorded fixtures themselves satisfy the certified stretch: each
/// file's header pair bounds each of its answer lines against the exact
/// oracle. This guards review-time edits to `tests/data/` — a fixture
/// that no one could legally regenerate fails here even before a build.
#[test]
fn golden_query_fixtures_are_certified_against_exact_distances() {
    if regen_requested() {
        return; // files are being rewritten by the pinning test this run
    }
    for (tag, g) in fixture_graphs() {
        let exact = Apsp::new(&g);
        for c in registry::all() {
            let path = golden_queries_path(tag, c.name());
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
            let (mut alpha, mut beta) = (f64::NAN, f64::NAN);
            if let Some(h) = text.lines().find_map(|l| l.strip_prefix("# alpha=")) {
                let mut it = h.split(" beta=");
                alpha = it.next().and_then(|v| v.trim().parse().ok()).unwrap();
                beta = it.next().and_then(|v| v.trim().parse().ok()).unwrap();
            }
            assert!(alpha >= 1.0, "{}: bad alpha header", path.display());
            let mut checked = 0usize;
            for line in text.lines().filter(|l| !l.starts_with('#')) {
                let mut it = line.split_whitespace();
                let u: usize = it.next().unwrap().parse().unwrap();
                let v: usize = it.next().unwrap().parse().unwrap();
                let raw = it.next().unwrap();
                let d = exact
                    .distance(u, v)
                    .unwrap_or_else(|| panic!("{tag} fixture pair ({u},{v}) disconnected"));
                let got: u64 = raw.parse().unwrap_or_else(|_| {
                    panic!(
                        "{}: unreachable answer on a connected graph",
                        path.display()
                    )
                });
                assert!(
                    d <= got && (got as f64) <= alpha * d as f64 + beta,
                    "{}: recorded answer {got} for ({u},{v}) outside \
                     [{d}, {alpha}*{d}+{beta}]",
                    path.display()
                );
                checked += 1;
            }
            assert_eq!(checked, common::QUERY_COUNT, "{}", path.display());
        }
    }
}

/// Landmark routing conforms too: with a precomputed index the engine
/// answers under the *widened* certificate `(α, β + 2R)`, and every
/// landmark answer holds against the exact oracle under that pair.
#[test]
fn landmark_answers_hold_under_the_widened_certificate() {
    for (tag, g) in fixture_graphs() {
        let exact = Apsp::new(&g);
        let pairs = query_pairs(&g);
        for c in registry::all() {
            let out = c.build(&g, &golden_config()).expect("build");
            let engine = out.into_query_engine().with_landmarks(4);
            let (alpha, beta) = engine.guarantee();
            let (lm_alpha, lm_beta) = engine.landmark_guarantee();
            assert_eq!(lm_alpha, alpha, "{}/{tag}", c.name());
            assert!(lm_beta >= beta, "{}/{tag}: widening shrank beta", c.name());
            for &(u, v) in &pairs {
                let a = engine.approx_distance(u, v);
                assert_eq!((a.alpha, a.beta), (lm_alpha, lm_beta));
                assert!(
                    a.holds_against(exact.distance(u, v)),
                    "{}/{tag}: landmark answer {:?} for ({u},{v}) violates \
                     ({lm_alpha}, {lm_beta}) (exact {:?})",
                    c.name(),
                    a.value,
                    exact.distance(u, v)
                );
            }
        }
    }
}

/// End-to-end compose with the construction cache: a warm
/// [`CacheStatus::Hit`] serves the same bytes as the cold build — the
/// build-once/query-many path never changes an answer.
#[test]
fn warm_cache_hit_serves_identical_answers() {
    let dir = scratch("cache");
    let cache_cfg = CacheConfig::new(&dir);
    let (tag, g) = fixture_graphs().remove(0);
    let pairs = query_pairs(&g);
    let cfg = golden_config();
    for c in registry::all().into_iter().take(3) {
        let cold = build_cached(c.as_ref(), &g, &cfg, &cache_cfg).expect("cold build");
        assert_eq!(cold.stats.cache, CacheStatus::Miss, "{}", c.name());
        let warm = build_cached(c.as_ref(), &g, &cfg, &cache_cfg).expect("warm build");
        assert_eq!(warm.stats.cache, CacheStatus::Hit, "{}", c.name());
        let cold_text = queries_text(tag, c.name(), &cold.into_query_engine(), &pairs);
        let warm_text = queries_text(tag, c.name(), &warm.into_query_engine(), &pairs);
        assert_eq!(
            cold_text,
            warm_text,
            "{}: warm hit changed an answer",
            c.name()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
