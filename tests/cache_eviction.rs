//! Eviction and concurrency suite for the byte-budgeted construction
//! cache ([`EvictingCache`]) — the shared cache behind `usnae serve`.
//!
//! Three contracts, each previously deferred by the plain append-only
//! directory cache:
//!
//! * **Deterministic LRU order.** Entries are evicted strictly
//!   least-recently-used; any load/store refreshes recency, so the set
//!   of surviving entries is a pure function of the access sequence.
//! * **Read-through after eviction.** An evicted entry is
//!   indistinguishable from a cold one: `build_cached` rebuilds it,
//!   republished with an identical stream fingerprint.
//! * **No torn snapshots.** Publication is atomic (unique temp file +
//!   rename), so concurrent same-key writers and readers never observe
//!   a half-written entry — every successful load fully verifies.

use std::sync::Arc;

use usnae::api::{Algorithm, BuildConfig, CacheStatus};
use usnae::core::cache::{CacheKey, EvictingCache, MappedSnapshot, Snapshot};
use usnae::graph::{generators, Graph};

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("usnae-evict-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fixture_graph() -> Graph {
    generators::gnp_connected(60, 0.1, 3).expect("fixture graph")
}

/// Distinct cache keys with byte-identical entry sizes: the same
/// deterministic construction under different seeds (the seed feeds the
/// config digest but not this construction's output).
fn seeded_snapshots(g: &Graph, seeds: &[u64]) -> Vec<(CacheKey, Snapshot, u64)> {
    let c = Algorithm::Centralized.construction();
    seeds
        .iter()
        .map(|&seed| {
            let cfg = BuildConfig {
                seed,
                ..BuildConfig::default()
            };
            let out = c.build(g, &cfg).expect("fixture build");
            let key = CacheKey::new(g, c.name(), &cfg);
            let snap = Snapshot::from_output(key.clone(), &out);
            let bytes = snap.encode().len() as u64;
            (key, snap, bytes)
        })
        .collect()
}

#[test]
fn lru_eviction_order_is_deterministic() {
    let dir = scratch("lru");
    let g = fixture_graph();
    let snaps = seeded_snapshots(&g, &[0, 1, 2, 3]);
    let size = snaps[0].2;
    for (_, _, bytes) in &snaps {
        assert_eq!(*bytes, size, "seeded entries must be size-identical");
    }

    // Budget fits two entries (with slack), never three.
    let cache = EvictingCache::open(&dir, Some(size * 5 / 2)).unwrap();
    let resident = |cache: &EvictingCache| -> Vec<bool> {
        snaps
            .iter()
            .map(|(key, _, _)| cache.entry_path(key).exists())
            .collect()
    };

    cache.store(&snaps[0].1).unwrap(); // recency: [0]
    cache.store(&snaps[1].1).unwrap(); // recency: [0, 1]
    assert_eq!(resident(&cache), vec![true, true, false, false]);

    // Third store exceeds the budget: the LRU entry (0) goes.
    cache.store(&snaps[2].1).unwrap(); // recency: [1, 2]
    assert_eq!(resident(&cache), vec![false, true, true, false]);

    // Touch 1 (a verified load), making 2 the LRU...
    assert!(cache.load(&snaps[1].0).unwrap().is_some()); // recency: [2, 1]
                                                         // ...so the fourth store evicts 2, not 1.
    cache.store(&snaps[3].1).unwrap(); // recency: [1, 3]
    assert_eq!(resident(&cache), vec![false, true, false, true]);

    let usage = cache.usage();
    assert_eq!(usage.entries, 2);
    assert_eq!(usage.bytes_resident, 2 * size);
    assert_eq!(usage.stores, 4);
    assert_eq!(usage.evictions, 2);
    assert_eq!(usage.hits, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reopening_a_directory_applies_the_budget_immediately() {
    let dir = scratch("reopen");
    let g = fixture_graph();
    let snaps = seeded_snapshots(&g, &[0, 1, 2]);
    let size = snaps[0].2;
    {
        let unbounded = EvictingCache::open(&dir, None).unwrap();
        for (_, snap, _) in &snaps {
            unbounded.store(snap).unwrap();
        }
        assert_eq!(unbounded.usage().evictions, 0, "no budget, no eviction");
    }
    // A new handle with a one-entry budget trims the directory on open.
    let bounded = EvictingCache::open(&dir, Some(size)).unwrap();
    let usage = bounded.usage();
    assert_eq!(usage.entries, 1);
    assert_eq!(usage.evictions, 2);
    assert!(usage.bytes_resident <= size);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn evicted_entries_rebuild_transparently() {
    let dir = scratch("readthrough");
    let g = fixture_graph();
    let c = Algorithm::Centralized.construction();
    let cfg_a = BuildConfig::default();
    let cfg_b = BuildConfig {
        seed: 1,
        ..BuildConfig::default()
    };
    let probe = seeded_snapshots(&g, &[0]);
    let size = probe[0].2;

    // Budget holds one entry: building B evicts A.
    let cache = EvictingCache::open(&dir, Some(size * 3 / 2)).unwrap();
    let cold = cache.build_cached(c.as_ref(), &g, &cfg_a).unwrap();
    assert_eq!(cold.stats.cache, CacheStatus::Miss);
    let warm = cache.build_cached(c.as_ref(), &g, &cfg_a).unwrap();
    assert_eq!(warm.stats.cache, CacheStatus::Hit);
    assert!(warm.stats.phases.is_empty(), "warm hit runs no phase work");

    cache.build_cached(c.as_ref(), &g, &cfg_b).unwrap();
    assert!(cache.usage().evictions >= 1, "budget forced an eviction");
    let key_a = CacheKey::new(&g, c.name(), &cfg_a);
    assert!(!cache.entry_path(&key_a).exists(), "A was evicted");

    // The evicted job is served again by rebuilding — same bytes.
    let rebuilt = cache.build_cached(c.as_ref(), &g, &cfg_a).unwrap();
    assert_eq!(rebuilt.stats.cache, CacheStatus::Miss);
    assert_eq!(rebuilt.stream_fingerprint(), cold.stream_fingerprint());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Concurrent same-key writers with racing readers: every observed load
/// must be a fully verified snapshot (the atomic-rename invariant — a
/// torn file would fail its checksum or fingerprint verification), and
/// mapped opens racing an eviction must degrade to clean misses, never
/// errors.
#[test]
fn concurrent_store_and_load_never_serve_a_torn_snapshot() {
    let dir = scratch("torn");
    let g = fixture_graph();
    let snaps = seeded_snapshots(&g, &[0, 1]);
    let size = snaps[0].2;
    // Tight budget: the two keys keep evicting each other, so readers
    // also race unlinks, not just renames.
    let cache = Arc::new(EvictingCache::open(&dir, Some(size * 3 / 2)).unwrap());
    let expected: Vec<u64> = snaps.iter().map(|(_, s, _)| s.stream_fingerprint).collect();
    let start = Arc::new(std::sync::Barrier::new(4));
    let observed = Arc::new(std::sync::atomic::AtomicU64::new(0));

    std::thread::scope(|scope| {
        for (_, writer_snap, _) in snaps.iter().take(2) {
            let cache = Arc::clone(&cache);
            let start = Arc::clone(&start);
            let snap = writer_snap.clone();
            scope.spawn(move || {
                start.wait();
                for _ in 0..40 {
                    cache.store(&snap).expect("store must never fail");
                }
            });
        }
        for r in 0..2usize {
            let cache = Arc::clone(&cache);
            let start = Arc::clone(&start);
            let observed = Arc::clone(&observed);
            let key = snaps[r].0.clone();
            let want = expected[r];
            scope.spawn(move || {
                start.wait();
                for _ in 0..80 {
                    // `load` fully decodes and verifies; a torn file
                    // would surface as Err, which is the failure mode
                    // this test exists to rule out.
                    match cache.load(&key) {
                        Ok(Some(snap)) => {
                            assert_eq!(snap.stream_fingerprint, want, "torn or foreign snapshot");
                            observed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        Ok(None) => {} // evicted at that instant: clean miss
                        Err(e) => panic!("reader saw a broken entry: {e}"),
                    }
                    match cache.open_mapped(&key) {
                        Ok(Some(mapped)) => {
                            assert_eq!(mapped.stream_fingerprint(), want);
                            observed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        Ok(None) => {}
                        Err(e) => panic!("mapped reader saw a broken entry: {e}"),
                    }
                }
            });
        }
    });
    // The racing phase proves no torn reads; observation counts depend
    // on scheduling, so the at-least-once guarantee is checked
    // deterministically after the race instead.
    for (key, snap, _) in &snaps {
        cache.store(snap).unwrap();
        let loaded = cache.load(key).unwrap().expect("just stored");
        assert_eq!(loaded.stream_fingerprint, snap.stream_fingerprint);
    }
    assert!(
        observed.load(std::sync::atomic::Ordering::Relaxed) > 0 || cache.usage().hits > 0,
        "the race never exercised a read path at all"
    );

    // Post-race: whatever survived on disk is structurally whole.
    for (key, _, _) in &snaps {
        let path = cache.entry_path(key);
        if path.exists() {
            MappedSnapshot::open(&path).expect("surviving entry verifies");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
