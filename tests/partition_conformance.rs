//! Registry-wide shard-conformance suite: a build over partitioned CSR
//! shards is **byte-identical** to the build over the shared adjacency
//! array — for every algorithm in the catalogue, every shard count in
//! {1, 2, 4, 7}, and both partition policies.
//!
//! This is the enforcement arm of `usnae_graph::partition`: the sharded
//! layout may only change *where* adjacency bytes are read from, never
//! the built structure. The contract covers the exact weighted edge
//! stream (insertion order and provenance included), the trace, the
//! certified `(α, β)`, and the stream fingerprint — the same
//! no-exceptions standard `tests/parallel_determinism.rs` holds thread
//! counts to.
//!
//! Two oracles are used:
//!
//! * a fresh unpartitioned build of the same `(graph, config)` (the
//!   run-to-run determinism suite guarantees it is *the* reference);
//! * the golden reference streams checked into `tests/data/` — fixed
//!   files, so a shard-merge regression is caught **without rebuilding
//!   the oracle** (and a simultaneous drift of both paths cannot mask
//!   itself).
//!
//! The CI `shard-matrix` leg sets `USNAE_TEST_SHARDS` to focus one job on
//! one shard count; without it the suite sweeps {1, 2, 4, 7}.

mod common;

use common::{fixture_graphs, golden_config, golden_fingerprint, golden_path};
use usnae::api::{BuildConfig, BuildOutput, PartitionPolicy};
use usnae::graph::{generators, Graph};
use usnae::registry;

/// Shard counts to sweep; `USNAE_TEST_SHARDS` (the CI matrix) narrows the
/// sweep to one count.
fn shard_counts() -> Vec<usize> {
    match std::env::var("USNAE_TEST_SHARDS") {
        Ok(v) => {
            let s: usize = v
                .parse()
                .expect("USNAE_TEST_SHARDS must be a positive integer");
            assert!(s >= 1, "USNAE_TEST_SHARDS must be >= 1");
            vec![s]
        }
        Err(_) => vec![1, 2, 4, 7],
    }
}

/// Seeded inputs per construction; CONGEST simulations get smaller
/// instances of the same family (mirrors `parallel_determinism.rs`).
fn input(seed: u64, congest: bool) -> Graph {
    let n = if congest { 70 } else { 130 };
    generators::gnp_connected(n, 8.0 / n as f64, seed).expect("valid gnp parameters")
}

fn config(seed: u64, shards: usize, partition: PartitionPolicy) -> BuildConfig {
    BuildConfig {
        seed,
        shards,
        partition,
        traced: true,
        ..BuildConfig::default()
    }
}

/// The constructions whose exploration phases actually read from shards
/// (and therefore record per-shard layout stats). The CONGEST simulations
/// and TZ06 accept the knobs but keep the shared array.
const SHARDED: [&str; 6] = [
    "centralized",
    "fast-centralized",
    "spanner",
    "ep01",
    "en17a",
    "em19",
];

/// Full parity: exact stream + provenance, counts, certification, trace,
/// CONGEST metrics.
fn assert_outputs_identical(ctx: &str, a: &BuildOutput, b: &BuildOutput) {
    assert_eq!(
        a.emulator.provenance(),
        b.emulator.provenance(),
        "{ctx}: weighted edge stream / provenance diverged"
    );
    assert_eq!(
        a.stream_fingerprint(),
        b.stream_fingerprint(),
        "{ctx}: stream fingerprint diverged"
    );
    assert_eq!(a.num_edges(), b.num_edges(), "{ctx}: edge count diverged");
    assert_eq!(a.certified, b.certified, "{ctx}: certified (α, β) diverged");
    assert_eq!(a.size_bound, b.size_bound, "{ctx}: size bound diverged");
    let summaries = |o: &BuildOutput| o.trace.as_ref().map(|t| t.phase_summaries());
    assert_eq!(summaries(a), summaries(b), "{ctx}: phase trace diverged");
    match (&a.congest, &b.congest) {
        (None, None) => {}
        (Some(ca), Some(cb)) => {
            assert_eq!(ca.metrics, cb.metrics, "{ctx}: CONGEST metrics diverged");
        }
        _ => panic!("{ctx}: congest stats presence diverged"),
    }
}

#[test]
fn every_registry_algorithm_is_shard_invariant() {
    let counts = shard_counts();
    for c in registry::all() {
        let congest = c.supports().congest;
        for seed in [1u64, 13] {
            let g = input(seed, congest);
            let baseline = c
                .build(&g, &config(seed, 0, PartitionPolicy::Range))
                .unwrap_or_else(|e| panic!("{} seed={seed} unpartitioned: {e}", c.name()));
            assert!(
                baseline.stats.shards.is_empty(),
                "{}: unpartitioned build must record no shards",
                c.name()
            );
            for policy in PartitionPolicy::all() {
                for &shards in &counts {
                    let sharded = c
                        .build(&g, &config(seed, shards, policy))
                        .unwrap_or_else(|e| {
                            panic!("{} seed={seed} {policy} x{shards}: {e}", c.name())
                        });
                    let ctx = format!("{} seed={seed} {policy} x{shards}", c.name());
                    assert_outputs_identical(&ctx, &baseline, &sharded);
                }
            }
        }
    }
}

#[test]
fn sharded_builds_match_the_golden_reference_streams() {
    // Fixed oracle: the checked-in golden fingerprints. No unpartitioned
    // rebuild happens here — a shard-merge regression that somehow also
    // moved the live baseline is still caught against the committed files.
    let cfg = golden_config();
    for (tag, g) in fixture_graphs() {
        for c in registry::all() {
            let path = golden_path(tag, c.name());
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "missing golden stream {} ({e}); see tests/golden_streams.rs",
                    path.display()
                )
            });
            let golden = golden_fingerprint(&text)
                .unwrap_or_else(|| panic!("{}: no fingerprint header", path.display()));
            for policy in PartitionPolicy::all() {
                for shards in [2usize, 7] {
                    let out = c
                        .build(
                            &g,
                            &BuildConfig {
                                shards,
                                partition: policy,
                                ..cfg.clone()
                            },
                        )
                        .unwrap_or_else(|e| panic!("{} on {tag}: {e}", c.name()));
                    assert_eq!(
                        out.stream_fingerprint(),
                        golden,
                        "{} on {tag} ({policy} x{shards}): sharded build diverged from \
                         the golden reference stream {}",
                        c.name(),
                        path.display()
                    );
                }
            }
        }
    }
}

#[test]
fn shards_compose_with_threads() {
    // The two axes are independent: a partitioned layout read by a
    // multi-threaded fan-out still reproduces the sequential shared-array
    // stream. Swept over the sharded family (the CONGEST/TZ06 rows are
    // covered by the invariance test above).
    let counts = shard_counts();
    for name in SHARDED {
        let c = registry::find(name).unwrap();
        let g = input(7, false);
        let baseline = c.build(&g, &config(7, 0, PartitionPolicy::Range)).unwrap();
        for &shards in &counts {
            for threads in [2usize, 4] {
                let cfg = BuildConfig {
                    threads,
                    ..config(7, shards, PartitionPolicy::DegreeBalanced)
                };
                let out = c.build(&g, &cfg).unwrap();
                assert_outputs_identical(
                    &format!("{name} threads={threads} shards={shards}"),
                    &baseline,
                    &out,
                );
                assert_eq!(out.stats.threads, threads);
            }
        }
    }
}

#[test]
fn partitioned_builds_record_per_shard_layout_stats() {
    let g = input(3, false);
    let g_congest = input(3, true);
    for c in registry::all() {
        let congest = c.supports().congest;
        let graph = if congest { &g_congest } else { &g };
        let n = graph.num_vertices();
        for &shards in &[1usize, 4, 7] {
            let out = c
                .build(graph, &config(3, shards, PartitionPolicy::DegreeBalanced))
                .unwrap();
            if SHARDED.contains(&c.name()) {
                let stats = &out.stats.shards;
                assert_eq!(stats.len(), shards.min(n), "{}", c.name());
                assert_eq!(
                    stats.iter().map(|s| s.vertices).sum::<usize>(),
                    n,
                    "{}: shards must own every vertex exactly once",
                    c.name()
                );
                let local: usize = stats.iter().map(|s| s.local_edges).sum();
                let cut: usize = stats.iter().map(|s| s.cut_edges).sum();
                assert_eq!(
                    local + cut / 2,
                    graph.num_edges(),
                    "{}: local + cut edges must account for every edge",
                    c.name()
                );
                for (i, s) in stats.iter().enumerate() {
                    assert_eq!(s.shard, i, "{}: shard order", c.name());
                    assert!(s.vertices > 0, "{}: empty shard", c.name());
                }
            } else {
                assert!(
                    out.stats.shards.is_empty(),
                    "{}: runs no sharded exploration phase, must record no shards",
                    c.name()
                );
            }
        }
    }
}

#[test]
fn cache_serves_one_entry_across_all_layouts() {
    // `shards`/`partition` are output-irrelevant and deliberately not part
    // of the cache key: an entry built unpartitioned must serve a
    // partitioned request (and vice versa) with the identical stream.
    use usnae::api::CacheStatus;
    use usnae::core::cache::{build_cached, CacheConfig};
    let dir = std::env::temp_dir().join(format!("usnae-shard-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache_cfg = CacheConfig::new(&dir);
    let g = input(19, false);
    let c = registry::find("fast-centralized").unwrap();
    let unpartitioned = BuildConfig {
        seed: 19,
        ..BuildConfig::default()
    };
    let cold = build_cached(c.as_ref(), &g, &unpartitioned, &cache_cfg).unwrap();
    assert_eq!(cold.stats.cache, CacheStatus::Miss);
    let partitioned = BuildConfig {
        shards: 4,
        partition: PartitionPolicy::DegreeBalanced,
        ..unpartitioned
    };
    let warm = build_cached(c.as_ref(), &g, &partitioned, &cache_cfg).unwrap();
    assert_eq!(
        warm.stats.cache,
        CacheStatus::Hit,
        "a partitioned request must hit the unpartitioned entry"
    );
    assert_eq!(warm.stream_fingerprint(), cold.stream_fingerprint());
    let _ = std::fs::remove_dir_all(&dir);
}
