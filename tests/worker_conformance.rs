//! Registry-wide worker-conformance suite: a build whose sharded
//! exploration phases run on a **worker pool** — one worker per CSR
//! shard, talking typed frontier messages over the channel (OS threads),
//! process (child `usnae-worker` over pipes), or socket (the same framed
//! protocol over TCP) transport — is **byte-identical** to the build
//! over the shared adjacency array. Every algorithm in the catalogue,
//! all three worker transports, shard counts {2, 4}.
//!
//! This is the enforcement arm of `usnae_workers`: a transport may only
//! change *where* the exploration work executes and *how* frontiers
//! travel, never the built structure. The contract covers the exact
//! weighted edge stream (insertion order and provenance included), the
//! trace, the certified `(α, β)`, and the stream fingerprint — the same
//! no-exceptions standard the thread- and shard-invariance suites hold.
//!
//! Two oracles, mirroring `partition_conformance.rs`:
//!
//! * a fresh unpartitioned in-process build of the same
//!   `(graph, config)`;
//! * the golden reference streams checked into `tests/data/` — fixed
//!   files, so a worker-protocol regression is caught **without
//!   rebuilding the oracle**.
//!
//! An interleaving-stress leg reruns the channel matrix with seeded
//! random per-worker delays (`USNAE_WORKER_DELAY_SEED`) to scramble the
//! thread schedule: the round barrier must make worker timing
//! output-invisible. A kill-injection stress leg
//! (`USNAE_WORKER_KILL_SEED`, set on a child `usnae` CLI process so it
//! cannot leak into concurrently running tests) kills workers abruptly
//! mid-round: the build must fail with a typed worker error within its
//! timeout, never hang.
//!
//! The CI `worker-matrix` leg sets `USNAE_TEST_TRANSPORT` to focus one
//! job on one transport; without it the suite sweeps all three. The
//! process and socket transports need the `usnae-worker` binary — a
//! workspace-level `cargo test`/`cargo build` produces it; a targeted
//! `cargo test --test worker_conformance` must be preceded by
//! `cargo build -p usnae-workers` (same profile).

mod common;

use common::{fixture_graphs, golden_config, golden_fingerprint, golden_path};
use usnae::api::{BuildConfig, BuildError, BuildOutput, PartitionPolicy, TransportKind};
use usnae::core::ParamError;
use usnae::graph::{generators, Graph};
use usnae::registry;

/// Worker transports to sweep; `USNAE_TEST_TRANSPORT` (the CI matrix)
/// narrows the sweep to one.
fn transports() -> Vec<TransportKind> {
    match std::env::var("USNAE_TEST_TRANSPORT") {
        Ok(v) => {
            let t = TransportKind::parse(&v).expect("USNAE_TEST_TRANSPORT must be a transport");
            assert_ne!(
                t,
                TransportKind::Inproc,
                "inproc is the baseline, not a worker transport"
            );
            vec![t]
        }
        Err(_) => vec![
            TransportKind::Channel,
            TransportKind::Process,
            TransportKind::Socket,
        ],
    }
}

/// Seeded inputs per construction; CONGEST simulations get smaller
/// instances of the same family (mirrors `partition_conformance.rs`).
fn input(seed: u64, congest: bool) -> Graph {
    let n = if congest { 70 } else { 130 };
    generators::gnp_connected(n, 8.0 / n as f64, seed).expect("valid gnp parameters")
}

fn config(seed: u64, shards: usize, transport: TransportKind) -> BuildConfig {
    BuildConfig {
        seed,
        shards,
        transport,
        partition: PartitionPolicy::DegreeBalanced,
        traced: true,
        ..BuildConfig::default()
    }
}

/// The constructions whose exploration phases actually run on the worker
/// pool (and therefore measure message statistics). The CONGEST
/// simulations and TZ06 accept the knobs but run no sharded exploration
/// phase — their builds must report `inproc` and no stats.
const SHARDED: [&str; 6] = [
    "centralized",
    "fast-centralized",
    "spanner",
    "ep01",
    "en17a",
    "em19",
];

/// Full parity: exact stream + provenance, counts, certification, trace,
/// CONGEST metrics.
fn assert_outputs_identical(ctx: &str, a: &BuildOutput, b: &BuildOutput) {
    assert_eq!(
        a.emulator.provenance(),
        b.emulator.provenance(),
        "{ctx}: weighted edge stream / provenance diverged"
    );
    assert_eq!(
        a.stream_fingerprint(),
        b.stream_fingerprint(),
        "{ctx}: stream fingerprint diverged"
    );
    assert_eq!(a.num_edges(), b.num_edges(), "{ctx}: edge count diverged");
    assert_eq!(a.certified, b.certified, "{ctx}: certified (α, β) diverged");
    assert_eq!(a.size_bound, b.size_bound, "{ctx}: size bound diverged");
    let summaries = |o: &BuildOutput| o.trace.as_ref().map(|t| t.phase_summaries());
    assert_eq!(summaries(a), summaries(b), "{ctx}: phase trace diverged");
    match (&a.congest, &b.congest) {
        (None, None) => {}
        (Some(ca), Some(cb)) => {
            assert_eq!(ca.metrics, cb.metrics, "{ctx}: CONGEST metrics diverged");
        }
        _ => panic!("{ctx}: congest stats presence diverged"),
    }
}

#[test]
fn every_registry_algorithm_is_transport_invariant() {
    for c in registry::all() {
        let congest = c.supports().congest;
        for seed in [1u64, 13] {
            let g = input(seed, congest);
            let baseline = c
                .build(&g, &config(seed, 0, TransportKind::Inproc))
                .unwrap_or_else(|e| panic!("{} seed={seed} inproc: {e}", c.name()));
            assert!(baseline.stats.messages.is_none());
            for transport in transports() {
                for shards in [2usize, 4] {
                    let ctx = format!("{} seed={seed} {transport} x{shards}", c.name());
                    let result = c.build(&g, &config(seed, shards, transport));
                    if SHARDED.contains(&c.name()) {
                        let out = result.unwrap_or_else(|e| panic!("{ctx}: {e}"));
                        assert_outputs_identical(&ctx, &baseline, &out);
                        assert_eq!(out.stats.transport, transport, "{ctx}");
                    } else {
                        // No sharded exploration phase to hand workers:
                        // the requested worker build cannot happen, and
                        // silently running in-process would misreport it
                        // — the build must refuse with a typed error.
                        match result {
                            Err(BuildError::Param(ParamError::TransportUnsupported {
                                algorithm,
                                ..
                            })) => assert_eq!(algorithm, c.name(), "{ctx}"),
                            other => panic!("{ctx}: expected TransportUnsupported, got {other:?}"),
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn worker_builds_match_the_golden_reference_streams() {
    // Fixed oracle: the checked-in golden fingerprints. No in-process
    // rebuild happens here — a worker-protocol regression that somehow
    // also moved the live baseline is still caught against the committed
    // files.
    let cfg = golden_config();
    for (tag, g) in fixture_graphs() {
        for c in registry::all() {
            let path = golden_path(tag, c.name());
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "missing golden stream {} ({e}); see tests/golden_streams.rs",
                    path.display()
                )
            });
            let golden = golden_fingerprint(&text)
                .unwrap_or_else(|| panic!("{}: no fingerprint header", path.display()));
            if !SHARDED.contains(&c.name()) {
                // In-process-only algorithms refuse worker transports
                // (covered by every_registry_algorithm_is_transport_invariant).
                continue;
            }
            for transport in transports() {
                let out = c
                    .build(
                        &g,
                        &BuildConfig {
                            shards: 2,
                            transport,
                            ..cfg.clone()
                        },
                    )
                    .unwrap_or_else(|e| panic!("{} on {tag} ({transport}): {e}", c.name()));
                assert_eq!(
                    out.stream_fingerprint(),
                    golden,
                    "{} on {tag} ({transport} x2): worker build diverged from the \
                     golden reference stream {}",
                    c.name(),
                    path.display()
                );
            }
        }
    }
}

#[test]
fn worker_builds_measure_nonzero_message_complexity() {
    let g = input(3, false);
    for name in SHARDED {
        let c = registry::find(name).unwrap();
        for transport in transports() {
            for shards in [2usize, 4] {
                let out = c.build(&g, &config(3, shards, transport)).unwrap();
                let ctx = format!("{name} {transport} x{shards}");
                let stats = out
                    .stats
                    .messages
                    .as_ref()
                    .unwrap_or_else(|| panic!("{ctx}: worker build must measure messages"));
                assert!(stats.rounds > 0, "{ctx}: no rounds measured");
                assert!(stats.messages > 0, "{ctx}: no messages measured");
                assert!(stats.bytes > 0, "{ctx}: no bytes measured");
                // The per-pair breakdown stays within the totals and names
                // real shards, in ascending order.
                let pair_msgs: u64 = stats.pairs.iter().map(|p| p.messages).sum();
                assert!(
                    pair_msgs <= stats.messages,
                    "{ctx}: pair breakdown exceeds total"
                );
                let mut keys: Vec<(usize, usize)> =
                    stats.pairs.iter().map(|p| (p.src, p.dst)).collect();
                for &(src, dst) in &keys {
                    assert!(
                        src < shards && dst < shards,
                        "{ctx}: pair names a ghost shard"
                    );
                }
                let sorted = {
                    let mut k = keys.clone();
                    k.sort_unstable();
                    k
                };
                assert_eq!(keys, sorted, "{ctx}: pairs must be sorted by (src, dst)");
                keys.dedup();
                assert_eq!(keys.len(), stats.pairs.len(), "{ctx}: duplicate pair rows");
                // The measurement is itself deterministic: same config,
                // same counts.
                let again = c.build(&g, &config(3, shards, transport)).unwrap();
                assert_eq!(
                    again.stats.messages.as_ref(),
                    Some(stats),
                    "{ctx}: message counts must be run-invariant"
                );
            }
        }
    }
}

#[test]
fn channel_workers_survive_scrambled_interleavings() {
    // Seeded random per-response delays scramble the worker thread
    // schedule; the round barrier must keep every interleaving
    // output-identical. The env var only injects *delays* — it can never
    // change any build's output — so leaking it to concurrently running
    // tests in this binary is harmless (they just slow down).
    let g = input(29, false);
    let baselines: Vec<(&str, BuildOutput)> = SHARDED
        .iter()
        .map(|&name| {
            let c = registry::find(name).unwrap();
            (
                name,
                c.build(&g, &config(29, 0, TransportKind::Inproc)).unwrap(),
            )
        })
        .collect();
    for delay_seed in [7u64, 4242] {
        std::env::set_var("USNAE_WORKER_DELAY_SEED", delay_seed.to_string());
        for (name, baseline) in &baselines {
            let c = registry::find(name).unwrap();
            let out = c
                .build(&g, &config(29, 4, TransportKind::Channel))
                .unwrap_or_else(|e| panic!("{name} delay_seed={delay_seed}: {e}"));
            assert_outputs_identical(
                &format!("{name} delay_seed={delay_seed} channel x4"),
                baseline,
                &out,
            );
        }
    }
    std::env::remove_var("USNAE_WORKER_DELAY_SEED");
}

#[test]
fn transport_composes_with_threads_and_cache() {
    // The execution axes are independent: a worker-pool build at any
    // driver thread count reproduces the sequential shared-array stream,
    // and `transport` — like `threads` and `shards` — is not part of the
    // cache key, so one cached entry serves every execution strategy.
    use usnae::api::CacheStatus;
    use usnae::core::cache::{build_cached, CacheConfig};
    let g = input(19, false);
    let c = registry::find("fast-centralized").unwrap();
    let baseline = c.build(&g, &config(19, 0, TransportKind::Inproc)).unwrap();
    for threads in [2usize, 4] {
        let cfg = BuildConfig {
            threads,
            ..config(19, 4, TransportKind::Channel)
        };
        let out = c.build(&g, &cfg).unwrap();
        assert_outputs_identical(&format!("threads={threads} channel x4"), &baseline, &out);
    }

    let dir = std::env::temp_dir().join(format!("usnae-worker-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache_cfg = CacheConfig::new(&dir);
    let cold_cfg = BuildConfig {
        traced: false,
        ..config(19, 2, TransportKind::Channel)
    };
    let cold = build_cached(c.as_ref(), &g, &cold_cfg, &cache_cfg).unwrap();
    assert_eq!(cold.stats.cache, CacheStatus::Miss);
    assert!(cold.stats.messages.is_some(), "cold worker build measures");
    let warm_cfg = BuildConfig {
        transport: TransportKind::Inproc,
        shards: 0,
        ..cold_cfg.clone()
    };
    let warm = build_cached(c.as_ref(), &g, &warm_cfg, &cache_cfg).unwrap();
    assert_eq!(
        warm.stats.cache,
        CacheStatus::Hit,
        "an inproc request must hit the worker-built entry"
    );
    assert_eq!(warm.stream_fingerprint(), cold.stream_fingerprint());
    // The hit replays the stored execution stats of the build that paid
    // the work — transport included.
    assert_eq!(warm.stats.transport, TransportKind::Channel);
    assert_eq!(warm.stats.messages, cold.stats.messages);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Per-shard CSR inits for a path graph 0-1-…-(n-1), owned ranges split
/// evenly — the direct [`WorkerPool`] harness the merge-order test drives
/// (no build, no registry: the retained-partition protocol in isolation).
fn path_inits(n: usize, num_shards: usize) -> Vec<usnae::workers::ShardInit> {
    (0..num_shards)
        .map(|shard| {
            let start = shard * n / num_shards;
            let end = (shard + 1) * n / num_shards;
            let mut offsets = vec![0usize];
            let mut adjacency = Vec::new();
            for v in start..end {
                if v > 0 {
                    adjacency.push(v - 1);
                }
                if v + 1 < n {
                    adjacency.push(v + 1);
                }
                offsets.push(adjacency.len());
            }
            usnae::workers::ShardInit {
                shard,
                num_shards,
                num_vertices: n,
                start,
                end,
                offsets,
                adjacency,
            }
        })
        .collect()
}

#[test]
fn worker_held_partitions_merge_identically_across_transports_and_chunks() {
    use usnae::workers::{OutputRecord, WorkerPool};
    let n = 16usize;
    // Owners interleave across the whole stream: consecutive indices land
    // on different shards, so any merge that trusts arrival order instead
    // of the stream index scrambles.
    let records: Vec<OutputRecord> = (0..97u64)
        .map(|i| OutputRecord {
            index: i,
            u: (i * 7) % n as u64,
            v: (i * 7 + 1) % n as u64,
            weight: i + 1,
            phase: i % 4,
            kind: (i % 3) as u8,
            charged_to: (i * 7) % n as u64,
        })
        .collect();
    let mut merged_streams: Vec<Vec<OutputRecord>> = Vec::new();
    for transport in transports() {
        for shards in [2usize, 4] {
            let ctx = format!("{transport} x{shards}");
            let mut pool = WorkerPool::new(transport, path_inits(n, shards))
                .unwrap_or_else(|e| panic!("{ctx}: {e}"));
            pool.retain_outputs(&records)
                .unwrap_or_else(|e| panic!("{ctx}: retain: {e}"));
            // The fetch is stateless on the worker side: every chunk size
            // (single-record, ragged, one-shot) and every repetition must
            // reproduce the identical merged stream.
            let mut last: Option<Vec<Vec<OutputRecord>>> = None;
            for chunk in [1usize, 3, 1000, 3] {
                let parts = pool
                    .fetch_retained(chunk)
                    .unwrap_or_else(|e| panic!("{ctx}: fetch chunk={chunk}: {e}"));
                assert_eq!(parts.len(), shards, "{ctx}");
                for part in &parts {
                    assert!(
                        part.windows(2).all(|w| w[0].index < w[1].index),
                        "{ctx}: partition not index-ascending"
                    );
                }
                if let Some(prev) = &last {
                    assert_eq!(prev, &parts, "{ctx}: re-fetch diverged (chunk={chunk})");
                }
                last = Some(parts);
            }
            let mut merged: Vec<OutputRecord> = last
                .expect("fetched at least once")
                .into_iter()
                .flatten()
                .collect();
            merged.sort_unstable_by_key(|r| r.index);
            assert_eq!(merged, records, "{ctx}: merge lost or reordered records");
            merged_streams.push(merged);
            pool.shutdown()
                .unwrap_or_else(|e| panic!("{ctx}: shutdown: {e}"));
        }
    }
    // Transport- and shard-invariance of the merged stream itself.
    for pair in merged_streams.windows(2) {
        assert_eq!(pair[0], pair[1]);
    }
}

/// Locates a sibling binary of this test executable (target/<profile>/).
fn sibling_bin(name: &str) -> std::path::PathBuf {
    let exe = std::env::current_exe().expect("test binary path");
    let mut dir = exe.parent().expect("deps dir").to_path_buf();
    if dir.ends_with("deps") {
        dir.pop();
    }
    let bin = dir.join(name);
    assert!(
        bin.exists(),
        "{} not found next to the test binary — run a workspace-level \
         `cargo test`/`cargo build` first",
        bin.display()
    );
    bin
}

#[test]
fn killed_workers_fail_typed_within_timeout() {
    // The kill switch lives in an env var, and env vars are process-global
    // — so the injection runs in a *child* `usnae` CLI process with the
    // var set only on that command, never in this (concurrently tested)
    // process. The child's build must die with a typed worker error and a
    // nonzero exit within the timeout: a hang here is the bug this leg
    // exists to catch.
    let cli = sibling_bin("usnae");
    let dir = std::env::temp_dir().join(format!("usnae-worker-kill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let edges_path = dir.join("g.edges");
    let g = input(5, false);
    let mut text = String::new();
    for (u, v) in g.edges() {
        text.push_str(&format!("{u} {v}\n"));
    }
    std::fs::write(&edges_path, text).unwrap();

    for transport in ["process", "socket"] {
        let mut child = std::process::Command::new(&cli)
            .args([
                "run",
                "--algo",
                "fast-centralized",
                "--input",
                edges_path.to_str().unwrap(),
                "--transport",
                transport,
                "--shards",
                "2",
            ])
            .env("USNAE_WORKER_KILL_SEED", "99")
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::piped())
            .spawn()
            .expect("spawn usnae CLI");
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        let status = loop {
            match child.try_wait().expect("try_wait") {
                Some(status) => break status,
                None if std::time::Instant::now() > deadline => {
                    let _ = child.kill();
                    panic!("{transport}: killed-worker build hung past the timeout");
                }
                None => std::thread::sleep(std::time::Duration::from_millis(50)),
            }
        };
        let out = child.wait_with_output().expect("collect child output");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            !status.success(),
            "{transport}: build with killed workers must fail (stderr: {stderr})"
        );
        assert!(
            stderr.contains("worker"),
            "{transport}: expected a typed worker error, got: {stderr}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
