//! Registry-wide conformance suite for the `usnae serve` daemon: a
//! daemon-built structure is **the same bytes** as a direct in-process
//! build, warm hits run no phase work, queries agree with a local
//! [`QueryEngine`], and the service's admission control and eviction are
//! observable through `stats`.
//!
//! Each test runs its own daemon on its own socket + cache directory,
//! talks to it through the public [`Client`], and shuts it down
//! explicitly — the full client path CI's serve-smoke job drives through
//! the CLI binary, exercised here in-process for every registry
//! algorithm.
#![cfg(unix)]

use std::path::PathBuf;

use usnae::api::BuildConfig;
use usnae::core::serve::{Client, JobCache, JobSpec, ServeConfig, ServeError, Server};
use usnae::registry;

mod common;
use common::fixture_graphs;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("usnae-serveconf-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Writes the ring48 fixture graph as an edge-list file the daemon can
/// resolve, and returns (path, graph).
fn fixture_on_disk(dir: &std::path::Path) -> (String, usnae::graph::Graph) {
    let (_, g) = fixture_graphs().remove(0);
    let path = dir.join("ring48.txt");
    let file = std::fs::File::create(&path).expect("create graph file");
    usnae::graph::io::write_edge_list(&g, std::io::BufWriter::new(file)).expect("write graph");
    (path.display().to_string(), g)
}

/// Starts a daemon on its own thread; returns the socket path and the
/// join handle (joined after a client `shutdown`).
fn spawn_daemon(mut cfg: ServeConfig) -> (PathBuf, std::thread::JoinHandle<()>) {
    cfg.workers = 2;
    let socket = cfg.socket.clone();
    let server = Server::bind(cfg, std::sync::Arc::new(|name: &str| registry::find(name)))
        .expect("bind daemon");
    let handle = std::thread::spawn(move || server.run().expect("daemon run"));
    (socket, handle)
}

#[test]
fn daemon_builds_are_byte_identical_to_direct_builds_for_every_algorithm() {
    let dir = scratch("registry");
    let (graph_path, g) = fixture_on_disk(&dir);
    let cfg = ServeConfig::new(dir.join("d.sock"), dir.join("cache"));
    let (socket, daemon) = spawn_daemon(cfg);
    let mut client = Client::connect(&socket).expect("connect");

    for construction in registry::all() {
        let name = construction.name();
        let job = JobSpec::new(&graph_path, name, &BuildConfig::default());

        // Cold: the daemon runs the construction and streams its phases.
        let mut phases = 0u32;
        let cold = client
            .build(&job, |_, _, _| phases += 1)
            .unwrap_or_else(|e| panic!("{name}: cold daemon build failed: {e}"));
        assert_eq!(cold.cache, JobCache::Cold, "{name}");
        assert_eq!(cold.algorithm, name);

        // Reference: the same job built directly in this process.
        let direct = construction
            .build(&g, &BuildConfig::default())
            .unwrap_or_else(|e| panic!("{name}: direct build failed: {e}"));
        assert_eq!(
            cold.stream_fingerprint,
            direct.stream_fingerprint(),
            "{name}: daemon build diverged from the direct build"
        );
        assert_eq!(cold.num_edges as usize, direct.num_edges(), "{name}");
        assert_eq!(
            cold.num_vertices as usize,
            direct.emulator.num_vertices(),
            "{name}"
        );

        // Warm: resubmitting is a hit — no phases streamed, same bytes.
        let mut warm_phases = 0u32;
        let warm = client
            .build(&job, |_, _, _| warm_phases += 1)
            .unwrap_or_else(|e| panic!("{name}: warm daemon build failed: {e}"));
        assert_eq!(warm.cache, JobCache::Warm, "{name}: expected a warm hit");
        assert_eq!(warm_phases, 0, "{name}: warm hit must run no phase work");
        assert_eq!(warm.stream_fingerprint, cold.stream_fingerprint, "{name}");
    }

    // The stats window saw every job, warm hits included.
    let stats = client.stats().expect("stats");
    let n_algos = registry::all().len() as u64;
    assert_eq!(stats.jobs_done, 2 * n_algos);
    assert!(stats.cache_hits >= n_algos, "one warm hit per algorithm");
    assert_eq!(stats.cache_stores, n_algos, "one publish per algorithm");
    assert_eq!(stats.cache_evictions, 0, "unbounded cache never evicts");
    assert!(stats
        .recent
        .iter()
        .any(|r| r.cache == JobCache::Warm && r.phases.is_empty()));

    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn daemon_queries_agree_with_a_local_engine_and_range_check() {
    let dir = scratch("query");
    let (graph_path, g) = fixture_on_disk(&dir);
    let cfg = ServeConfig::new(dir.join("d.sock"), dir.join("cache"));
    let (socket, daemon) = spawn_daemon(cfg);
    let mut client = Client::connect(&socket).expect("connect");

    let job = JobSpec::new(&graph_path, "centralized", &BuildConfig::default());
    let pairs: Vec<(u64, u64)> = vec![(0, 24), (3, 3), (7, 40), (1, 47)];

    // First query builds read-through (cold), second serves warm.
    let cold = client.query(&job, &pairs, 0).expect("cold query");
    assert_eq!(cold.cache, JobCache::Cold);
    let warm = client.query(&job, &pairs, 0).expect("warm query");
    assert_eq!(warm.cache, JobCache::Warm);
    assert_eq!(cold.distances, warm.distances);

    // Reference answers from a local engine over the same build.
    let construction = registry::find("centralized").unwrap();
    let engine = construction
        .build(&g, &BuildConfig::default())
        .unwrap()
        .into_query_engine();
    let native: Vec<(usize, usize)> = pairs
        .iter()
        .map(|&(u, v)| (u as usize, v as usize))
        .collect();
    let local: Vec<Option<u64>> = engine
        .distances(&native)
        .into_iter()
        .map(|c| c.value)
        .collect();
    assert_eq!(cold.distances, local, "daemon answers diverged");
    let (alpha, beta) = engine.guarantee();
    assert_eq!((cold.alpha, cold.beta), (alpha, beta), "certificate drift");

    // Landmark routing answers every pair too (weaker certificate).
    let lm = client.query(&job, &pairs, 3).expect("landmark query");
    assert_eq!(lm.distances.len(), pairs.len());
    assert!(lm.distances.iter().all(Option::is_some));

    // Out-of-range pairs are refused with the typed code, not a crash.
    let err = client.query(&job, &[(0, 480)], 0).unwrap_err();
    match err {
        ServeError::Rejected { code, .. } => {
            assert_eq!(code, usnae::core::serve::ErrorCode::QueryOutOfRange);
        }
        other => panic!("expected a typed range rejection, got {other}"),
    }

    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn full_queue_refuses_admission_with_a_typed_busy() {
    let dir = scratch("busy");
    let (graph_path, _) = fixture_on_disk(&dir);
    let mut cfg = ServeConfig::new(dir.join("d.sock"), dir.join("cache"));
    cfg.queue_cap = 0; // every cold build is refused
    let (socket, daemon) = spawn_daemon(cfg);
    let mut client = Client::connect(&socket).expect("connect");

    let job = JobSpec::new(&graph_path, "centralized", &BuildConfig::default());
    match client.build(&job, |_, _, _| {}) {
        Err(ServeError::Busy { queue_cap: 0 }) => {}
        other => panic!("expected Busy, got {other:?}"),
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.jobs_rejected, 1);
    assert_eq!(stats.jobs_done, 0);
    assert_eq!(stats.queue_cap, 0);

    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_eviction_is_observable_in_stats_and_jobs_still_serve() {
    let dir = scratch("evict");
    let (graph_path, _) = fixture_on_disk(&dir);
    let mut cfg = ServeConfig::new(dir.join("d.sock"), dir.join("cache"));
    // Budget below any snapshot: every new algorithm evicts the
    // previous one, but the MRU entry always survives to serve warm.
    cfg.budget = Some(1);
    let (socket, daemon) = spawn_daemon(cfg);
    let mut client = Client::connect(&socket).expect("connect");

    let algos = ["centralized", "spanner", "em19"];
    for name in algos {
        let job = JobSpec::new(&graph_path, name, &BuildConfig::default());
        let built = client.build(&job, |_, _, _| {}).expect(name);
        assert_eq!(built.cache, JobCache::Cold, "{name}");
        // Immediate resubmission is warm even under the tiny budget:
        // the most recent entry is never evicted.
        let warm = client.build(&job, |_, _, _| {}).expect(name);
        assert_eq!(warm.cache, JobCache::Warm, "{name}");
    }
    let stats = client.stats().expect("stats");
    assert!(
        stats.cache_evictions >= (algos.len() - 1) as u64,
        "expected evictions under the 1-byte budget, saw {}",
        stats.cache_evictions
    );
    assert_eq!(stats.budget, 1);
    assert!(stats.bytes_resident > 0);
    // An evicted job rebuilds transparently: cold again, then warm.
    let first = JobSpec::new(&graph_path, "centralized", &BuildConfig::default());
    let rebuilt = client.build(&first, |_, _, _| {}).expect("rebuild");
    assert_eq!(rebuilt.cache, JobCache::Cold, "evicted entry rebuilds");

    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The serve daemon shares one query engine per mapped snapshot: N
/// connections querying the same `(snapshot, landmarks)` pair must leave
/// exactly one engine open and count every batch after the first as a
/// reuse — the per-connection-duplication bug this counter exists to
/// catch. Answers must be identical no matter which connection asked.
#[test]
fn query_engines_are_shared_across_connections() {
    let dir = scratch("engshare");
    let (graph_path, _) = fixture_on_disk(&dir);
    let cfg = ServeConfig::new(dir.join("d.sock"), dir.join("cache"));
    let (socket, daemon) = spawn_daemon(cfg);
    let job = JobSpec::new(&graph_path, "centralized", &BuildConfig::default());
    let pairs: Vec<(u64, u64)> = vec![(0, 24), (5, 31)];

    // Sequential connections first: each opens fresh, queries, drops.
    let mut answers = Vec::new();
    for _ in 0..3 {
        let mut client = Client::connect(&socket).expect("connect");
        answers.push(client.query(&job, &pairs, 0).expect("query").distances);
    }
    assert!(answers.windows(2).all(|w| w[0] == w[1]), "{answers:?}");

    // Concurrent connections share the same engine too.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let socket = socket.clone();
            let job = job.clone();
            let pairs = pairs.clone();
            scope.spawn(move || {
                let mut client = Client::connect(&socket).expect("connect");
                client.query(&job, &pairs, 0).expect("query");
            });
        }
    });

    // A different landmark count is a different engine key.
    let mut client = Client::connect(&socket).expect("connect");
    client.query(&job, &pairs, 2).expect("landmark query");

    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.engines_open, 2,
        "one exact engine + one landmark engine, not one per connection"
    );
    assert_eq!(
        stats.engine_reuses, 6,
        "every exact batch after the first must reuse the shared engine"
    );

    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Several clients issuing overlapping builds of the *same* job: exactly
/// one construction should publish, the rest serve warm or rebuild
/// race-free, and every reported fingerprint is identical.
#[test]
fn concurrent_clients_converge_on_one_snapshot() {
    let dir = scratch("mclient");
    let (graph_path, _) = fixture_on_disk(&dir);
    let cfg = ServeConfig::new(dir.join("d.sock"), dir.join("cache"));
    let (socket, daemon) = spawn_daemon(cfg);

    let fingerprints: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let socket = socket.clone();
                let graph_path = graph_path.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(&socket).expect("connect");
                    let job = JobSpec::new(&graph_path, "spanner", &BuildConfig::default());
                    client
                        .build(&job, |_, _, _| {})
                        .expect("build")
                        .stream_fingerprint
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    assert!(
        fingerprints.windows(2).all(|w| w[0] == w[1]),
        "{fingerprints:?}"
    );

    let mut client = Client::connect(&socket).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.jobs_done, 4);
    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&dir);
}
