//! Ultra-Sparse Near-Additive Emulators — facade crate.
//!
//! This crate re-exports the whole reproduction of Elkin & Matar,
//! *Ultra-Sparse Near-Additive Emulators* (PODC 2021):
//!
//! * [`graph`] — CSR graphs, generators, BFS/Dijkstra, exact distances.
//! * [`congest`] — deterministic synchronous CONGEST-model simulator.
//! * [`core`] — the paper's constructions: centralized Algorithm 1,
//!   the distributed CONGEST algorithm, the fast centralized simulation,
//!   and the §4 spanner variant — all behind the unified [`api`].
//! * [`baselines`] — EP01, TZ06, EN17a emulators and the EM19 spanner,
//!   adapted onto the same [`api::Construction`] trait.
//! * [`workers`] — per-shard worker execution: typed frontier messages
//!   over a channel (threads) or process (child `usnae-worker`)
//!   transport, with measured message statistics.
//! * [`eval`] — experiment harness regenerating every table/figure.
//! * [`registry`] — the complete algorithm catalogue (paper + baselines).
//! * [`book`] — the architecture book: the layer map
//!   ([`book::architecture`]), the serve wire protocol
//!   ([`book::protocol`]), and the daemon operator guide
//!   ([`book::serving`]), with every code example compiled as a doctest.
//!
//! # Quickstart
//!
//! ```
//! use usnae::api::{Algorithm, Emulator};
//! use usnae::graph::generators;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = generators::gnp_connected(256, 0.05, 7)?;
//! let out = Emulator::builder(&g)
//!     .epsilon(0.5)
//!     .kappa(4)
//!     .algorithm(Algorithm::Centralized)
//!     .build()?;
//! assert!(out.num_edges() as f64 <= out.size_bound.unwrap());
//! # Ok(())
//! # }
//! ```
//!
//! Algorithm-generic code iterates the [`registry`] instead of hardcoding
//! construction lists:
//!
//! ```
//! use usnae::api::BuildConfig;
//! use usnae::graph::generators;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = generators::grid2d(8, 8)?;
//! for c in usnae::registry::all() {
//!     let out = c.build(&g, &BuildConfig::default())?;
//!     println!("{:>20}: {} edges", c.name(), out.num_edges());
//! }
//! # Ok(())
//! # }
//! ```
//!
//! # Caching
//!
//! Builds are pure functions of `(graph, config)`, so they can be paid
//! once: point a builder (or `usnae run --cache DIR`) at a construction
//! cache and the warm run loads a verified snapshot instead of rebuilding
//! — `stats.cache` reports the hit and the stream fingerprint proves the
//! loaded output identical to a rebuild (see `usnae::core::cache`). The
//! builder's directory cache is unbounded; long-running services use the
//! byte-budgeted [`core::cache::EvictingCache`] view of the same
//! directory format instead — deterministic LRU eviction, atomic
//! publication, lock-free concurrent readers (see
//! [`book::serving`]):
//!
//! ```
//! use usnae::api::{Algorithm, CacheStatus, Emulator};
//! use usnae::graph::generators;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let dir = std::env::temp_dir().join(format!("usnae-doc-cache-{}", std::process::id()));
//! let g = generators::gnp_connected(128, 0.06, 7)?;
//! let build = |()| {
//!     Emulator::builder(&g)
//!         .kappa(4)
//!         .algorithm(Algorithm::Centralized)
//!         .cache_dir(&dir)
//!         .build()
//! };
//! let cold = build(())?; // runs the construction, stores a snapshot
//! let warm = build(())?; // loads + verifies the snapshot; no phase work
//! assert_eq!(warm.stats.cache, CacheStatus::Hit);
//! assert_eq!(warm.stream_fingerprint(), cold.stream_fingerprint());
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```
//!
//! # Query serving
//!
//! A build is half the product; the other half is answering distance
//! queries from it. [`api::QueryEngine`] serves certified answers —
//! `d_G ≤ d̂ ≤ α·d_G + β` with `(α, β)` threaded from the construction's
//! proof object — from a live [`api::BuildOutput`] or straight from a
//! stored snapshot ([`QueryEngine::open`](api::QueryEngine::open) over any
//! [`api::OutputBackend`], no rebuild). Batched queries share one SSSP
//! tree per distinct source, single queries go through a bounded
//! deterministic LRU, and [`with_landmarks`](api::QueryEngine::with_landmarks)
//! precomputes a landmark index for O(k) approximate answers under the
//! widened certificate `(α, β + 2R)`. Answers are pure functions of the
//! pair — identical across backends, batching, and thread counts
//! (enforced registry-wide by `tests/query_conformance.rs` against golden
//! fixtures; `usnae query` is the CLI form, `cargo bench --bench queries`
//! the QPS/latency table):
//!
//! ```
//! use usnae::api::Emulator;
//! use usnae::graph::generators;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = generators::grid2d(8, 8)?;
//! let engine = Emulator::builder(&g).kappa(4).query_engine()?;
//! let (alpha, beta) = engine.guarantee();
//! for a in engine.distances(&[(0, 63), (0, 7), (0, 56)]) {
//!     let d = a.value.expect("grid is connected") as f64;
//!     assert!(d <= alpha * 14.0 + beta); // diameter 14
//! }
//! assert_eq!(engine.stats().tree_builds, 1); // one source, one Dijkstra
//! # Ok(())
//! # }
//! ```
//!
//! # Always-on serving
//!
//! `usnae serve` keeps one process warm behind a framed Unix-socket
//! protocol: builds and query batches ship to the daemon
//! (`usnae run|query ... --connect SOCKET`), warm jobs are answered
//! zero-copy from a shared byte-budgeted cache without ever queueing,
//! and cold builds run on a bounded worker pool behind typed admission
//! control. A daemon-built snapshot is byte-identical to a local build
//! (enforced registry-wide by `tests/serve_conformance.rs`); operator
//! guidance lives in [`book::serving`], the wire grammar in
//! [`book::protocol`]:
//!
//! ```no_run
//! # #[cfg(unix)]
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use usnae::api::BuildConfig;
//! use usnae::core::serve::{Client, JobSpec};
//!
//! let mut client = Client::connect("/run/usnae.sock")?;
//! let job = JobSpec::new("/data/graph.txt", "centralized", &BuildConfig::default());
//! let meta = client.build(&job, |_, _, _| {})?;
//! println!("{} ({}): {:016x}", meta.algorithm, meta.cache, meta.stream_fingerprint);
//! let answers = client.query(&job, &[(0, 9)], 0)?;
//! assert_eq!(answers.distances.len(), 1); // certified: d ≤ α·d_G + β
//! # Ok(())
//! # }
//! # #[cfg(not(unix))]
//! # fn main() {}
//! ```
//!
//! # Partitioned builds
//!
//! For the million-vertex regime the input graph can be split into
//! per-worker **CSR shards** (contiguous vertex ranges with local
//! adjacency arrays and cut-edge frontier lists — `usnae::graph::partition`);
//! the sharding-capable constructions then read their per-center
//! explorations from the local shards instead of one shared array. The
//! built structure is byte-identical for every shard count and both
//! partition policies (enforced registry-wide by
//! `tests/partition_conformance.rs`):
//!
//! ```
//! use usnae::api::{Emulator, PartitionPolicy};
//! use usnae::graph::generators;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = generators::gnp_connected(256, 0.05, 7)?;
//! let shared = Emulator::builder(&g).kappa(4).build()?;
//! let sharded = Emulator::builder(&g)
//!     .kappa(4)
//!     .threads(2)
//!     .partition(PartitionPolicy::DegreeBalanced, 4)
//!     .build()?;
//! assert_eq!(
//!     sharded.emulator.provenance(),
//!     shared.emulator.provenance(),
//! );
//! assert_eq!(sharded.stats.shards.len(), 4); // per-shard layout records
//! # Ok(())
//! # }
//! ```
//!
//! # Distributed execution
//!
//! A partitioned build can hand each shard to its own **worker** — an OS
//! thread (`channel` transport) or a child `usnae-worker` process
//! (`process` transport) — that owns the shard's adjacency and answers
//! typed frontier messages behind a deterministic round barrier. The
//! built structure stays byte-identical to the in-process build
//! (enforced registry-wide by `tests/worker_conformance.rs`), and the
//! measured message complexity lands in `stats.messages`:
//!
//! ```
//! use usnae::api::{Emulator, PartitionPolicy, TransportKind};
//! use usnae::graph::generators;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = generators::gnp_connected(256, 0.05, 7)?;
//! let shared = Emulator::builder(&g).kappa(4).build()?;
//! let workers = Emulator::builder(&g)
//!     .kappa(4)
//!     .partition(PartitionPolicy::Range, 4)
//!     .transport(TransportKind::Channel) // one worker thread per shard
//!     .build()?;
//! assert_eq!(
//!     workers.emulator.provenance(),
//!     shared.emulator.provenance(),
//! );
//! let stats = workers.stats.messages.expect("worker builds are measured");
//! assert!(stats.rounds > 0 && stats.messages > 0 && stats.bytes > 0);
//! # Ok(())
//! # }
//! ```
//!
//! # Out-of-core storage
//!
//! Past the heap's reach, the whole pipeline runs file-backed: the
//! streaming loader (`usnae::graph::io::stream_edge_list_to_csr_file`)
//! two-passes a text edge list into an on-disk CSR without materializing
//! the graph, [`MappedGraph`](graph::MappedGraph) opens that file
//! zero-copy, `build_mapped` produces the byte-identical output of a
//! heap build, and a stored snapshot serves queries through
//! [`api::MappedBackend`] + [`QueryEngine::open`](api::QueryEngine::open)
//! with no record decode and no heap emulator — resident memory is
//! bounded by the ultra-sparse snapshot, not the graph
//! (`tests/out_of_core_conformance.rs` locks the identities
//! registry-wide; CI's `out-of-core` job enforces the RSS ceilings at
//! 800k vertices, and `exp_out_of_core` reproduces the 2M-vertex
//! demonstration):
//!
//! ```
//! use usnae::api::{BuildConfig, MappedBackend, QueryEngine};
//! use usnae::core::cache::{CacheKey, Snapshot};
//! use usnae::graph::{generators, MappedGraph};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let dir = std::env::temp_dir().join(format!("usnae-doc-ooc-{}", std::process::id()));
//! # std::fs::create_dir_all(&dir)?;
//! let g = generators::grid2d(8, 8)?;
//! g.write_csr_file(&dir.join("g.csr"))?;
//! let mg = MappedGraph::open(&dir.join("g.csr"))?;          // zero-copy input
//! let cfg = BuildConfig::default();
//! let c = usnae::registry::find("centralized").expect("registered");
//! let out = c.build_mapped(&mg, &cfg)?;                     // identical to heap build
//! let snap = Snapshot::from_output(CacheKey::new(&mg, c.name(), &cfg), &out);
//! std::fs::write(dir.join("g.usnae"), snap.encode())?;
//! let backend = MappedBackend::open(&dir.join("g.usnae"))?; // zero-copy serving
//! let engine = QueryEngine::open(&backend)?;
//! assert!(engine.emulator().is_none()); // no heap emulator materialized
//! assert_eq!(
//!     engine.distance(0, 63).value,
//!     out.into_query_engine().distance(0, 63).value,
//! );
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

pub use usnae_baselines as baselines;
pub use usnae_congest as congest;
pub use usnae_core as core;
pub use usnae_core::api;
pub use usnae_eval as eval;
pub use usnae_graph as graph;
pub use usnae_workers as workers;

/// The complete algorithm catalogue: five paper constructions followed by
/// the four baseline lineages (re-export of `usnae_baselines::registry`).
pub mod registry {
    pub use usnae_baselines::registry::{all, baselines, emulators, find, names, spanners};
}

/// The architecture book, compiled into the docs: each chapter is a
/// `docs/*.md` file included verbatim, so its code examples are
/// doctests — the book cannot drift from the API it describes.
pub mod book {
    #[doc = include_str!("../docs/ARCHITECTURE.md")]
    pub mod architecture {}

    #[doc = include_str!("../docs/PROTOCOL.md")]
    pub mod protocol {}

    #[doc = include_str!("../docs/SERVING.md")]
    pub mod serving {}
}
