//! Ultra-Sparse Near-Additive Emulators — facade crate.
//!
//! This crate re-exports the whole reproduction of Elkin & Matar,
//! *Ultra-Sparse Near-Additive Emulators* (PODC 2021):
//!
//! * [`graph`] — CSR graphs, generators, BFS/Dijkstra, exact distances.
//! * [`congest`] — deterministic synchronous CONGEST-model simulator.
//! * [`core`] — the paper's constructions: centralized Algorithm 1,
//!   the distributed CONGEST algorithm, the fast centralized simulation,
//!   and the §4 spanner variant.
//! * [`baselines`] — EP01, TZ06, EN17a emulators and the EM19 spanner.
//! * [`eval`] — experiment harness regenerating every table/figure.
//!
//! # Quickstart
//!
//! ```
//! use usnae::core::{centralized::build_emulator, params::CentralizedParams};
//! use usnae::graph::generators;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = generators::gnp_connected(256, 0.05, 7)?;
//! let params = CentralizedParams::new(0.5, 4)?;
//! let emulator = build_emulator(&g, &params);
//! assert!(emulator.graph().num_edges() as f64 <= params.size_bound(g.num_vertices()));
//! # Ok(())
//! # }
//! ```

pub use usnae_baselines as baselines;
pub use usnae_congest as congest;
pub use usnae_core as core;
pub use usnae_eval as eval;
pub use usnae_graph as graph;
