//! Quickstart: build an ultra-sparse near-additive emulator through the
//! unified builder API and use it for approximate distance queries.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use usnae::api::{Algorithm, Emulator};
use usnae::graph::distance::{exact_pair_distances, sample_pairs};
use usnae::graph::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-size sparse random graph (the paper's input: unweighted,
    // undirected).
    let n = 2000;
    let g = generators::gnp_connected(n, 6.0 / n as f64, 7)?;
    println!(
        "input graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    // (1+ε, β)-emulator with at most n^(1+1/κ) edges (Corollary 2.14):
    // one fluent chain does parameter validation, construction, and
    // stretch certification. `.threads(n)` shards the per-center
    // explorations (the dominant cost) over n workers — the output is
    // byte-identical to the sequential build, only faster. More broadly,
    // every registry construction is a pure function of (graph, config):
    // the edge stream is identical for every thread count and every run,
    // so built emulators can be cached and diffed byte-for-byte.
    let out = Emulator::builder(&g)
        .epsilon(0.5)
        .kappa(4)
        .threads(4)
        .algorithm(Algorithm::Centralized)
        .build()?;
    let (alpha, beta) = out.certified.expect("paper constructions certify");
    println!(
        "emulator: {} edges (bound {:.0}); certified stretch d_H <= {:.3}*d_G + {:.0}",
        out.num_edges(),
        out.size_bound.expect("bounded"),
        alpha,
        beta,
    );
    println!(
        "built in {:.3?} on {} thread(s); phase 0 took {:.3?}",
        out.stats.total,
        out.stats.threads,
        out.stats.phase0().expect("sharded builds record phases"),
    );

    // Query approximate distances on the (much sparser) emulator and
    // compare with exact BFS distances on G.
    let emulator = &out.emulator;
    let pairs = sample_pairs(&g, 5, 99);
    let exact = exact_pair_distances(&g, &pairs);
    println!("\n{:>8} {:>8} {:>8} {:>8}", "u", "v", "d_G", "d_H");
    for (i, &(u, v)) in pairs.iter().enumerate() {
        let dg = exact[i].expect("connected instance");
        let dh = emulator.distance(u, v).expect("emulator spans the graph");
        println!("{u:>8} {v:>8} {dg:>8} {dh:>8}");
        assert!(dh >= dg);
        assert!(dh as f64 <= alpha * dg as f64 + beta);
    }
    println!("\nall sampled pairs within the certified stretch.");
    Ok(())
}
