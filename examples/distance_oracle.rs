//! Approximate distance oracle workload: answer many point-to-point
//! queries on a social-network-like graph from an ultra-sparse emulator,
//! comparing work against exact BFS on the full graph.
//!
//! ```text
//! cargo run --release --example distance_oracle
//! ```

use std::time::Instant;
use usnae::core::oracle::ApproxDistanceOracle;
use usnae::graph::distance::{exact_pair_distances, sample_pairs};
use usnae::graph::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A heavy-tailed "social" graph.
    let n = 4000;
    let g = generators::barabasi_albert(n, 4, 13)?;
    println!("graph: n={n}, |E|={}", g.num_edges());

    let oracle = ApproxDistanceOracle::build(&g, 0.9, 8)?.with_cache_capacity(256);
    let (alpha, beta) = oracle.guarantee();
    println!(
        "oracle structure: {} edges ({}% of G); guarantee d <= {alpha:.3}*d_G + {beta:.0}",
        oracle.num_edges(),
        100 * oracle.num_edges() / g.num_edges()
    );

    // Query workload: 500 pairs among 40 sources.
    let pairs: Vec<(usize, usize)> = sample_pairs(&g, 2000, 3)
        .into_iter()
        .map(|(u, v)| (u % 40, v))
        .filter(|&(u, v)| u != v)
        .take(500)
        .collect();

    let t0 = Instant::now();
    let approx: Vec<_> = pairs.iter().map(|&(u, v)| oracle.query(u, v)).collect();
    let t_oracle = t0.elapsed();

    let t0 = Instant::now();
    let exact = exact_pair_distances(&g, &pairs);
    let t_exact = t0.elapsed();

    let mut worst_ratio: f64 = 1.0;
    let mut mean_ratio = 0.0;
    let mut counted = 0usize;
    for (a, e) in approx.iter().zip(&exact) {
        let (Some(a), Some(e)) = (a, e) else { continue };
        assert!(a >= e, "oracle must never shorten");
        assert!(*a as f64 <= alpha * *e as f64 + beta, "guarantee violated");
        if *e > 0 {
            let r = *a as f64 / *e as f64;
            worst_ratio = worst_ratio.max(r);
            mean_ratio += r;
            counted += 1;
        }
    }
    println!(
        "{} queries: oracle {:?} (cached SSSP trees: {}), exact BFS batch {:?}",
        pairs.len(),
        t_oracle,
        oracle.cached_sources(),
        t_exact
    );
    println!(
        "observed stretch: mean {:.3}, worst {:.3} (certified multiplicative cap {alpha:.3} + additive {beta:.0})",
        mean_ratio / counted as f64,
        worst_ratio
    );
    Ok(())
}
