//! The §4 near-additive spanner vs the EM19 baseline it improves
//! (Corollary 4.4: `O(n^(1+1/κ))` edges instead of `O(β·n^(1+1/κ))`),
//! both dispatched through the algorithm registry.
//!
//! Both outputs are *subgraphs* of `G` — usable wherever a sparse skeleton
//! of the original network is needed (routing tables, sensor-net backbones).
//!
//! ```text
//! cargo run --release --example spanner_vs_baseline
//! ```

use usnae::api::BuildConfig;
use usnae::core::verify::{audit_stretch, is_subgraph_spanner};
use usnae::graph::distance::sample_pairs;
use usnae::graph::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1024;
    // A dense communication network to sparsify.
    let g = generators::gnp_connected(n, 24.0 / n as f64, 3)?;
    println!("input: n={n}, |E|={}", g.num_edges());
    println!(
        "\n{:>6} {:>10} {:>10} {:>8}",
        "kappa", "ours", "em19", "factor"
    );

    let ours_c = usnae::registry::find("spanner").expect("registered");
    let em19_c = usnae::registry::find("em19").expect("registered");
    for kappa in [4u32, 8, 16] {
        let cfg = BuildConfig {
            kappa,
            ..BuildConfig::default()
        };
        let ours = ours_c.build(&g, &cfg)?;
        let em19 = em19_c.build(&g, &cfg)?;
        assert!(is_subgraph_spanner(&g, ours.emulator.graph()));
        assert!(is_subgraph_spanner(&g, em19.emulator.graph()));
        println!(
            "{kappa:>6} {:>10} {:>10} {:>8.2}",
            ours.num_edges(),
            em19.num_edges(),
            em19.num_edges() as f64 / ours.num_edges() as f64
        );

        // Spot-check the certified stretch of our spanner (the baseline
        // certifies nothing — that asymmetry is part of the comparison).
        let (alpha, beta) = ours.certified.expect("§4 spanner certifies");
        assert!(em19.certified.is_none());
        let pairs = sample_pairs(&g, 200, 9);
        let report = audit_stretch(&g, ours.emulator.graph(), alpha, beta, &pairs);
        assert!(report.passed(), "stretch audit failed: {report:?}");
    }
    println!("\nboth are subgraphs of G; ours needs no O(beta) size factor.");
    Ok(())
}
