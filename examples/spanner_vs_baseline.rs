//! The §4 near-additive spanner vs the EM19 baseline it improves
//! (Corollary 4.4: `O(n^(1+1/κ))` edges instead of `O(β·n^(1+1/κ))`).
//!
//! Both outputs are *subgraphs* of `G` — usable wherever a sparse skeleton
//! of the original network is needed (routing tables, sensor-net backbones).
//!
//! ```text
//! cargo run --release --example spanner_vs_baseline
//! ```

use usnae::baselines::em19::build_em19_spanner;
use usnae::core::params::{DistributedParams, SpannerParams};
use usnae::core::spanner::build_spanner;
use usnae::core::verify::{audit_stretch, is_subgraph_spanner};
use usnae::graph::distance::sample_pairs;
use usnae::graph::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1024;
    // A dense communication network to sparsify.
    let g = generators::gnp_connected(n, 24.0 / n as f64, 3)?;
    println!("input: n={n}, |E|={}", g.num_edges());
    println!(
        "\n{:>6} {:>10} {:>10} {:>8}",
        "kappa", "ours", "em19", "factor"
    );

    for kappa in [4u32, 8, 16] {
        let ps = SpannerParams::new(0.5, kappa, 0.5)?;
        let pd = DistributedParams::new(0.5, kappa, 0.5)?;
        let ours = build_spanner(&g, &ps);
        let em19 = build_em19_spanner(&g, &pd);
        assert!(is_subgraph_spanner(&g, ours.graph()));
        assert!(is_subgraph_spanner(&g, em19.graph()));
        println!(
            "{kappa:>6} {:>10} {:>10} {:>8.2}",
            ours.num_edges(),
            em19.num_edges(),
            em19.num_edges() as f64 / ours.num_edges() as f64
        );

        // Spot-check the certified stretch of our spanner.
        let (alpha, beta) = ps.certified_stretch();
        let pairs = sample_pairs(&g, 200, 9);
        let report = audit_stretch(&g, ours.graph(), alpha, beta, &pairs);
        assert!(report.passed(), "stretch audit failed: {report:?}");
    }
    println!("\nboth are subgraphs of G; ours needs no O(beta) size factor.");
    Ok(())
}
