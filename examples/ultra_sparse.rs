//! Ultra-sparse regime (Corollary 2.15): with κ = ω(log n) the emulator has
//! `n + o(n)` edges — strictly fewer extra edges than any constant-κ
//! setting, on *any* input graph.
//!
//! ```text
//! cargo run --release --example ultra_sparse
//! ```

use usnae::api::Emulator;
use usnae::graph::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>6} {:>8} {:>10} {:>10} {:>12} {:>12}",
        "n", "kappa", "|E(G)|", "|H|", "|H|/n", "bound/n"
    );
    for exp in [8u32, 9, 10, 11] {
        let n = 1usize << exp;
        // A dense-ish input so sparsification is non-trivial.
        let g = generators::gnp_connected(n, 16.0 / n as f64, 5)?;
        // κ = log²n = ω(log n): size n^(1+1/κ) = n·2^(1/log n) = n + o(n).
        let kappa = (exp * exp).max(2);
        let out = Emulator::builder(&g).epsilon(0.5).kappa(kappa).build()?;
        let bound = out.size_bound.expect("bounded");
        println!(
            "{:>6} {:>8} {:>10} {:>10} {:>12.4} {:>12.4}",
            n,
            kappa,
            g.num_edges(),
            out.num_edges(),
            out.num_edges() as f64 / n as f64,
            bound / n as f64,
        );
        assert!(out.num_edges() as f64 <= bound);
    }
    println!("\n|H|/n tends to 1: the emulator is ultra-sparse (n + o(n) edges).");
    Ok(())
}
