//! The distributed CONGEST construction (§3): honest round/message counts
//! from the simulator, plus the paper's headline distributed property —
//! both endpoints of every emulator edge know the edge.
//!
//! ```text
//! cargo run --release --example distributed_emulator
//! ```

use usnae::core::distributed::build_emulator_distributed;
use usnae::core::params::DistributedParams;
use usnae::graph::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 256;
    let g = generators::gnp_connected(n, 8.0 / n as f64, 11)?;
    let params = DistributedParams::new(0.5, 4, 0.5)?;
    println!(
        "graph: n={n}, |E|={}; parameters kappa={}, rho={}, ell={}",
        g.num_edges(),
        params.kappa(),
        params.rho(),
        params.ell()
    );

    let build = build_emulator_distributed(&g, &params)?;

    println!("\nper-phase execution:");
    println!(
        "{:>5} {:>9} {:>8} {:>8} {:>7} {:>7} {:>6} {:>9}",
        "phase", "clusters", "popular", "rulers", "scs", "hubs", "U_i", "rounds"
    );
    for t in &build.phases {
        println!(
            "{:>5} {:>9} {:>8} {:>8} {:>7} {:>7} {:>6} {:>9}",
            t.phase,
            t.num_clusters,
            t.num_popular,
            t.ruling_set_size,
            t.num_superclusters,
            t.hub_splits,
            t.num_unclustered,
            t.rounds
        );
    }

    let m = &build.metrics;
    println!(
        "\ntotals: {} rounds ({} charged), {} messages, {} words, peak in-flight {}",
        m.rounds, m.charged_rounds, m.messages, m.words, m.peak_in_flight
    );
    println!(
        "emulator: {} edges (bound {:.0})",
        build.emulator.num_edges(),
        params.size_bound(n)
    );
    println!(
        "edge-knowledge cross-checks: {} checked, {} violations (must be 0)",
        build.knowledge_checked, build.knowledge_violations
    );
    assert_eq!(build.knowledge_violations, 0);
    assert!(build.emulator.num_edges() as f64 <= params.size_bound(n));
    println!("\nevery emulator edge is known to both of its endpoints.");
    Ok(())
}
