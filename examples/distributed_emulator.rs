//! The distributed CONGEST construction (§3): honest round/message counts
//! from the simulator, plus the paper's headline distributed property —
//! both endpoints of every emulator edge know the edge.
//!
//! ```text
//! cargo run --release --example distributed_emulator
//! ```

use usnae::api::{Algorithm, Emulator};
use usnae::graph::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 256;
    let g = generators::gnp_connected(n, 8.0 / n as f64, 11)?;
    println!("graph: n={n}, |E|={}; kappa=4, rho=0.5", g.num_edges());

    let out = Emulator::builder(&g)
        .epsilon(0.5)
        .kappa(4)
        .rho(0.5)
        .algorithm(Algorithm::Distributed)
        .traced(true)
        .build()?;

    println!("\nper-phase execution:");
    println!(
        "{:>5} {:>9} {:>8} {:>8} {:>7} {:>7} {:>6} {:>9}",
        "phase", "clusters", "popular", "rulers", "scs", "hubs", "U_i", "rounds"
    );
    let trace = out.trace.as_ref().expect("traced build");
    for t in trace.as_distributed().expect("distributed trace") {
        println!(
            "{:>5} {:>9} {:>8} {:>8} {:>7} {:>7} {:>6} {:>9}",
            t.phase,
            t.num_clusters,
            t.num_popular,
            t.ruling_set_size,
            t.num_superclusters,
            t.hub_splits,
            t.num_unclustered,
            t.rounds
        );
    }

    let stats = out.congest.as_ref().expect("CONGEST build reports metrics");
    let m = &stats.metrics;
    println!(
        "\ntotals: {} rounds ({} charged), {} messages, {} words, peak in-flight {}",
        m.rounds, m.charged_rounds, m.messages, m.words, m.peak_in_flight
    );
    println!(
        "emulator: {} edges (bound {:.0})",
        out.num_edges(),
        out.size_bound.expect("bounded")
    );
    println!(
        "edge-knowledge cross-checks: {} checked, {} violations (must be 0)",
        stats.knowledge_checked, stats.knowledge_violations
    );
    assert_eq!(stats.knowledge_violations, 0);
    assert!(out.num_edges() as f64 <= out.size_bound.unwrap());
    println!("\nevery emulator edge is known to both of its endpoints.");
    Ok(())
}
