//! Disjoint-set union (union by rank + path halving).
//!
//! Substrate for generators (connectivity patching) and component queries.

/// Union-find over dense ids `0..n`.
///
/// # Example
///
/// ```
/// use usnae_graph::union_find::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(0, 2));
/// assert_eq!(uf.num_sets(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    num_sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            num_sets: n,
        }
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[ra] == self.rank[rb] {
            self.rank[hi] += 1;
        }
        self.num_sets -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Current number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure tracks zero elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.num_sets(), 3);
        for i in 0..3 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn union_reduces_set_count() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.num_sets(), 3);
    }

    #[test]
    fn transitive_connectivity() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(1, 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 5));
    }

    #[test]
    fn len_and_empty() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        let uf = UnionFind::new(2);
        assert_eq!(uf.len(), 2);
        assert!(!uf.is_empty());
    }

    #[test]
    fn long_chain_compresses() {
        let mut uf = UnionFind::new(1000);
        for i in 0..999 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_sets(), 1);
        assert!(uf.connected(0, 999));
    }
}
