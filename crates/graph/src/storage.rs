//! Storage seam for CSR adjacency arrays.
//!
//! Every CSR consumer in the workspace reads graphs through two flat
//! arrays: a row-offset table and a concatenated adjacency list. The
//! [`AdjStorage`] trait abstracts *where those arrays live* so the same
//! construction and query code runs over a heap-owned graph
//! ([`HeapAdj`], today's default, byte-identical to the pre-seam
//! layout) or over a file-backed graph ([`MappedAdj`]) whose pages are
//! faulted in on demand and never copied onto the heap.
//!
//! File backing uses [`ByteMap`]: a read-only `mmap(2)` of the file via
//! a thin zero-dependency `extern "C"` binding on 64-bit little-endian
//! Unix targets, with a portable paged-read fallback (bounded
//! fixed-size reads into an 8-byte-aligned buffer) everywhere else or
//! when `USNAE_NO_MMAP` is set.
//!
//! The on-disk format is the fixed-layout CSR file written by
//! [`write_csr_file`] / [`CsrShardFile`]: a little-endian header, the
//! `u64` offset table, then the `u64` adjacency array, all 8-byte
//! aligned, with a trailing-in-header FNV-1a checksum over the payload.

use crate::graph::VertexId;
use crate::metrics::Fnv64;
use std::fmt;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Read seam over the two flat CSR arrays.
///
/// Implementations must present the offset table (`num_vertices + 1`
/// entries, monotone, `offsets[0] == 0`) and the adjacency array
/// (`offsets[n]` entries) as plain slices; everything downstream —
/// `GraphCore::neighbors`, shard builds, exploration kernels — slices
/// into these. `Sync` is required because builds fan out across scoped
/// threads sharing one storage reference.
pub trait AdjStorage: Sync {
    /// Row-offset table: `offsets()[v]..offsets()[v + 1]` spans vertex
    /// `v`'s neighbor list in `adjacency()`.
    fn offsets(&self) -> &[usize];
    /// Concatenated, per-row-sorted neighbor lists.
    fn adjacency(&self) -> &[VertexId];
}

/// Heap-owned CSR arrays — the default storage, identical to the
/// pre-seam `Graph` layout.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HeapAdj {
    pub(crate) offsets: Vec<usize>,
    pub(crate) adjacency: Vec<VertexId>,
}

impl HeapAdj {
    pub(crate) fn new(offsets: Vec<usize>, adjacency: Vec<VertexId>) -> Self {
        HeapAdj { offsets, adjacency }
    }
}

impl AdjStorage for HeapAdj {
    fn offsets(&self) -> &[usize] {
        &self.offsets
    }
    fn adjacency(&self) -> &[VertexId] {
        &self.adjacency
    }
}

/// Typed failures when opening or validating a CSR storage file.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying filesystem or syscall failure.
    Io(io::Error),
    /// File too short or magic bytes wrong — not a CSR file.
    NotACsrFile { path: PathBuf },
    /// Header fields disagree with the file length.
    Truncated {
        path: PathBuf,
        expected: u64,
        actual: u64,
    },
    /// Offset table is not monotone or does not cover the adjacency.
    BadOffsets { path: PathBuf, index: usize },
    /// Payload checksum mismatch.
    Checksum {
        path: PathBuf,
        expected: u64,
        actual: u64,
    },
    /// Sharded-CSR manifest is malformed.
    BadManifest { path: PathBuf, detail: String },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "csr storage i/o error: {e}"),
            StorageError::NotACsrFile { path } => {
                write!(f, "{} is not a usnae CSR file (bad magic)", path.display())
            }
            StorageError::Truncated {
                path,
                expected,
                actual,
            } => write!(
                f,
                "{}: header declares {expected} bytes but file has {actual}",
                path.display()
            ),
            StorageError::BadOffsets { path, index } => write!(
                f,
                "{}: offset table broken at index {index} (non-monotone or out of range)",
                path.display()
            ),
            StorageError::Checksum {
                path,
                expected,
                actual,
            } => write!(
                f,
                "{}: payload checksum mismatch (expected {expected:#018x}, got {actual:#018x})",
                path.display()
            ),
            StorageError::BadManifest { path, detail } => {
                write!(f, "{}: bad sharded-CSR manifest: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// ByteMap: read-only, 8-byte-aligned view of a whole file.
// ---------------------------------------------------------------------------

/// True when the zero-copy word view is the native layout: `u64` words
/// read from a little-endian file can be reinterpreted as `usize`.
const ZERO_COPY: bool = cfg!(all(target_endian = "little", target_pointer_width = "64"));

#[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

enum Backing {
    /// Read-only private mapping. The pointer is valid for `len` bytes
    /// for the lifetime of the variant; pages fault in on access and
    /// are evictable, so resident set stays bounded by touch pattern.
    #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
    Mapped { ptr: *mut u8, len: usize },
    /// Portable fallback: the file read in bounded fixed-size chunks
    /// into an 8-aligned buffer (`Vec<u64>` guarantees alignment).
    Paged { words: Vec<u64>, len: usize },
}

// SAFETY: the mapping is PROT_READ/MAP_PRIVATE and never mutated after
// construction; concurrent reads of immutable memory are safe.
unsafe impl Send for Backing {}
unsafe impl Sync for Backing {}

impl Drop for Backing {
    fn drop(&mut self) {
        #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
        if let Backing::Mapped { ptr, len } = *self {
            // SAFETY: ptr/len came from a successful mmap and are
            // unmapped exactly once, here.
            unsafe {
                sys::munmap(ptr.cast(), len);
            }
        }
    }
}

/// Read-only, 8-byte-aligned byte view of a file.
///
/// On 64-bit little-endian Unix this is an `mmap(2)` of the file
/// (zero-copy, demand-paged); elsewhere — or when the `USNAE_NO_MMAP`
/// environment variable is set — the file is read once in bounded
/// chunks into an aligned heap buffer.
pub struct ByteMap {
    backing: Backing,
}

impl fmt::Debug for ByteMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ByteMap")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

impl ByteMap {
    /// Map `path` read-only, preferring `mmap` where available.
    pub fn open(path: &Path) -> Result<ByteMap, StorageError> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            StorageError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                "file exceeds usize",
            ))
        })?;
        if len == 0 {
            return Ok(ByteMap {
                backing: Backing::Paged {
                    words: Vec::new(),
                    len: 0,
                },
            });
        }
        #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
        if std::env::var_os("USNAE_NO_MMAP").is_none() {
            use std::os::unix::io::AsRawFd;
            // SAFETY: fd is open for reading, len > 0, and the
            // resulting mapping is released in Drop.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr != usize::MAX as *mut std::os::raw::c_void && !ptr.is_null() {
                return Ok(ByteMap {
                    backing: Backing::Mapped {
                        ptr: ptr.cast(),
                        len,
                    },
                });
            }
            // mmap refused (unusual filesystem, resource limit):
            // fall through to the paged reader.
        }
        let mut file = file;
        let words = read_paged(&mut file, len)?;
        Ok(ByteMap {
            backing: Backing::Paged { words, len },
        })
    }

    /// Force the portable paged reader (used by tests to cover the
    /// non-mmap arm on every platform).
    pub fn open_paged(path: &Path) -> Result<ByteMap, StorageError> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            StorageError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                "file exceeds usize",
            ))
        })?;
        let words = read_paged(&mut file, len)?;
        Ok(ByteMap {
            backing: Backing::Paged { words, len },
        })
    }

    /// Number of valid bytes.
    pub fn len(&self) -> usize {
        match &self.backing {
            #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
            Backing::Mapped { len, .. } => *len,
            Backing::Paged { len, .. } => *len,
        }
    }

    /// True when the file has no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when backed by a live memory mapping (vs the paged copy).
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
            Backing::Mapped { .. } => true,
            Backing::Paged { .. } => false,
        }
    }

    /// The raw file bytes. Always 8-byte aligned at index 0.
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
            Backing::Mapped { ptr, len } => {
                // SAFETY: mapping is valid for len bytes and read-only.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            Backing::Paged { words, len } => {
                // SAFETY: words owns at least ceil(len / 8) * 8 bytes.
                unsafe { std::slice::from_raw_parts(words.as_ptr().cast(), *len) }
            }
        }
    }

    /// Little-endian `u64` at byte offset `at` (must be in bounds).
    pub fn u64_at(&self, at: usize) -> u64 {
        let b = &self.bytes()[at..at + 8];
        u64::from_le_bytes(b.try_into().unwrap())
    }
}

fn read_paged(file: &mut File, len: usize) -> Result<Vec<u64>, StorageError> {
    // Bounded chunked reads: never issues one giant read, and the
    // Vec<u64> backing guarantees 8-byte alignment for word views.
    const CHUNK: usize = 4 << 20;
    let words = len.div_ceil(8);
    let mut buf = vec![0u64; words];
    // SAFETY: buf owns words * 8 writable bytes.
    let bytes = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<u8>(), words * 8) };
    file.seek(SeekFrom::Start(0))?;
    let mut pos = 0;
    while pos < len {
        let end = (pos + CHUNK).min(len);
        file.read_exact(&mut bytes[pos..end])?;
        pos = end;
    }
    Ok(buf)
}

/// Reinterpret an 8-aligned little-endian byte range as `&[usize]`.
/// Only callable on targets where that is the native layout.
fn cast_words(bytes: &[u8]) -> &[usize] {
    // Runtime (not const) assert: the function must still *compile* on
    // big-endian/32-bit targets, where callers take the decode path.
    #[allow(clippy::assertions_on_constants)]
    {
        debug_assert!(ZERO_COPY);
    }
    debug_assert_eq!(bytes.len() % 8, 0);
    debug_assert_eq!(bytes.as_ptr() as usize % 8, 0);
    // SAFETY: alignment and length checked above; on little-endian
    // 64-bit targets usize has the same layout as the stored u64 LE.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<usize>(), bytes.len() / 8) }
}

/// Decode a little-endian `u64` section into native `usize`s (the
/// non-zero-copy fallback for big-endian or 32-bit targets).
fn decode_words(bytes: &[u8]) -> Result<Vec<usize>, StorageError> {
    let mut out = Vec::with_capacity(bytes.len() / 8);
    for chunk in bytes.chunks_exact(8) {
        let w = u64::from_le_bytes(chunk.try_into().unwrap());
        let v = usize::try_from(w).map_err(|_| {
            StorageError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                "value exceeds usize",
            ))
        })?;
        out.push(v);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// File-backed CSR storage.
// ---------------------------------------------------------------------------

/// File layout of a whole-graph CSR file (`*.csr`), all fields `u64` LE:
///
/// | bytes    | field                                  |
/// |----------|----------------------------------------|
/// | 0..8     | magic `b"USNAECS1"`                    |
/// | 8..16    | `num_vertices` (n)                     |
/// | 16..24   | `num_edges` (m, undirected)            |
/// | 24..32   | FNV-1a checksum of bytes `32..EOF`     |
/// | 32..     | offsets: `(n + 1) × u64`               |
/// | then     | adjacency: `2m × u64`                  |
pub const CSR_MAGIC: [u8; 8] = *b"USNAECS1";
/// Header length of a whole-graph CSR file.
pub const CSR_HEADER: usize = 32;

/// File-backed CSR storage: offsets and adjacency served straight from
/// a [`ByteMap`] over a [`CSR_MAGIC`] file (zero-copy on 64-bit
/// little-endian targets, decoded once elsewhere).
pub struct MappedAdj {
    map: ByteMap,
    /// Byte range of the offset table inside `map`.
    off: std::ops::Range<usize>,
    /// Byte range of the adjacency array inside `map`.
    adj: std::ops::Range<usize>,
    /// Decoded copies for targets where zero-copy casts are unsound.
    decoded: Option<(Vec<usize>, Vec<VertexId>)>,
}

impl fmt::Debug for MappedAdj {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MappedAdj")
            .field("offsets", &(self.off.len() / 8))
            .field("adjacency", &(self.adj.len() / 8))
            .field("mapped", &self.map.is_mapped())
            .finish()
    }
}

impl AdjStorage for MappedAdj {
    fn offsets(&self) -> &[usize] {
        match &self.decoded {
            Some((o, _)) => o,
            None => cast_words(&self.map.bytes()[self.off.clone()]),
        }
    }
    fn adjacency(&self) -> &[VertexId] {
        match &self.decoded {
            Some((_, a)) => a,
            None => cast_words(&self.map.bytes()[self.adj.clone()]),
        }
    }
}

impl MappedAdj {
    /// Open a whole-graph CSR file and validate its structure: magic,
    /// length arithmetic, and a monotone offset table covering the
    /// adjacency. The payload checksum is *not* verified here (that
    /// would fault in every page); call [`MappedAdj::verify`].
    /// Returns the storage plus `(num_vertices, num_edges)`.
    pub fn open(path: &Path) -> Result<(MappedAdj, usize, usize), StorageError> {
        let map = ByteMap::open(path)?;
        Self::from_map(map, path)
    }

    /// As [`MappedAdj::open`] but forcing the paged (non-mmap) reader.
    pub fn open_paged(path: &Path) -> Result<(MappedAdj, usize, usize), StorageError> {
        let map = ByteMap::open_paged(path)?;
        Self::from_map(map, path)
    }

    fn from_map(map: ByteMap, path: &Path) -> Result<(MappedAdj, usize, usize), StorageError> {
        if map.len() < CSR_HEADER || map.bytes()[..8] != CSR_MAGIC {
            return Err(StorageError::NotACsrFile {
                path: path.to_path_buf(),
            });
        }
        let n = map.u64_at(8) as usize;
        let m = map.u64_at(16) as usize;
        let off_len = (n + 1) * 8;
        let adj_len = 2 * m * 8;
        let expected = (CSR_HEADER + off_len + adj_len) as u64;
        if map.len() as u64 != expected {
            return Err(StorageError::Truncated {
                path: path.to_path_buf(),
                expected,
                actual: map.len() as u64,
            });
        }
        let off = CSR_HEADER..CSR_HEADER + off_len;
        let adj = off.end..off.end + adj_len;
        let adj_words = adj_len / 8;
        // Structural validation so neighbor slicing can never go out
        // of bounds: one sequential pass over the offset table.
        let mut prev = 0u64;
        for (i, chunk) in map.bytes()[off.clone()].chunks_exact(8).enumerate() {
            let w = u64::from_le_bytes(chunk.try_into().unwrap());
            let bad = (i == 0 && w != 0) || w < prev || w > adj_words as u64;
            if bad {
                return Err(StorageError::BadOffsets {
                    path: path.to_path_buf(),
                    index: i,
                });
            }
            prev = w;
        }
        if prev != adj_words as u64 {
            return Err(StorageError::BadOffsets {
                path: path.to_path_buf(),
                index: n,
            });
        }
        let decoded = if ZERO_COPY {
            None
        } else {
            Some((
                decode_words(&map.bytes()[off.clone()])?,
                decode_words(&map.bytes()[adj.clone()])?,
            ))
        };
        Ok((
            MappedAdj {
                map,
                off,
                adj,
                decoded,
            },
            n,
            m,
        ))
    }

    /// Full payload checksum verification (touches every page once).
    pub fn verify(&self, path: &Path) -> Result<(), StorageError> {
        let expected = self.map.u64_at(24);
        let mut h = Fnv64::new();
        h.write_bytes(&self.map.bytes()[CSR_HEADER..]);
        let actual = h.finish();
        if actual != expected {
            return Err(StorageError::Checksum {
                path: path.to_path_buf(),
                expected,
                actual,
            });
        }
        Ok(())
    }

    /// True when served by a live memory mapping.
    pub fn is_mapped(&self) -> bool {
        self.map.is_mapped()
    }
}

/// Write a whole-graph CSR file for the given arrays.
///
/// Streams the payload through a buffered writer, then re-reads it in
/// bounded chunks to compute the checksum and patches the header —
/// nothing graph-sized is buffered.
pub fn write_csr_file(
    path: &Path,
    num_edges: usize,
    offsets: &[usize],
    adjacency: &[VertexId],
) -> Result<(), StorageError> {
    let n = offsets.len() - 1;
    let mut w = io::BufWriter::new(create_rw(path)?);
    w.write_all(&CSR_MAGIC)?;
    w.write_all(&(n as u64).to_le_bytes())?;
    w.write_all(&(num_edges as u64).to_le_bytes())?;
    w.write_all(&0u64.to_le_bytes())?; // checksum patched below
    for &o in offsets {
        w.write_all(&(o as u64).to_le_bytes())?;
    }
    for &v in adjacency {
        w.write_all(&(v as u64).to_le_bytes())?;
    }
    let file = w
        .into_inner()
        .map_err(|e| StorageError::Io(e.into_error()))?;
    patch_checksum(file, CSR_HEADER as u64, 24)?;
    Ok(())
}

/// Create-or-truncate `path` opened for both writing and reading (the
/// checksum patch pass re-reads the payload through the same handle).
fn create_rw(path: &Path) -> io::Result<File> {
    std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(true)
        .open(path)
}

/// Compute the FNV-1a checksum of `file` from byte `payload_start` to
/// EOF in bounded chunks and write it (LE) at byte `checksum_at`.
pub(crate) fn patch_checksum(
    mut file: File,
    payload_start: u64,
    checksum_at: u64,
) -> Result<(), StorageError> {
    file.flush()?;
    file.seek(SeekFrom::Start(payload_start))?;
    let mut h = Fnv64::new();
    let mut buf = vec![0u8; 1 << 20];
    loop {
        let k = file.read(&mut buf)?;
        if k == 0 {
            break;
        }
        h.write_bytes(&buf[..k]);
    }
    file.seek(SeekFrom::Start(checksum_at))?;
    file.write_all(&h.finish().to_le_bytes())?;
    file.flush()?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Per-shard CSR files + manifest.
// ---------------------------------------------------------------------------

/// File layout of a per-shard CSR file (`shard-<i>.csr`), 64-byte
/// header, all fields `u64` LE:
///
/// | bytes    | field                                        |
/// |----------|----------------------------------------------|
/// | 0..8     | magic `b"USNAESH1"`                          |
/// | 8..16    | `start` (first owned vertex)                 |
/// | 16..24   | `end` (one past last owned vertex)           |
/// | 24..32   | `adj_len` (directed entries in this shard)   |
/// | 32..40   | `local_edges` (undirected intra-shard edges) |
/// | 40..48   | `frontier_len` (cut-edge pairs)              |
/// | 48..56   | FNV-1a checksum of bytes `64..EOF`           |
/// | 56..64   | reserved (zero)                              |
/// | 64..     | offsets: `(end - start + 1) × u64`           |
/// | then     | adjacency: `adj_len × u64`                   |
/// | then     | frontier: `frontier_len × (owner, other) u64`|
pub const SHARD_MAGIC: [u8; 8] = *b"USNAESH1";
/// Header length of a per-shard CSR file.
pub const SHARD_HEADER: usize = 64;

/// Decoded header + storage of one per-shard CSR file.
pub struct CsrShardFile {
    /// First owned vertex.
    pub start: usize,
    /// One past the last owned vertex.
    pub end: usize,
    /// Undirected intra-shard edge count.
    pub local_edges: usize,
    /// Cut edges `(owned, other)` with `owned` in `start..end`.
    pub frontier: Vec<(VertexId, VertexId)>,
    /// The shard's offset/adjacency arrays, file-backed.
    pub storage: MappedAdj,
}

impl CsrShardFile {
    /// Open and structurally validate one shard file.
    pub fn open(path: &Path) -> Result<CsrShardFile, StorageError> {
        let map = ByteMap::open(path)?;
        Self::from_map(map, path)
    }

    /// As [`CsrShardFile::open`] but forcing the paged reader.
    pub fn open_paged(path: &Path) -> Result<CsrShardFile, StorageError> {
        let map = ByteMap::open_paged(path)?;
        Self::from_map(map, path)
    }

    fn from_map(map: ByteMap, path: &Path) -> Result<CsrShardFile, StorageError> {
        if map.len() < SHARD_HEADER || map.bytes()[..8] != SHARD_MAGIC {
            return Err(StorageError::NotACsrFile {
                path: path.to_path_buf(),
            });
        }
        let start = map.u64_at(8) as usize;
        let end = map.u64_at(16) as usize;
        let adj_words = map.u64_at(24) as usize;
        let local_edges = map.u64_at(32) as usize;
        let frontier_len = map.u64_at(40) as usize;
        if end < start {
            return Err(StorageError::BadManifest {
                path: path.to_path_buf(),
                detail: format!("shard range {start}..{end} is inverted"),
            });
        }
        let rows = end - start;
        let off_len = (rows + 1) * 8;
        let adj_len = adj_words * 8;
        let frontier_bytes = frontier_len * 16;
        let expected = (SHARD_HEADER + off_len + adj_len + frontier_bytes) as u64;
        if map.len() as u64 != expected {
            return Err(StorageError::Truncated {
                path: path.to_path_buf(),
                expected,
                actual: map.len() as u64,
            });
        }
        let off = SHARD_HEADER..SHARD_HEADER + off_len;
        let adj = off.end..off.end + adj_len;
        let mut prev = 0u64;
        for (i, chunk) in map.bytes()[off.clone()].chunks_exact(8).enumerate() {
            let w = u64::from_le_bytes(chunk.try_into().unwrap());
            let bad = (i == 0 && w != 0) || w < prev || w > adj_words as u64;
            if bad {
                return Err(StorageError::BadOffsets {
                    path: path.to_path_buf(),
                    index: i,
                });
            }
            prev = w;
        }
        if prev != adj_words as u64 {
            return Err(StorageError::BadOffsets {
                path: path.to_path_buf(),
                index: rows,
            });
        }
        let mut frontier = Vec::with_capacity(frontier_len);
        let mut at = adj.end;
        for _ in 0..frontier_len {
            let a = map.u64_at(at) as usize;
            let b = map.u64_at(at + 8) as usize;
            frontier.push((a, b));
            at += 16;
        }
        let decoded = if ZERO_COPY {
            None
        } else {
            Some((
                decode_words(&map.bytes()[off.clone()])?,
                decode_words(&map.bytes()[adj.clone()])?,
            ))
        };
        let storage = MappedAdj {
            map,
            off,
            adj,
            decoded,
        };
        Ok(CsrShardFile {
            start,
            end,
            local_edges,
            frontier,
            storage,
        })
    }

    /// Write one per-shard CSR file (checksum patched after streaming).
    pub fn write(
        path: &Path,
        start: usize,
        end: usize,
        local_edges: usize,
        offsets: &[usize],
        adjacency: &[VertexId],
        frontier: &[(VertexId, VertexId)],
    ) -> Result<(), StorageError> {
        debug_assert_eq!(offsets.len(), end - start + 1);
        let mut w = io::BufWriter::new(create_rw(path)?);
        w.write_all(&SHARD_MAGIC)?;
        w.write_all(&(start as u64).to_le_bytes())?;
        w.write_all(&(end as u64).to_le_bytes())?;
        w.write_all(&(adjacency.len() as u64).to_le_bytes())?;
        w.write_all(&(local_edges as u64).to_le_bytes())?;
        w.write_all(&(frontier.len() as u64).to_le_bytes())?;
        w.write_all(&0u64.to_le_bytes())?; // checksum patched below
        w.write_all(&0u64.to_le_bytes())?; // reserved
        for &o in offsets {
            w.write_all(&(o as u64).to_le_bytes())?;
        }
        for &v in adjacency {
            w.write_all(&(v as u64).to_le_bytes())?;
        }
        for &(a, b) in frontier {
            w.write_all(&(a as u64).to_le_bytes())?;
            w.write_all(&(b as u64).to_le_bytes())?;
        }
        let file = w
            .into_inner()
            .map_err(|e| StorageError::Io(e.into_error()))?;
        patch_checksum(file, SHARD_HEADER as u64, 48)?;
        Ok(())
    }
}

/// Name of the manifest file inside a sharded-CSR directory.
pub const MANIFEST_NAME: &str = "manifest.usnae-csr";

/// Decoded sharded-CSR manifest: the global shape plus the boundary
/// vector; shard `i` lives in `shard-<i>.csr` next to the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Global vertex count.
    pub num_vertices: usize,
    /// Global undirected edge count.
    pub num_edges: usize,
    /// Partition policy name (`range` / `degree-balanced`).
    pub policy: String,
    /// `num_shards + 1` boundaries, `boundaries[0] == 0`, last `== n`.
    pub boundaries: Vec<usize>,
}

impl ShardManifest {
    /// Path of shard `i`'s CSR file inside `dir`.
    pub fn shard_path(dir: &Path, i: usize) -> PathBuf {
        dir.join(format!("shard-{i}.csr"))
    }

    /// Number of shards described.
    pub fn num_shards(&self) -> usize {
        self.boundaries.len().saturating_sub(1)
    }

    /// Write the manifest into `dir`.
    pub fn write(&self, dir: &Path) -> Result<(), StorageError> {
        let mut s = String::new();
        s.push_str("usnae-sharded-csr v1\n");
        s.push_str(&format!("n {}\n", self.num_vertices));
        s.push_str(&format!("m {}\n", self.num_edges));
        s.push_str(&format!("policy {}\n", self.policy));
        let bounds: Vec<String> = self.boundaries.iter().map(|b| b.to_string()).collect();
        s.push_str(&format!("boundaries {}\n", bounds.join(" ")));
        std::fs::write(dir.join(MANIFEST_NAME), s)?;
        Ok(())
    }

    /// Read and validate the manifest from `dir`.
    pub fn read(dir: &Path) -> Result<ShardManifest, StorageError> {
        let path = dir.join(MANIFEST_NAME);
        let text = std::fs::read_to_string(&path)?;
        let bad = |detail: String| StorageError::BadManifest {
            path: path.clone(),
            detail,
        };
        let mut lines = text.lines();
        match lines.next() {
            Some("usnae-sharded-csr v1") => {}
            other => return Err(bad(format!("unknown header {other:?}"))),
        }
        let mut n = None;
        let mut m = None;
        let mut policy = None;
        let mut boundaries: Option<Vec<usize>> = None;
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, rest) = line
                .split_once(' ')
                .ok_or_else(|| bad(format!("bad line {line:?}")))?;
            match key {
                "n" => n = Some(rest.parse().map_err(|_| bad(format!("bad n {rest:?}")))?),
                "m" => m = Some(rest.parse().map_err(|_| bad(format!("bad m {rest:?}")))?),
                "policy" => policy = Some(rest.to_string()),
                "boundaries" => {
                    let mut v = Vec::new();
                    for tok in rest.split_whitespace() {
                        v.push(
                            tok.parse()
                                .map_err(|_| bad(format!("bad boundary {tok:?}")))?,
                        );
                    }
                    boundaries = Some(v);
                }
                _ => return Err(bad(format!("unknown key {key:?}"))),
            }
        }
        let num_vertices = n.ok_or_else(|| bad("missing n".into()))?;
        let num_edges = m.ok_or_else(|| bad("missing m".into()))?;
        let policy = policy.ok_or_else(|| bad("missing policy".into()))?;
        let boundaries = boundaries.ok_or_else(|| bad("missing boundaries".into()))?;
        if boundaries.len() < 2
            || boundaries[0] != 0
            || *boundaries.last().unwrap() != num_vertices
            || boundaries.windows(2).any(|w| w[0] > w[1])
        {
            return Err(bad(format!("inconsistent boundaries {boundaries:?}")));
        }
        Ok(ShardManifest {
            num_vertices,
            num_edges,
            policy,
            boundaries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("usnae-storage-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn csr_file_round_trips_mapped_and_paged() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("g.csr");
        let offsets = vec![0usize, 2, 3, 4];
        let adjacency = vec![1usize, 2, 0, 0];
        write_csr_file(&path, 2, &offsets, &adjacency).unwrap();
        for open in [MappedAdj::open, MappedAdj::open_paged] {
            let (adj, n, m) = open(&path).unwrap();
            assert_eq!((n, m), (3, 2));
            assert_eq!(adj.offsets(), &offsets[..]);
            assert_eq!(adj.adjacency(), &adjacency[..]);
            adj.verify(&path).unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_magic_and_truncation_are_typed() {
        let dir = tmp_dir("corrupt");
        let path = dir.join("g.csr");
        let offsets = vec![0usize, 1, 2];
        let adjacency = vec![1usize, 0];
        write_csr_file(&path, 1, &offsets, &adjacency).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            MappedAdj::open(&path),
            Err(StorageError::NotACsrFile { .. })
        ));
        bytes[0] ^= 0xff;
        bytes.pop();
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            MappedAdj::open(&path),
            Err(StorageError::Truncated { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn broken_offsets_and_checksum_are_typed() {
        let dir = tmp_dir("offsets");
        let path = dir.join("g.csr");
        let offsets = vec![0usize, 1, 2];
        let adjacency = vec![1usize, 0];
        write_csr_file(&path, 1, &offsets, &adjacency).unwrap();
        let good = std::fs::read(&path).unwrap();
        // Non-monotone offset table.
        let mut bytes = good.clone();
        bytes[CSR_HEADER..CSR_HEADER + 8].copy_from_slice(&9u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            MappedAdj::open(&path),
            Err(StorageError::BadOffsets { .. })
        ));
        // Flip one adjacency bit within range: structure fine, checksum not.
        let mut bytes = good.clone();
        let last = bytes.len() - 8;
        bytes[last..].copy_from_slice(&1u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let (adj, _, _) = MappedAdj::open(&path).unwrap();
        assert!(matches!(
            adj.verify(&path),
            Err(StorageError::Checksum { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_file_round_trips() {
        let dir = tmp_dir("shard");
        let path = dir.join("shard-0.csr");
        let offsets = vec![0usize, 2, 3];
        let adjacency = vec![1usize, 5, 0];
        let frontier = vec![(0usize, 5usize)];
        CsrShardFile::write(&path, 0, 2, 1, &offsets, &adjacency, &frontier).unwrap();
        for open in [CsrShardFile::open, CsrShardFile::open_paged] {
            let sf = open(&path).unwrap();
            assert_eq!((sf.start, sf.end, sf.local_edges), (0, 2, 1));
            assert_eq!(sf.frontier, frontier);
            assert_eq!(sf.storage.offsets(), &offsets[..]);
            assert_eq!(sf.storage.adjacency(), &adjacency[..]);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_round_trips_and_rejects_garbage() {
        let dir = tmp_dir("manifest");
        let m = ShardManifest {
            num_vertices: 10,
            num_edges: 7,
            policy: "range".into(),
            boundaries: vec![0, 5, 10],
        };
        m.write(&dir).unwrap();
        assert_eq!(ShardManifest::read(&dir).unwrap(), m);
        std::fs::write(dir.join(MANIFEST_NAME), "nonsense\n").unwrap();
        assert!(matches!(
            ShardManifest::read(&dir),
            Err(StorageError::BadManifest { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
