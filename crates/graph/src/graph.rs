//! Compact CSR representation of an unweighted undirected simple graph.
//!
//! This is the paper's input object `G = (V, E)`. Vertices are dense ids
//! `0..n`. The representation is immutable after construction; algorithms
//! that need mutation build a new graph through [`GraphBuilder`].
//!
//! The CSR arrays live behind the [`AdjStorage`] seam: [`Graph`] is the
//! heap-owned default (`GraphCore<HeapAdj>`, byte-identical to the
//! pre-seam layout) and [`MappedGraph`] (`GraphCore<MappedAdj>`) serves
//! the same read API straight from a CSR file without materializing the
//! arrays on the heap.

use crate::error::GraphError;
use crate::storage::{AdjStorage, HeapAdj, MappedAdj, StorageError};
use std::path::Path;

/// Dense vertex identifier, `0..n`.
pub type VertexId = usize;

/// An unweighted undirected simple graph in CSR form, generic over
/// where its offset/adjacency arrays live.
///
/// Use the [`Graph`] alias for the heap-owned default and
/// [`MappedGraph`] for the file-backed variant; all read accessors are
/// shared and behave identically.
#[derive(Debug, Clone)]
pub struct GraphCore<S: AdjStorage = HeapAdj> {
    /// Offset + adjacency arrays (see [`AdjStorage`]).
    storage: S,
    /// Number of undirected edges.
    num_edges: usize,
}

/// Heap-owned graph — the workspace-wide default.
///
/// Construction deduplicates parallel edges and rejects self-loops, so the
/// result is always simple, matching the paper's setting.
///
/// # Example
///
/// ```
/// use usnae_graph::Graph;
///
/// # fn main() -> Result<(), usnae_graph::GraphError> {
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2), (1, 0)])?; // duplicate collapsed
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// # Ok(())
/// # }
/// ```
pub type Graph = GraphCore<HeapAdj>;

/// File-backed graph: same read API as [`Graph`], arrays served from a
/// mapped CSR file (see [`crate::storage`]).
pub type MappedGraph = GraphCore<MappedAdj>;

impl<S: AdjStorage, T: AdjStorage> PartialEq<GraphCore<T>> for GraphCore<S> {
    fn eq(&self, other: &GraphCore<T>) -> bool {
        // Storage-independent equality: two graphs are equal iff their
        // CSR arrays are, regardless of where those arrays live.
        self.storage.offsets() == other.storage.offsets()
            && self.storage.adjacency() == other.storage.adjacency()
    }
}

impl<S: AdjStorage> Eq for GraphCore<S> {}

impl Graph {
    /// Builds a graph with `n` vertices from an undirected edge list.
    ///
    /// Parallel edges are collapsed; edge direction is ignored.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if an endpoint is `>= n` and
    /// [`GraphError::SelfLoop`] on a loop `(v, v)`.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Result<Self, GraphError> {
        let mut builder = GraphBuilder::new(n);
        for &(u, v) in edges {
            builder.add_edge(u, v)?;
        }
        Ok(builder.build())
    }

    /// Builds the empty graph on `n` vertices (no edges).
    pub fn empty(n: usize) -> Self {
        GraphCore {
            storage: HeapAdj::new(vec![0; n + 1], Vec::new()),
            num_edges: 0,
        }
    }

    /// Writes this graph as a whole-graph CSR file readable by
    /// [`MappedGraph::open`].
    pub fn write_csr_file(&self, path: &Path) -> Result<(), StorageError> {
        crate::storage::write_csr_file(
            path,
            self.num_edges,
            self.storage.offsets(),
            self.storage.adjacency(),
        )
    }
}

impl MappedGraph {
    /// Opens a whole-graph CSR file (written by [`Graph::write_csr_file`]
    /// or the streaming loader) without materializing its arrays.
    ///
    /// Structure (magic, lengths, monotone offsets) is validated here;
    /// call [`MappedGraph::verify`] for the full payload checksum.
    pub fn open(path: &Path) -> Result<Self, StorageError> {
        let (storage, _n, m) = MappedAdj::open(path)?;
        Ok(GraphCore {
            storage,
            num_edges: m,
        })
    }

    /// As [`MappedGraph::open`] but forcing the portable paged reader.
    pub fn open_paged(path: &Path) -> Result<Self, StorageError> {
        let (storage, _n, m) = MappedAdj::open_paged(path)?;
        Ok(GraphCore {
            storage,
            num_edges: m,
        })
    }

    /// Full payload checksum verification (touches every page once).
    pub fn verify(&self, path: &Path) -> Result<(), StorageError> {
        self.storage.verify(path)
    }

    /// True when served by a live memory mapping.
    pub fn is_mapped(&self) -> bool {
        self.storage.is_mapped()
    }

    /// Copies the CSR arrays onto the heap, producing a [`Graph`] equal
    /// to this one. Used by callers that need an owned graph (e.g. the
    /// default mapped-build fallback).
    pub fn to_heap(&self) -> Graph {
        GraphCore {
            storage: HeapAdj::new(
                self.storage.offsets().to_vec(),
                self.storage.adjacency().to_vec(),
            ),
            num_edges: self.num_edges,
        }
    }
}

impl<S: AdjStorage> GraphCore<S> {
    /// The underlying storage.
    pub fn storage(&self) -> &S {
        &self.storage
    }

    /// Number of vertices `n`.
    pub fn num_vertices(&self) -> usize {
        self.storage.offsets().len() - 1
    }

    /// Number of undirected edges `|E|`.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Sorted neighbor list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let offsets = self.storage.offsets();
        &self.storage.adjacency()[offsets[v]..offsets[v + 1]]
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn degree(&self, v: VertexId) -> usize {
        let offsets = self.storage.offsets();
        offsets[v + 1] - offsets[v]
    }

    /// Whether the undirected edge `(u, v)` is present (binary search).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        u < self.num_vertices()
            && v < self.num_vertices()
            && self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all vertices `0..n`.
    pub fn vertices(&self) -> std::ops::Range<VertexId> {
        0..self.num_vertices()
    }

    /// Iterator over undirected edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Maximum degree over all vertices, or 0 for the empty vertex set.
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average degree `2|E|/n`, or 0.0 when `n == 0`.
    pub fn average_degree(&self) -> f64 {
        let n = self.num_vertices();
        if n == 0 {
            0.0
        } else {
            2.0 * self.num_edges as f64 / n as f64
        }
    }

    /// Number of *directed* edges (`2|E|`), the index space of
    /// [`directed_edge_index`](Self::directed_edge_index).
    pub fn num_directed_edges(&self) -> usize {
        self.storage.adjacency().len()
    }

    /// Dense index of the directed edge `u -> v` in `0..2|E|`, or `None` if
    /// the edge is absent. Used by the CONGEST simulator to key per-edge
    /// message queues.
    pub fn directed_edge_index(&self, u: VertexId, v: VertexId) -> Option<usize> {
        if u >= self.num_vertices() {
            return None;
        }
        let slice = self.neighbors(u);
        slice
            .binary_search(&v)
            .ok()
            .map(|pos| self.storage.offsets()[u] + pos)
    }
}

/// Incremental builder for [`Graph`].
///
/// # Example
///
/// ```
/// use usnae_graph::GraphBuilder;
///
/// # fn main() -> Result<(), usnae_graph::GraphError> {
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1)?;
/// b.add_edge(2, 3)?;
/// let g = b.build();
/// assert_eq!(g.num_edges(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Number of vertices the built graph will have.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Adds the undirected edge `(u, v)`.
    ///
    /// Duplicates are tolerated (collapsed at [`build`](Self::build) time).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] or [`GraphError::SelfLoop`].
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<&mut Self, GraphError> {
        if u >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: u,
                n: self.n,
            });
        }
        if v >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: v,
                n: self.n,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        self.edges.push(if u < v { (u, v) } else { (v, u) });
        Ok(self)
    }

    /// Finalizes the CSR arrays; O(|E| log |E|).
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let mut offsets = vec![0usize; self.n + 1];
        for &(u, v) in &self.edges {
            offsets[u + 1] += 1;
            offsets[v + 1] += 1;
        }
        for i in 0..self.n {
            offsets[i + 1] += offsets[i];
        }
        let mut adjacency = vec![0 as VertexId; 2 * self.edges.len()];
        let mut cursor = offsets.clone();
        for &(u, v) in &self.edges {
            adjacency[cursor[u]] = v;
            cursor[u] += 1;
            adjacency[cursor[v]] = u;
            cursor[v] += 1;
        }
        // Each per-vertex slice is sorted because edges were processed in
        // lexicographic order for the first endpoint but not the second; sort
        // slices to give callers the binary-search guarantee of `has_edge`.
        for v in 0..self.n {
            adjacency[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        let num_edges = self.edges.len();
        GraphCore {
            storage: HeapAdj::new(offsets, adjacency),
            num_edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
        for v in g.vertices() {
            assert!(g.neighbors(v).is_empty());
        }
    }

    #[test]
    fn zero_vertex_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn triangle() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn self_loop_rejected() {
        assert_eq!(
            Graph::from_edges(3, &[(1, 1)]).unwrap_err(),
            GraphError::SelfLoop { vertex: 1 }
        );
    }

    #[test]
    fn out_of_range_rejected() {
        assert_eq!(
            Graph::from_edges(3, &[(0, 3)]).unwrap_err(),
            GraphError::VertexOutOfRange { vertex: 3, n: 3 }
        );
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(5, &[(2, 4), (2, 0), (2, 3), (2, 1)]).unwrap();
        assert_eq!(g.neighbors(2), &[0, 1, 3, 4]);
    }

    #[test]
    fn edges_iterator_canonical_order() {
        let g = Graph::from_edges(4, &[(3, 2), (1, 0), (0, 2)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (2, 3)]);
    }

    #[test]
    fn max_and_average_degree() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(g.max_degree(), 3);
        assert!((g.average_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn directed_edge_indices_dense_and_unique() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        assert_eq!(g.num_directed_edges(), 8);
        let mut seen = std::collections::HashSet::new();
        for u in g.vertices() {
            for &v in g.neighbors(u) {
                let idx = g.directed_edge_index(u, v).unwrap();
                assert!(idx < g.num_directed_edges());
                assert!(seen.insert(idx));
            }
        }
        assert_eq!(seen.len(), 8);
        assert_eq!(g.directed_edge_index(0, 2), None);
        assert_eq!(g.directed_edge_index(9, 0), None);
    }

    #[test]
    fn builder_is_reusable_across_adds() {
        let mut b = GraphBuilder::new(10);
        for i in 0..9 {
            b.add_edge(i, i + 1).unwrap();
        }
        assert_eq!(b.num_vertices(), 10);
        let g = b.build();
        assert_eq!(g.num_edges(), 9);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(5), 2);
    }

    #[test]
    fn mapped_graph_round_trips_byte_identical() {
        let dir = std::env::temp_dir().join(format!("usnae-graph-map-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.csr");
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 4)])
            .unwrap();
        g.write_csr_file(&path).unwrap();
        for m in [
            MappedGraph::open(&path).unwrap(),
            MappedGraph::open_paged(&path).unwrap(),
        ] {
            m.verify(&path).unwrap();
            assert_eq!(m, g);
            assert_eq!(m.num_vertices(), g.num_vertices());
            assert_eq!(m.num_edges(), g.num_edges());
            for v in g.vertices() {
                assert_eq!(m.neighbors(v), g.neighbors(v));
            }
            assert_eq!(m.to_heap(), g);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
