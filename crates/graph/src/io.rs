//! Plain-text edge-list I/O.
//!
//! A downstream user's graphs arrive as files; this module reads/writes the
//! ubiquitous whitespace-separated edge-list format (`u v` per line, `#`
//! comments, 0-based ids) and a weighted variant for emulators (`u v w`).

use crate::error::GraphError;
use crate::graph::{Graph, GraphBuilder};
use crate::weighted::WeightedGraph;
use crate::Dist;
use std::io::{BufRead, Write};

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line did not parse as `u v` (or `u v w`).
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// The parsed edge violated graph constraints.
    Graph(GraphError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o failure: {e}"),
            IoError::Parse { line, content } => {
                write!(f, "line {line} is not a valid edge: {content:?}")
            }
            IoError::Graph(e) => write!(f, "invalid edge: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<GraphError> for IoError {
    fn from(e: GraphError) -> Self {
        IoError::Graph(e)
    }
}

/// Reads an unweighted edge list; the vertex count is
/// `max(max endpoint + 1, min_vertices)`.
///
/// Lines starting with `#` and blank lines are skipped.
///
/// # Errors
///
/// [`IoError`] on read failures, malformed lines, or self-loops.
///
/// # Example
///
/// ```
/// use usnae_graph::io::read_edge_list;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let text = "# a triangle\n0 1\n1 2\n2 0\n";
/// let g = read_edge_list(text.as_bytes(), 0)?;
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 3);
/// # Ok(())
/// # }
/// ```
pub fn read_edge_list<R: BufRead>(reader: R, min_vertices: usize) -> Result<Graph, IoError> {
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut max_vertex = 0usize;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
            return Err(IoError::Parse {
                line: idx + 1,
                content: line.clone(),
            });
        };
        let (Ok(u), Ok(v)) = (a.parse::<usize>(), b.parse::<usize>()) else {
            return Err(IoError::Parse {
                line: idx + 1,
                content: line.clone(),
            });
        };
        max_vertex = max_vertex.max(u).max(v);
        edges.push((u, v));
    }
    let n = if edges.is_empty() {
        min_vertices
    } else {
        (max_vertex + 1).max(min_vertices)
    };
    let mut b = GraphBuilder::new(n);
    for (u, v) in edges {
        b.add_edge(u, v)?;
    }
    Ok(b.build())
}

/// Writes `g` as an edge list (one `u v` line per edge, `u < v`).
///
/// # Errors
///
/// Propagates write failures.
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

/// Writes a weighted graph as `u v w` lines (emulator export).
///
/// # Errors
///
/// Propagates write failures.
pub fn write_weighted_edge_list<W: Write>(h: &WeightedGraph, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# {} vertices, {} weighted edges",
        h.num_vertices(),
        h.num_edges()
    )?;
    let mut edges: Vec<_> = h.edges().collect();
    edges.sort_by_key(|e| (e.u, e.v));
    for e in edges {
        writeln!(writer, "{} {} {}", e.u, e.v, e.weight)?;
    }
    Ok(())
}

/// Reads a weighted edge list (`u v w` per line).
///
/// # Errors
///
/// [`IoError`] on read failures or malformed lines.
pub fn read_weighted_edge_list<R: BufRead>(
    reader: R,
    min_vertices: usize,
) -> Result<WeightedGraph, IoError> {
    let mut edges: Vec<(usize, usize, Dist)> = Vec::new();
    let mut max_vertex = 0usize;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (Some(a), Some(b), Some(c)) = (parts.next(), parts.next(), parts.next()) else {
            return Err(IoError::Parse {
                line: idx + 1,
                content: line.clone(),
            });
        };
        let (Ok(u), Ok(v), Ok(w)) = (a.parse::<usize>(), b.parse::<usize>(), c.parse::<Dist>())
        else {
            return Err(IoError::Parse {
                line: idx + 1,
                content: line.clone(),
            });
        };
        max_vertex = max_vertex.max(u).max(v);
        edges.push((u, v, w));
    }
    let n = if edges.is_empty() {
        min_vertices
    } else {
        (max_vertex + 1).max(min_vertices)
    };
    let mut h = WeightedGraph::new(n);
    for (u, v, w) in edges {
        h.add_edge(u, v, w);
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip_unweighted() {
        let g = generators::gnp_connected(60, 0.08, 3).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice(), g.num_vertices()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn roundtrip_weighted() {
        let mut h = WeightedGraph::new(5);
        h.add_edge(0, 3, 7);
        h.add_edge(1, 2, 9);
        let mut buf = Vec::new();
        write_weighted_edge_list(&h, &mut buf).unwrap();
        let back = read_weighted_edge_list(buf.as_slice(), 5).unwrap();
        assert_eq!(back.num_edges(), 2);
        assert_eq!(back.weight(0, 3), Some(7));
        assert_eq!(back.weight(2, 1), Some(9));
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n0 1\n  # indented comment\n1 2\n";
        let g = read_edge_list(text.as_bytes(), 0).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn malformed_line_reports_position() {
        let text = "0 1\nnonsense\n";
        match read_edge_list(text.as_bytes(), 0) {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn self_loop_rejected() {
        let text = "3 3\n";
        assert!(matches!(
            read_edge_list(text.as_bytes(), 0),
            Err(IoError::Graph(_))
        ));
    }

    #[test]
    fn min_vertices_pads_isolated() {
        let g = read_edge_list("0 1\n".as_bytes(), 10).unwrap();
        assert_eq!(g.num_vertices(), 10);
        let empty = read_edge_list("# nothing\n".as_bytes(), 4).unwrap();
        assert_eq!(empty.num_vertices(), 4);
    }
}
