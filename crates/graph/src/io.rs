//! Plain-text edge-list I/O.
//!
//! A downstream user's graphs arrive as files; this module reads/writes the
//! ubiquitous whitespace-separated edge-list format (`u v` per line, `#`
//! comments, 0-based ids) and a weighted variant for emulators (`u v w`).
//!
//! Two loading paths share one line grammar (see [`read_edge_list`]):
//!
//! * [`read_edge_list`] — buffers the edges and builds a heap [`Graph`];
//!   a thin wrapper over the shared parser.
//! * [`stream_edge_list_to_csr_file`] / [`stream_edge_list_to_shards`] —
//!   the out-of-core path: two passes over the input file produce a
//!   mappable CSR file (or per-shard CSR files + manifest) directly,
//!   never materializing the whole graph; peak memory is `O(n)` for the
//!   degree/offset arrays plus one shard's edges, independent of `m`.

use crate::error::GraphError;
use crate::graph::{Graph, GraphBuilder, VertexId};
use crate::partition::PartitionPolicy;
use crate::storage::{self, CsrShardFile, ShardManifest, StorageError};
use crate::weighted::WeightedGraph;
use crate::Dist;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Errors from edge-list parsing and streaming CSR conversion.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line did not parse as `u v` (or `u v w`).
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// A vertex id was numeric but exceeds the platform `usize`.
    Overflow {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A duplicate undirected edge, rejected under strict mode.
    DuplicateEdge {
        /// Canonical smaller endpoint.
        u: VertexId,
        /// Canonical larger endpoint.
        v: VertexId,
    },
    /// The parsed edge violated graph constraints.
    Graph(GraphError),
    /// Writing or reopening a CSR storage file failed.
    Storage(StorageError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o failure: {e}"),
            IoError::Parse { line, content } => {
                write!(f, "line {line} is not a valid edge: {content:?}")
            }
            IoError::Overflow { line, token } => {
                write!(f, "line {line}: vertex id {token:?} overflows usize")
            }
            IoError::DuplicateEdge { u, v } => {
                write!(f, "duplicate edge ({u}, {v}) rejected in strict mode")
            }
            IoError::Graph(e) => write!(f, "invalid edge: {e}"),
            IoError::Storage(e) => write!(f, "csr conversion failed: {e}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<GraphError> for IoError {
    fn from(e: GraphError) -> Self {
        IoError::Graph(e)
    }
}

impl From<StorageError> for IoError {
    fn from(e: StorageError) -> Self {
        IoError::Storage(e)
    }
}

/// Parses one edge-list line under the grammar of [`read_edge_list`]:
/// `Ok(None)` for blank/comment lines, `Ok(Some((u, v)))` for an edge.
fn parse_edge_line(line_no: usize, line: &str) -> Result<Option<(usize, usize)>, IoError> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let mut parts = trimmed.split_whitespace();
    let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
        return Err(IoError::Parse {
            line: line_no,
            content: line.to_string(),
        });
    };
    let u = parse_vertex(line_no, line, a)?;
    let v = parse_vertex(line_no, line, b)?;
    Ok(Some((u, v)))
}

fn parse_vertex(line_no: usize, line: &str, token: &str) -> Result<usize, IoError> {
    match token.parse::<usize>() {
        Ok(v) => Ok(v),
        // Distinguish "numeric but too large" from "not a number": an
        // all-digit token that fails to parse can only have overflowed.
        Err(_) if !token.is_empty() && token.bytes().all(|b| b.is_ascii_digit()) => {
            Err(IoError::Overflow {
                line: line_no,
                token: token.to_string(),
            })
        }
        Err(_) => Err(IoError::Parse {
            line: line_no,
            content: line.to_string(),
        }),
    }
}

/// Reads an unweighted edge list; the vertex count is
/// `max(max endpoint + 1, min_vertices)`.
///
/// # Grammar
///
/// The accepted line grammar (shared with the streaming loader):
///
/// * lines are split on ASCII/Unicode whitespace after trimming
///   (CRLF-safe);
/// * blank lines and lines whose first non-whitespace character is `#`
///   are skipped;
/// * an edge line is `u v` — two base-10, 0-based vertex ids; any
///   further whitespace-separated tokens on the line are ignored
///   (so `u v w`-style annotated lists load too);
/// * duplicate edges (in either direction) are collapsed; self-loops
///   are rejected.
///
/// # Errors
///
/// * [`IoError::Io`] — read failure;
/// * [`IoError::Parse`] — a non-comment line with fewer than two tokens
///   or a non-numeric vertex id (1-based line number + content);
/// * [`IoError::Overflow`] — a numeric vertex id exceeding `usize`;
/// * [`IoError::Graph`] — a self-loop `(v, v)`.
///
/// # Example
///
/// ```
/// use usnae_graph::io::read_edge_list;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let text = "# a triangle\n0 1\n1 2\n2 0\n";
/// let g = read_edge_list(text.as_bytes(), 0)?;
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 3);
/// # Ok(())
/// # }
/// ```
pub fn read_edge_list<R: BufRead>(reader: R, min_vertices: usize) -> Result<Graph, IoError> {
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut max_vertex = 0usize;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let Some((u, v)) = parse_edge_line(idx + 1, &line)? else {
            continue;
        };
        max_vertex = max_vertex.max(u).max(v);
        edges.push((u, v));
    }
    let n = if edges.is_empty() {
        min_vertices
    } else {
        (max_vertex + 1).max(min_vertices)
    };
    let mut b = GraphBuilder::new(n);
    for (u, v) in edges {
        b.add_edge(u, v)?;
    }
    Ok(b.build())
}

/// Options for the streaming edge-list → CSR-file loaders.
#[derive(Debug, Clone)]
pub struct StreamOptions {
    /// Pad the vertex count to at least this many vertices.
    pub min_vertices: usize,
    /// Partitioner for shard/bucket boundaries. Bucket boundaries are
    /// computed from the *raw* (pre-dedup) degree counts of pass 1, so
    /// on duplicate-free inputs `DegreeBalanced` shard files are
    /// byte-identical to `ShardedCsr::build(...).write_dir(...)`;
    /// `Range` boundaries are degree-independent and always match.
    pub policy: PartitionPolicy,
    /// Fail with [`IoError::DuplicateEdge`] instead of collapsing
    /// duplicates.
    pub reject_duplicates: bool,
    /// Spill-bucket count for [`stream_edge_list_to_csr_file`] (bounds
    /// the assembly working set to one bucket's edges); `0` picks a
    /// deterministic default from the vertex count.
    pub buckets: usize,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            min_vertices: 0,
            policy: PartitionPolicy::Range,
            reject_duplicates: false,
            buckets: 0,
        }
    }
}

/// What a streaming load saw and produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamStats {
    /// Vertices in the output CSR (`max endpoint + 1`, padded).
    pub num_vertices: usize,
    /// Undirected edges after dedup.
    pub num_edges: usize,
    /// Duplicate undirected edges collapsed (0 under strict mode).
    pub duplicate_edges: usize,
    /// Input lines scanned (including comments/blanks).
    pub lines: usize,
}

/// Pass 1: line-validate the input and accumulate raw degree counts.
fn scan_degrees(input: &Path) -> Result<(Vec<u64>, usize), IoError> {
    let mut deg: Vec<u64> = Vec::new();
    let mut lines = 0usize;
    let reader = BufReader::new(File::open(input)?);
    for (idx, line) in reader.lines().enumerate() {
        lines = idx + 1;
        let line = line?;
        let Some((u, v)) = parse_edge_line(idx + 1, &line)? else {
            continue;
        };
        if u == v {
            return Err(IoError::Graph(GraphError::SelfLoop { vertex: u }));
        }
        let need = u.max(v) + 1;
        if deg.len() < need {
            deg.resize(need, 0);
        }
        deg[u] += 1;
        deg[v] += 1;
    }
    Ok((deg, lines))
}

/// Pass 2: spill each directed edge entry to its owner's bucket file.
/// Entry `(u, v)` goes to `owner(u)`; the reverse goes to `owner(v)` —
/// so every bucket holds exactly the CSR rows of its vertex range.
fn spill_buckets(input: &Path, bucket_paths: &[PathBuf], bounds: &[usize]) -> Result<(), IoError> {
    let owner = |v: usize| bounds.partition_point(|&b| b <= v) - 1;
    let mut writers = Vec::with_capacity(bucket_paths.len());
    for p in bucket_paths {
        writers.push(BufWriter::new(File::create(p)?));
    }
    let reader = BufReader::new(File::open(input)?);
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let Some((u, v)) = parse_edge_line(idx + 1, &line)? else {
            continue;
        };
        let w = &mut writers[owner(u)];
        w.write_all(&(u as u64).to_le_bytes())?;
        w.write_all(&(v as u64).to_le_bytes())?;
        let w = &mut writers[owner(v)];
        w.write_all(&(v as u64).to_le_bytes())?;
        w.write_all(&(u as u64).to_le_bytes())?;
    }
    for w in writers {
        w.into_inner()
            .map_err(|e| IoError::Io(e.into_error()))?
            .flush()?;
    }
    Ok(())
}

/// One bucket's directed entries, sorted and deduped into CSR rows.
/// Returns `(local offsets, adjacency, frontier, local_edges,
/// directed duplicates removed)` for the range `start..end`.
#[allow(clippy::type_complexity)]
fn assemble_bucket(
    path: &Path,
    start: usize,
    end: usize,
    reject_duplicates: bool,
) -> Result<
    (
        Vec<usize>,
        Vec<VertexId>,
        Vec<(VertexId, VertexId)>,
        usize,
        usize,
    ),
    IoError,
> {
    let bytes = std::fs::read(path)?;
    let mut entries: Vec<(u64, u64)> = bytes
        .chunks_exact(16)
        .map(|c| {
            (
                u64::from_le_bytes(c[..8].try_into().unwrap()),
                u64::from_le_bytes(c[8..].try_into().unwrap()),
            )
        })
        .collect();
    drop(bytes);
    entries.sort_unstable();
    let before = entries.len();
    entries.dedup();
    let removed = before - entries.len();
    if reject_duplicates && removed > 0 {
        // Rescan for the first adjacent duplicate to report it.
        let mut prev: Option<(u64, u64)> = None;
        let bytes = std::fs::read(path)?;
        let mut again: Vec<(u64, u64)> = bytes
            .chunks_exact(16)
            .map(|c| {
                (
                    u64::from_le_bytes(c[..8].try_into().unwrap()),
                    u64::from_le_bytes(c[8..].try_into().unwrap()),
                )
            })
            .collect();
        again.sort_unstable();
        for e in again {
            if prev == Some(e) {
                let (a, b) = (e.0 as usize, e.1 as usize);
                return Err(IoError::DuplicateEdge {
                    u: a.min(b),
                    v: a.max(b),
                });
            }
            prev = Some(e);
        }
    }
    let mut offsets = Vec::with_capacity(end - start + 1);
    offsets.push(0usize);
    let mut adjacency: Vec<VertexId> = Vec::with_capacity(entries.len());
    let mut frontier = Vec::new();
    let mut local_edges = 0usize;
    let mut cursor = 0usize;
    for v in start..end {
        while cursor < entries.len() && entries[cursor].0 == v as u64 {
            let w = entries[cursor].1 as usize;
            adjacency.push(w);
            if !(start..end).contains(&w) {
                frontier.push((v, w));
            } else if v < w {
                local_edges += 1;
            }
            cursor += 1;
        }
        offsets.push(adjacency.len());
    }
    debug_assert_eq!(cursor, entries.len(), "bucket held out-of-range rows");
    Ok((offsets, adjacency, frontier, local_edges, removed))
}

/// Deterministic default bucket count: one bucket per ~256k vertices,
/// clamped to `[1, 64]`.
fn default_buckets(n: usize) -> usize {
    (n / 262_144).clamp(1, 64)
}

/// Streams a plain-text edge list (grammar of [`read_edge_list`]) into
/// a whole-graph CSR file openable by `MappedGraph::open`, without ever
/// materializing the graph: pass 1 counts degrees, pass 2 spills
/// directed entries into per-bucket files, then each bucket is sorted,
/// deduped, and appended to the output in row order. Peak memory is the
/// `O(n)` degree/offset arrays plus one bucket's entries.
///
/// The output is byte-identical to
/// `read_edge_list(...)?.write_csr_file(...)` for any valid input.
pub fn stream_edge_list_to_csr_file(
    input: &Path,
    output: &Path,
    opts: &StreamOptions,
) -> Result<StreamStats, IoError> {
    let (deg, lines) = scan_degrees(input)?;
    let n = deg.len().max(opts.min_vertices);
    let buckets = if opts.buckets == 0 {
        default_buckets(n)
    } else {
        opts.buckets
    };
    let bounds = crate::partition::weighted_boundaries(
        n,
        |v| deg.get(v).copied().unwrap_or(0) as usize,
        opts.policy,
        buckets,
    );
    drop(deg);
    let bucket_paths: Vec<PathBuf> = (0..bounds.len() - 1)
        .map(|i| output.with_extension(format!("bucket-{i}")))
        .collect();
    let payload_path = output.with_extension("payload");
    let result = (|| -> Result<StreamStats, IoError> {
        spill_buckets(input, &bucket_paths, &bounds)?;
        // Assemble buckets in vertex order: true offsets accumulate in
        // memory (O(n)), adjacency streams to a payload file.
        let mut offsets: Vec<u64> = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut payload = BufWriter::new(File::create(&payload_path)?);
        let mut directed = 0u64;
        let mut dup_directed = 0usize;
        for (i, bp) in bucket_paths.iter().enumerate() {
            let (local_offsets, adjacency, _frontier, _local, removed) =
                assemble_bucket(bp, bounds[i], bounds[i + 1], opts.reject_duplicates)?;
            for win in local_offsets.windows(2) {
                directed += (win[1] - win[0]) as u64;
                offsets.push(directed);
            }
            for &v in &adjacency {
                payload.write_all(&(v as u64).to_le_bytes())?;
            }
            dup_directed += removed;
            let _ = std::fs::remove_file(bp);
        }
        payload.flush()?;
        drop(payload);
        let m = (directed / 2) as usize;
        // Final file: header + offsets, then the payload appended in
        // bounded chunks, then the checksum patched into the header.
        let mut out = BufWriter::new(
            std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(output)?,
        );
        out.write_all(&storage::CSR_MAGIC)?;
        out.write_all(&(n as u64).to_le_bytes())?;
        out.write_all(&(m as u64).to_le_bytes())?;
        out.write_all(&0u64.to_le_bytes())?;
        for &o in &offsets {
            out.write_all(&o.to_le_bytes())?;
        }
        drop(offsets);
        let mut payload = File::open(&payload_path)?;
        let mut buf = vec![0u8; 1 << 20];
        loop {
            let k = payload.read(&mut buf)?;
            if k == 0 {
                break;
            }
            out.write_all(&buf[..k])?;
        }
        let file = out.into_inner().map_err(|e| IoError::Io(e.into_error()))?;
        storage::patch_checksum(file, storage::CSR_HEADER as u64, 24)?;
        let _ = std::fs::remove_file(&payload_path);
        Ok(StreamStats {
            num_vertices: n,
            num_edges: m,
            duplicate_edges: dup_directed / 2,
            lines,
        })
    })();
    if result.is_err() {
        for bp in &bucket_paths {
            let _ = std::fs::remove_file(bp);
        }
        let _ = std::fs::remove_file(&payload_path);
        let _ = std::fs::remove_file(output);
    }
    result
}

/// Streams a plain-text edge list directly into a sharded-CSR
/// directory (per-shard CSR files + manifest) openable by
/// `ShardedCsr::open_dir`, without materializing the graph. Shard
/// boundaries follow `opts.policy` over the pass-1 degree counts;
/// `shards` is clamped like `ShardedCsr::build`.
pub fn stream_edge_list_to_shards(
    input: &Path,
    out_dir: &Path,
    shards: usize,
    opts: &StreamOptions,
) -> Result<StreamStats, IoError> {
    let (deg, lines) = scan_degrees(input)?;
    let n = deg.len().max(opts.min_vertices);
    let bounds = crate::partition::weighted_boundaries(
        n,
        |v| deg.get(v).copied().unwrap_or(0) as usize,
        opts.policy,
        shards,
    );
    drop(deg);
    std::fs::create_dir_all(out_dir)?;
    let bucket_paths: Vec<PathBuf> = (0..bounds.len() - 1)
        .map(|i| out_dir.join(format!("bucket-{i}.tmp")))
        .collect();
    let result = (|| -> Result<StreamStats, IoError> {
        spill_buckets(input, &bucket_paths, &bounds)?;
        let mut directed = 0u64;
        let mut dup_directed = 0usize;
        for (i, bp) in bucket_paths.iter().enumerate() {
            let (offsets, adjacency, frontier, local_edges, removed) =
                assemble_bucket(bp, bounds[i], bounds[i + 1], opts.reject_duplicates)?;
            directed += adjacency.len() as u64;
            dup_directed += removed;
            CsrShardFile::write(
                &ShardManifest::shard_path(out_dir, i),
                bounds[i],
                bounds[i + 1],
                local_edges,
                &offsets,
                &adjacency,
                &frontier,
            )?;
            let _ = std::fs::remove_file(bp);
        }
        let m = (directed / 2) as usize;
        ShardManifest {
            num_vertices: n,
            num_edges: m,
            policy: opts.policy.name().to_string(),
            boundaries: bounds.clone(),
        }
        .write(out_dir)?;
        Ok(StreamStats {
            num_vertices: n,
            num_edges: m,
            duplicate_edges: dup_directed / 2,
            lines,
        })
    })();
    if result.is_err() {
        for bp in &bucket_paths {
            let _ = std::fs::remove_file(bp);
        }
    }
    result
}

/// Writes `g` as an edge list (one `u v` line per edge, `u < v`).
///
/// # Errors
///
/// Propagates write failures.
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

/// Writes a weighted graph as `u v w` lines (emulator export).
///
/// # Errors
///
/// Propagates write failures.
pub fn write_weighted_edge_list<W: Write>(h: &WeightedGraph, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# {} vertices, {} weighted edges",
        h.num_vertices(),
        h.num_edges()
    )?;
    let mut edges: Vec<_> = h.edges().collect();
    edges.sort_by_key(|e| (e.u, e.v));
    for e in edges {
        writeln!(writer, "{} {} {}", e.u, e.v, e.weight)?;
    }
    Ok(())
}

/// Reads a weighted edge list (`u v w` per line).
///
/// # Errors
///
/// [`IoError`] on read failures or malformed lines.
pub fn read_weighted_edge_list<R: BufRead>(
    reader: R,
    min_vertices: usize,
) -> Result<WeightedGraph, IoError> {
    let mut edges: Vec<(usize, usize, Dist)> = Vec::new();
    let mut max_vertex = 0usize;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (Some(a), Some(b), Some(c)) = (parts.next(), parts.next(), parts.next()) else {
            return Err(IoError::Parse {
                line: idx + 1,
                content: line.clone(),
            });
        };
        let (Ok(u), Ok(v), Ok(w)) = (a.parse::<usize>(), b.parse::<usize>(), c.parse::<Dist>())
        else {
            return Err(IoError::Parse {
                line: idx + 1,
                content: line.clone(),
            });
        };
        max_vertex = max_vertex.max(u).max(v);
        edges.push((u, v, w));
    }
    let n = if edges.is_empty() {
        min_vertices
    } else {
        (max_vertex + 1).max(min_vertices)
    };
    let mut h = WeightedGraph::new(n);
    for (u, v, w) in edges {
        h.add_edge(u, v, w);
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip_unweighted() {
        let g = generators::gnp_connected(60, 0.08, 3).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice(), g.num_vertices()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn roundtrip_weighted() {
        let mut h = WeightedGraph::new(5);
        h.add_edge(0, 3, 7);
        h.add_edge(1, 2, 9);
        let mut buf = Vec::new();
        write_weighted_edge_list(&h, &mut buf).unwrap();
        let back = read_weighted_edge_list(buf.as_slice(), 5).unwrap();
        assert_eq!(back.num_edges(), 2);
        assert_eq!(back.weight(0, 3), Some(7));
        assert_eq!(back.weight(2, 1), Some(9));
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n0 1\n  # indented comment\n1 2\n";
        let g = read_edge_list(text.as_bytes(), 0).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn malformed_line_reports_position() {
        let text = "0 1\nnonsense\n";
        match read_edge_list(text.as_bytes(), 0) {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn self_loop_rejected() {
        let text = "3 3\n";
        assert!(matches!(
            read_edge_list(text.as_bytes(), 0),
            Err(IoError::Graph(_))
        ));
    }

    #[test]
    fn min_vertices_pads_isolated() {
        let g = read_edge_list("0 1\n".as_bytes(), 10).unwrap();
        assert_eq!(g.num_vertices(), 10);
        let empty = read_edge_list("# nothing\n".as_bytes(), 4).unwrap();
        assert_eq!(empty.num_vertices(), 4);
    }

    #[test]
    fn overflowing_vertex_id_is_typed() {
        let text = "0 1\n0 999999999999999999999999999\n";
        match read_edge_list(text.as_bytes(), 0) {
            Err(IoError::Overflow { line, token }) => {
                assert_eq!(line, 2);
                assert_eq!(token, "999999999999999999999999999");
            }
            other => panic!("expected overflow error, got {other:?}"),
        }
    }

    #[test]
    fn single_token_line_is_a_parse_error() {
        match read_edge_list("0 1\n7\n".as_bytes(), 0) {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn trailing_tokens_and_crlf_tolerated() {
        let text = "0 1 17 extra\r\n1 2\t3\r\n";
        let g = read_edge_list(text.as_bytes(), 0).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    fn stream_fixture(tag: &str, text: &str) -> (std::path::PathBuf, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("usnae-io-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("edges.txt");
        std::fs::write(&input, text).unwrap();
        (dir, input)
    }

    #[test]
    fn streamed_csr_file_is_byte_identical_to_the_heap_path() {
        let g = generators::gnp_connected(180, 0.05, 7).unwrap();
        let mut text = Vec::new();
        write_edge_list(&g, &mut text).unwrap();
        let (dir, input) = stream_fixture("bytes", std::str::from_utf8(&text).unwrap());
        let heap_path = dir.join("heap.csr");
        g.write_csr_file(&heap_path).unwrap();
        for buckets in [0usize, 1, 3, 7] {
            let streamed_path = dir.join(format!("streamed-{buckets}.csr"));
            let opts = StreamOptions {
                buckets,
                ..StreamOptions::default()
            };
            let stats = stream_edge_list_to_csr_file(&input, &streamed_path, &opts).unwrap();
            assert_eq!(stats.num_vertices, g.num_vertices());
            assert_eq!(stats.num_edges, g.num_edges());
            assert_eq!(stats.duplicate_edges, 0);
            assert_eq!(
                std::fs::read(&heap_path).unwrap(),
                std::fs::read(&streamed_path).unwrap(),
                "buckets={buckets}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn streamed_shard_dir_matches_the_heap_sharder() {
        use crate::partition::{PartitionPolicy, ShardView, ShardedCsr};
        let g = generators::gnp_connected(150, 0.06, 11).unwrap();
        let mut text = Vec::new();
        write_edge_list(&g, &mut text).unwrap();
        let (dir, input) = stream_fixture("shards", std::str::from_utf8(&text).unwrap());
        for policy in PartitionPolicy::all() {
            let heap_dir = dir.join(format!("heap-{policy}"));
            let stream_dir = dir.join(format!("stream-{policy}"));
            ShardedCsr::build(&g, policy, 4)
                .write_dir(&heap_dir, g.num_edges())
                .unwrap();
            let opts = StreamOptions {
                policy,
                ..StreamOptions::default()
            };
            let stats = stream_edge_list_to_shards(&input, &stream_dir, 4, &opts).unwrap();
            assert_eq!(stats.num_edges, g.num_edges());
            // Duplicate-free input: shard files must be byte-identical
            // for both policies (boundaries agree with the heap path).
            for i in 0..4 {
                let a =
                    std::fs::read(crate::storage::ShardManifest::shard_path(&heap_dir, i)).unwrap();
                let b = std::fs::read(crate::storage::ShardManifest::shard_path(&stream_dir, i))
                    .unwrap();
                assert_eq!(a, b, "policy={policy} shard={i}");
            }
            let mapped = ShardedCsr::open_dir(&stream_dir).unwrap();
            for v in g.vertices() {
                assert_eq!(ShardView::neighbors(&mapped, v), g.neighbors(v));
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn streaming_collapses_or_rejects_duplicates() {
        let (dir, input) = stream_fixture("dups", "0 1\n1 0\n1 2\n0 1\n");
        let out = dir.join("g.csr");
        let stats = stream_edge_list_to_csr_file(&input, &out, &StreamOptions::default()).unwrap();
        assert_eq!(stats.num_edges, 2);
        assert_eq!(stats.duplicate_edges, 2);
        let strict = StreamOptions {
            reject_duplicates: true,
            ..StreamOptions::default()
        };
        match stream_edge_list_to_csr_file(&input, &dir.join("h.csr"), &strict) {
            Err(IoError::DuplicateEdge { u: 0, v: 1 }) => {}
            other => panic!("expected duplicate-edge error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn streaming_surfaces_parse_and_loop_errors() {
        let (dir, input) = stream_fixture("errs", "0 1\nbroken line\n");
        let err =
            stream_edge_list_to_csr_file(&input, &dir.join("g.csr"), &StreamOptions::default());
        assert!(
            matches!(err, Err(IoError::Parse { line: 2, .. })),
            "{err:?}"
        );
        std::fs::write(&input, "0 1\n2 2\n").unwrap();
        let err =
            stream_edge_list_to_csr_file(&input, &dir.join("g.csr"), &StreamOptions::default());
        assert!(matches!(err, Err(IoError::Graph(_))), "{err:?}");
        // Failed runs must not leave temp buckets or partial output.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|f| f != "edges.txt")
            .collect();
        assert!(leftovers.is_empty(), "leftovers: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
