//! Small deterministic PRNG for the randomized generators and samplers.
//!
//! The repository is dependency-free, so instead of the `rand` crate the
//! randomized pieces (G(n,p), configuration-model regular graphs, preferential
//! attachment, pair sampling, the randomized baselines) share this
//! xoshiro256++ generator seeded through SplitMix64 — the standard
//! construction recommended by the xoshiro authors. Streams are fully
//! determined by the `u64` seed, so every experiment stays reproducible.

/// A seeded xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 random mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn gen_f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.gen_f64() * (hi - lo)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }

    /// Uniform `usize` in `[0, bound)`. Uses Lemire-style rejection to avoid
    /// modulo bias.
    ///
    /// # Panics
    ///
    /// Panics when `bound == 0`.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_index bound must be positive");
        let bound = bound as u64;
        // Rejection zone below 2^64 mod bound keeps the draw unbiased.
        let zone = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= zone {
                return (m >> 64) as usize;
            }
        }
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when `lo >= hi`.
    pub fn gen_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "gen_range requires lo < hi");
        lo + self.gen_index(hi - lo)
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Uniformly chosen element, or `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_index(slice.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_within_bounds_and_covers() {
        let mut rng = Rng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.gen_range(0, 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&b| b), "all residues hit: {seen:?}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Rng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        // Out-of-range probabilities are clamped, not a panic.
        assert!(rng.gen_bool(2.0));
        assert!(!rng.gen_bool(-1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_and_singleton() {
        let mut rng = Rng::seed_from_u64(13);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        assert_eq!(rng.choose(&[9]), Some(&9));
    }

    #[test]
    fn rough_uniformity_of_bernoulli() {
        let mut rng = Rng::seed_from_u64(17);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2600..3400).contains(&hits), "hits = {hits}");
    }
}
