//! Partitioned CSR graph shards: the distributed-memory layout of the
//! input graph.
//!
//! A [`ShardedCsr`] splits `G` into per-worker shards, each owning a
//! **contiguous vertex range** with its own local CSR arrays (offsets +
//! adjacency) and a **cut-edge frontier list** — the directed edges whose
//! head lives in another shard, i.e. exactly what a distributed
//! implementation would have to communicate. No shard aliases the shared
//! adjacency array of the source [`Graph`]; each is independently
//! addressable (and, by design, could live in another process or on
//! another machine — the ROADMAP's million-vertex direction).
//!
//! Two deterministic partitioners sit behind [`PartitionPolicy`]:
//!
//! * [`PartitionPolicy::Range`] — vertex-count-balanced contiguous ranges
//!   (the same split [`crate::par::shard_ranges`] uses for work fan-out);
//! * [`PartitionPolicy::DegreeBalanced`] — contiguous ranges balanced by
//!   total degree, so a hub-heavy prefix does not overload shard 0.
//!
//! Both are pure functions of `(graph, shards)` — no randomness, no
//! iteration-order dependence — so the layout itself obeys the workspace
//! determinism contract.
//!
//! The [`ShardView`] trait is the read seam: a bounded BFS (or any
//! neighbor scan) written against `ShardView` runs unchanged over the
//! shared array ([`Graph`] implements it) or over the sharded layout
//! ([`ShardedCsr`] routes each lookup to the owning shard's local CSR).
//! Because every shard stores its owned vertices' neighbor lists verbatim
//! (sorted, global ids), the two views are **pointwise identical** — which
//! is what makes sharded construction builds byte-identical to unsharded
//! ones (enforced registry-wide by `tests/partition_conformance.rs`).
//!
//! [`GraphView`] packages the choice for the constructions: build it once
//! per build from the configured `(policy, shards)` and pass it to every
//! per-center exploration.
//!
//! Shards are generic over the [`AdjStorage`] seam: [`CsrShard`] /
//! [`ShardedCsr`] default to heap arrays (identical to the pre-seam
//! layout), while `ShardedCsr<MappedAdj>` ([`MappedShardedCsr`]) serves
//! the same `ShardView` reads from per-shard CSR files written by
//! [`ShardedCsr::write_dir`] or the streaming loader
//! (`io::stream_edge_list_to_shards`), opened via
//! [`ShardedCsr::open_dir`].

use crate::graph::{GraphCore, VertexId};
use crate::storage::{AdjStorage, CsrShardFile, HeapAdj, MappedAdj, ShardManifest, StorageError};
use std::path::Path;
use std::time::{Duration, Instant};

/// Deterministic strategy for cutting `0..n` into contiguous shard ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PartitionPolicy {
    /// Near-equal vertex counts per shard.
    #[default]
    Range,
    /// Near-equal total degree per shard (ranges stay contiguous).
    DegreeBalanced,
}

impl PartitionPolicy {
    /// Both policies, in a stable order (test matrices iterate this).
    pub fn all() -> [PartitionPolicy; 2] {
        [PartitionPolicy::Range, PartitionPolicy::DegreeBalanced]
    }

    /// Stable name (`"range"` / `"degree-balanced"`).
    pub fn name(&self) -> &'static str {
        match self {
            PartitionPolicy::Range => "range",
            PartitionPolicy::DegreeBalanced => "degree-balanced",
        }
    }

    /// Parses a [`name`](Self::name) back into the policy.
    pub fn parse(s: &str) -> Option<PartitionPolicy> {
        PartitionPolicy::all().into_iter().find(|p| p.name() == s)
    }
}

impl std::fmt::Display for PartitionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Uniform read access to a graph, independent of where its adjacency
/// lives: one shared CSR ([`Graph`]) or per-worker shards ([`ShardedCsr`]).
///
/// Contract: for a view over `G`, `neighbors(v)` returns exactly
/// `G.neighbors(v)` (sorted, global ids) for every `v < num_vertices()`.
/// Everything built on a view — bounded BFS, ball carving, exploration
/// scans — therefore produces identical output over every implementation;
/// the sharded layout changes *where* the bytes are read from, never what
/// they say.
pub trait ShardView: Sync {
    /// Number of vertices `n`.
    fn num_vertices(&self) -> usize;

    /// Sorted neighbor list of `v` (global vertex ids).
    fn neighbors(&self, v: VertexId) -> &[VertexId];

    /// Degree of `v`.
    fn degree(&self, v: VertexId) -> usize {
        self.neighbors(v).len()
    }
}

impl<S: AdjStorage> ShardView for GraphCore<S> {
    fn num_vertices(&self) -> usize {
        GraphCore::num_vertices(self)
    }

    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        GraphCore::neighbors(self, v)
    }

    fn degree(&self, v: VertexId) -> usize {
        GraphCore::degree(self, v)
    }
}

/// Per-shard record of a partitioned layout: structure counts plus the
/// wall clock spent building the shard's local CSR + frontier list. These
/// surface as the per-shard timings in `BuildStats` (usnae-core).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardTiming {
    /// Shard index.
    pub shard: usize,
    /// Vertices owned by the shard.
    pub vertices: usize,
    /// Undirected edges with both endpoints inside the shard.
    pub local_edges: usize,
    /// Directed cut edges leaving the shard (frontier-list length).
    pub cut_edges: usize,
    /// Wall clock to build this shard's local arrays.
    pub duration: Duration,
}

/// One shard of a [`ShardedCsr`]: a contiguous vertex range with its own
/// CSR arrays (behind the [`AdjStorage`] seam) and cut-edge frontier
/// list. Self-contained — no references into the source graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrShard<S: AdjStorage = HeapAdj> {
    start: VertexId,
    end: VertexId,
    /// Local CSR arrays: `offsets[v - start]..offsets[v - start + 1]`
    /// indexes the concatenated sorted neighbor lists (global ids).
    storage: S,
    /// Cut edges `(owned u, remote v)`, ascending `(u, v)` — what this
    /// shard would exchange with its peers in a distributed run.
    frontier: Vec<(VertexId, VertexId)>,
    /// Undirected intra-shard edge count.
    local_edges: usize,
    /// Wall clock of this shard's construction.
    build_time: Duration,
}

impl CsrShard<HeapAdj> {
    fn build<Src: AdjStorage>(g: &GraphCore<Src>, start: VertexId, end: VertexId) -> CsrShard {
        let t0 = Instant::now();
        let mut offsets = Vec::with_capacity(end - start + 1);
        offsets.push(0);
        let mut adjacency = Vec::new();
        let mut frontier = Vec::new();
        let mut local_edges = 0usize;
        for v in start..end {
            let nbrs = g.neighbors(v);
            adjacency.extend_from_slice(nbrs);
            offsets.push(adjacency.len());
            for &w in nbrs {
                if !(start..end).contains(&w) {
                    frontier.push((v, w));
                } else if v < w {
                    local_edges += 1;
                }
            }
        }
        CsrShard {
            start,
            end,
            storage: HeapAdj::new(offsets, adjacency),
            frontier,
            local_edges,
            build_time: t0.elapsed(),
        }
    }
}

impl<S: AdjStorage> CsrShard<S> {
    /// The contiguous vertex range this shard owns.
    pub fn range(&self) -> std::ops::Range<VertexId> {
        self.start..self.end
    }

    /// Number of owned vertices.
    pub fn num_vertices(&self) -> usize {
        self.end - self.start
    }

    /// Undirected edges fully inside the shard.
    pub fn local_edges(&self) -> usize {
        self.local_edges
    }

    /// The cut-edge frontier list: `(owned u, remote v)`, ascending.
    pub fn frontier(&self) -> &[(VertexId, VertexId)] {
        &self.frontier
    }

    /// Sorted neighbor list of an **owned** vertex (global ids).
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside [`range`](Self::range).
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        assert!(
            (self.start..self.end).contains(&v),
            "vertex {v} not owned by shard [{}, {})",
            self.start,
            self.end
        );
        let local = v - self.start;
        let offsets = self.storage.offsets();
        &self.storage.adjacency()[offsets[local]..offsets[local + 1]]
    }
}

/// The partitioned layout: per-worker CSR shards over contiguous vertex
/// ranges, generic over where each shard's arrays live. See the
/// [module docs](self) for the determinism and pointwise-identity
/// contracts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedCsr<S: AdjStorage = HeapAdj> {
    /// `boundaries[s]..boundaries[s + 1]` is shard `s`'s range;
    /// `boundaries[0] == 0`, `boundaries[num_shards()] == n`.
    boundaries: Vec<VertexId>,
    shards: Vec<CsrShard<S>>,
    policy: PartitionPolicy,
}

/// File-backed partitioned layout: every shard served from its own CSR
/// file (see [`ShardedCsr::open_dir`]).
pub type MappedShardedCsr = ShardedCsr<MappedAdj>;

/// Shard-range boundaries for `policy` over `g`: `shards + 1` ascending
/// values from `0` to `n`, every range nonempty. `shards` is clamped to
/// `[1, max(n, 1)]`.
pub fn boundaries<S: AdjStorage>(
    g: &GraphCore<S>,
    policy: PartitionPolicy,
    shards: usize,
) -> Vec<VertexId> {
    weighted_boundaries(g.num_vertices(), |v| g.degree(v), policy, shards)
}

/// [`boundaries`] over an arbitrary per-vertex load function (the degree
/// for input graphs; e.g. emulator degrees for partitioned *output*
/// backends). Pure in `(n, weight, policy, shards)`.
pub fn weighted_boundaries(
    n: usize,
    weight: impl Fn(VertexId) -> usize,
    policy: PartitionPolicy,
    shards: usize,
) -> Vec<VertexId> {
    let shards = shards.clamp(1, n.max(1));
    match policy {
        PartitionPolicy::Range => {
            let base = n / shards;
            let rem = n % shards;
            (0..=shards).map(|s| s * base + s.min(rem)).collect()
        }
        PartitionPolicy::DegreeBalanced => {
            // Weight each vertex by load + 1: the +1 keeps long zero-load
            // runs from collapsing every boundary onto one index, and
            // reduces to the Range split on regular graphs.
            let mut prefix = Vec::with_capacity(n + 1);
            prefix.push(0u64);
            for v in 0..n {
                prefix.push(prefix[v] + weight(v) as u64 + 1);
            }
            let total = prefix[n];
            let mut bounds = vec![0usize];
            for s in 1..shards {
                let target = total * s as u64 / shards as u64;
                let b = prefix.partition_point(|&p| p < target);
                // Nonempty ranges: stay past the previous boundary and
                // leave one vertex for each remaining shard.
                bounds.push(b.clamp(bounds[s - 1] + 1, n - (shards - s)));
            }
            bounds.push(n);
            bounds
        }
    }
}

impl ShardedCsr<HeapAdj> {
    /// Partitions `g` into `shards` per-worker CSR shards under `policy`.
    /// Each shard is built on its own scoped thread; the result is a pure
    /// function of `(g, policy, shards)`. `shards` is clamped to
    /// `[1, max(n, 1)]`. Works over any source storage (heap or mapped);
    /// the shards themselves are heap-owned.
    pub fn build<Src: AdjStorage>(
        g: &GraphCore<Src>,
        policy: PartitionPolicy,
        shards: usize,
    ) -> ShardedCsr {
        let bounds = boundaries(g, policy, shards);
        let count = bounds.len() - 1;
        let shards = crate::par::map_indexed(count, count, |s| {
            CsrShard::build(g, bounds[s], bounds[s + 1])
        });
        ShardedCsr {
            boundaries: bounds,
            shards,
            policy,
        }
    }

    /// Writes this layout as per-shard CSR files + manifest into `dir`
    /// (created if missing), re-openable via [`ShardedCsr::open_dir`].
    /// `num_edges` is the global undirected edge count for the manifest.
    pub fn write_dir(&self, dir: &Path, num_edges: usize) -> Result<(), StorageError> {
        std::fs::create_dir_all(dir)?;
        for (i, sh) in self.shards.iter().enumerate() {
            CsrShardFile::write(
                &ShardManifest::shard_path(dir, i),
                sh.start,
                sh.end,
                sh.local_edges,
                sh.storage.offsets(),
                sh.storage.adjacency(),
                &sh.frontier,
            )?;
        }
        ShardManifest {
            num_vertices: ShardView::num_vertices(self),
            num_edges,
            policy: self.policy.name().to_string(),
            boundaries: self.boundaries.clone(),
        }
        .write(dir)
    }
}

impl ShardedCsr<MappedAdj> {
    /// Opens a sharded-CSR directory (manifest + `shard-<i>.csr` files)
    /// written by [`ShardedCsr::write_dir`] or the streaming loader,
    /// serving every shard from its file without heap materialization.
    pub fn open_dir(dir: &Path) -> Result<MappedShardedCsr, StorageError> {
        let manifest = ShardManifest::read(dir)?;
        let manifest_path = dir.join(crate::storage::MANIFEST_NAME);
        let policy =
            PartitionPolicy::parse(&manifest.policy).ok_or_else(|| StorageError::BadManifest {
                path: manifest_path.clone(),
                detail: format!("unknown policy {:?}", manifest.policy),
            })?;
        let mut shards = Vec::with_capacity(manifest.num_shards());
        for i in 0..manifest.num_shards() {
            let t0 = Instant::now();
            let file = CsrShardFile::open(&ShardManifest::shard_path(dir, i))?;
            if file.start != manifest.boundaries[i] || file.end != manifest.boundaries[i + 1] {
                return Err(StorageError::BadManifest {
                    path: manifest_path.clone(),
                    detail: format!(
                        "shard {i} covers {}..{} but manifest says {}..{}",
                        file.start,
                        file.end,
                        manifest.boundaries[i],
                        manifest.boundaries[i + 1]
                    ),
                });
            }
            shards.push(CsrShard {
                start: file.start,
                end: file.end,
                storage: file.storage,
                frontier: file.frontier,
                local_edges: file.local_edges,
                build_time: t0.elapsed(),
            });
        }
        Ok(ShardedCsr {
            boundaries: manifest.boundaries,
            shards,
            policy,
        })
    }
}

impl<S: AdjStorage> ShardedCsr<S> {
    /// The policy that produced this layout.
    pub fn policy(&self) -> PartitionPolicy {
        self.policy
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shards, index order.
    pub fn shards(&self) -> &[CsrShard<S>] {
        &self.shards
    }

    /// Index of the shard owning `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn owner(&self, v: VertexId) -> usize {
        assert!(
            v < self.num_vertices(),
            "vertex {v} out of range for n = {}",
            self.num_vertices()
        );
        self.boundaries.partition_point(|&b| b <= v) - 1
    }

    /// Per-shard structure + build-time records, shard order.
    pub fn shard_timings(&self) -> Vec<ShardTiming> {
        self.shards
            .iter()
            .enumerate()
            .map(|(s, sh)| ShardTiming {
                shard: s,
                vertices: sh.num_vertices(),
                local_edges: sh.local_edges(),
                cut_edges: sh.frontier().len(),
                duration: sh.build_time,
            })
            .collect()
    }

    /// Total undirected cut edges across the layout (each counted once in
    /// both endpoint shards' frontier lists).
    pub fn cut_edges(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.frontier().len())
            .sum::<usize>()
            / 2
    }
}

impl<S: AdjStorage> ShardView for ShardedCsr<S> {
    fn num_vertices(&self) -> usize {
        *self.boundaries.last().expect("boundaries nonempty")
    }

    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        self.shards[self.owner(v)].neighbors(v)
    }
}

/// The per-build choice between the shared adjacency array and the
/// partitioned layout — what the constructions thread through their
/// per-center exploration phases. Generic over the source graph's
/// storage; the partitioned layout's shards are always heap-owned.
#[derive(Debug)]
pub enum GraphView<'g, S: AdjStorage = HeapAdj> {
    /// Read from the source graph's CSR (the historical path).
    Shared(&'g GraphCore<S>),
    /// Read from per-worker CSR shards.
    Partitioned(ShardedCsr),
}

impl<S: AdjStorage> Clone for GraphView<'_, S> {
    fn clone(&self) -> Self {
        // Manual impl: the Shared arm is a reference copy, so no
        // S: Clone bound is needed (MappedAdj is not Clone).
        match self {
            GraphView::Shared(g) => GraphView::Shared(g),
            GraphView::Partitioned(s) => GraphView::Partitioned(s.clone()),
        }
    }
}

impl<'g, S: AdjStorage> GraphView<'g, S> {
    /// `shards == 0` selects the shared array; `shards >= 1` builds a
    /// [`ShardedCsr`] under `policy` (clamped to at most `n` shards).
    pub fn new(g: &'g GraphCore<S>, policy: PartitionPolicy, shards: usize) -> GraphView<'g, S> {
        if shards == 0 {
            GraphView::Shared(g)
        } else {
            GraphView::Partitioned(ShardedCsr::build(g, policy, shards))
        }
    }

    /// The shared-array view (no partitioning).
    pub fn shared(g: &'g GraphCore<S>) -> GraphView<'g, S> {
        GraphView::Shared(g)
    }

    /// Per-shard records — empty for the shared view, so `BuildStats`
    /// carries them only when a partitioned layout was actually built.
    pub fn shard_timings(&self) -> Vec<ShardTiming> {
        match self {
            GraphView::Shared(_) => Vec::new(),
            GraphView::Partitioned(s) => s.shard_timings(),
        }
    }

    /// The partitioned layout, when one was built.
    pub fn as_sharded(&self) -> Option<&ShardedCsr> {
        match self {
            GraphView::Shared(_) => None,
            GraphView::Partitioned(s) => Some(s),
        }
    }
}

impl<S: AdjStorage> ShardView for GraphView<'_, S> {
    fn num_vertices(&self) -> usize {
        match self {
            GraphView::Shared(g) => GraphCore::num_vertices(g),
            GraphView::Partitioned(s) => ShardView::num_vertices(s),
        }
    }

    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        match self {
            GraphView::Shared(g) => GraphCore::neighbors(g, v),
            GraphView::Partitioned(s) => ShardView::neighbors(s, v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::Graph;

    fn views_agree(g: &Graph, policy: PartitionPolicy, shards: usize) {
        let sharded = ShardedCsr::build(g, policy, shards);
        assert_eq!(ShardView::num_vertices(&sharded), g.num_vertices());
        for v in g.vertices() {
            assert_eq!(
                ShardView::neighbors(&sharded, v),
                g.neighbors(v),
                "policy={policy} shards={shards} v={v}"
            );
            assert_eq!(ShardView::degree(&sharded, v), g.degree(v));
        }
    }

    #[test]
    fn sharded_view_is_pointwise_identical_to_the_graph() {
        let graphs = [
            generators::gnp_connected(150, 0.05, 3).unwrap(),
            generators::star(40).unwrap(),
            generators::grid2d(9, 7).unwrap(),
            Graph::empty(5),
        ];
        for g in &graphs {
            for policy in PartitionPolicy::all() {
                for shards in [1usize, 2, 4, 7, 64] {
                    views_agree(g, policy, shards);
                }
            }
        }
    }

    #[test]
    fn boundaries_cover_and_are_nonempty() {
        let g = generators::gnp_connected(101, 0.06, 9).unwrap();
        for policy in PartitionPolicy::all() {
            for shards in [1usize, 2, 3, 7, 50, 101, 500] {
                let b = boundaries(&g, policy, shards);
                assert_eq!(b[0], 0, "{policy} {shards}");
                assert_eq!(*b.last().unwrap(), 101);
                assert!(
                    b.windows(2).all(|w| w[0] < w[1]),
                    "{policy} {shards}: {b:?}"
                );
                assert_eq!(b.len() - 1, shards.min(101), "{policy} {shards}");
            }
        }
    }

    #[test]
    fn range_boundaries_match_the_par_fan_out_split() {
        for n in [1usize, 7, 64, 1000] {
            for shards in [1usize, 2, 5, 13] {
                let g = Graph::empty(n);
                let b = boundaries(&g, PartitionPolicy::Range, shards);
                let ranges = crate::par::shard_ranges(n, shards);
                let starts: Vec<usize> = ranges.iter().map(|r| r.start).collect();
                assert_eq!(&b[..b.len() - 1], &starts[..], "n={n} shards={shards}");
            }
        }
    }

    #[test]
    fn degree_balanced_beats_range_on_a_skewed_graph() {
        // A hub-heavy prefix: vertices 0..10 form a dense clique-ish blob,
        // the rest a long path. Degree balancing must move the boundary
        // past where the naive halving would put it.
        let mut edges = Vec::new();
        for u in 0..10usize {
            for v in (u + 1)..10 {
                edges.push((u, v));
            }
        }
        for v in 10..200usize {
            edges.push((v - 1, v));
        }
        let g = Graph::from_edges(200, &edges).unwrap();
        let spread = |policy: PartitionPolicy| {
            let s = ShardedCsr::build(&g, policy, 2);
            let loads: Vec<usize> = s
                .shards()
                .iter()
                .map(|sh| sh.range().map(|v| g.degree(v)).sum())
                .collect();
            loads.iter().max().unwrap() - loads.iter().min().unwrap()
        };
        assert!(
            spread(PartitionPolicy::DegreeBalanced) < spread(PartitionPolicy::Range),
            "degree balancing should reduce the max-min degree-load spread"
        );
    }

    #[test]
    fn frontier_lists_are_symmetric_and_sorted() {
        let g = generators::gnp_connected(120, 0.06, 5).unwrap();
        for policy in PartitionPolicy::all() {
            for shards in [2usize, 4, 7] {
                let s = ShardedCsr::build(&g, policy, shards);
                let mut directed: Vec<(usize, usize)> = Vec::new();
                for sh in s.shards() {
                    assert!(sh.frontier().windows(2).all(|w| w[0] < w[1]), "sorted");
                    for &(u, v) in sh.frontier() {
                        assert!(sh.range().contains(&u), "u owned");
                        assert!(!sh.range().contains(&v), "v remote");
                        assert_ne!(s.owner(u), s.owner(v));
                        directed.push((u, v));
                    }
                }
                // Every cut edge appears in exactly both endpoint shards.
                let mut reversed: Vec<(usize, usize)> =
                    directed.iter().map(|&(u, v)| (v, u)).collect();
                directed.sort_unstable();
                reversed.sort_unstable();
                assert_eq!(directed, reversed, "{policy} {shards}");
                assert_eq!(s.cut_edges() * 2, directed.len());
            }
        }
    }

    #[test]
    fn local_plus_cut_edges_account_for_every_edge() {
        let g = generators::gnp_connected(90, 0.08, 11).unwrap();
        for policy in PartitionPolicy::all() {
            let s = ShardedCsr::build(&g, policy, 4);
            let local: usize = s.shards().iter().map(|sh| sh.local_edges()).sum();
            assert_eq!(local + s.cut_edges(), g.num_edges(), "{policy}");
            let vertices: usize = s.shards().iter().map(|sh| sh.num_vertices()).sum();
            assert_eq!(vertices, g.num_vertices());
        }
    }

    #[test]
    fn owner_is_consistent_with_ranges() {
        let g = generators::grid2d(10, 10).unwrap();
        let s = ShardedCsr::build(&g, PartitionPolicy::DegreeBalanced, 7);
        for (idx, sh) in s.shards().iter().enumerate() {
            for v in sh.range() {
                assert_eq!(s.owner(v), idx);
            }
        }
    }

    #[test]
    fn layout_is_deterministic_across_rebuilds() {
        let g = generators::gnp_connected(200, 0.04, 21).unwrap();
        for policy in PartitionPolicy::all() {
            let a = ShardedCsr::build(&g, policy, 5);
            let b = ShardedCsr::build(&g, policy, 5);
            // Timings differ run to run; everything structural must not.
            assert_eq!(a.boundaries, b.boundaries);
            for (x, y) in a.shards().iter().zip(b.shards()) {
                assert_eq!(x.storage, y.storage);
                assert_eq!(x.frontier, y.frontier);
            }
        }
    }

    #[test]
    fn graph_view_dispatches_both_layouts() {
        let g = generators::gnp_connected(80, 0.08, 2).unwrap();
        let shared = GraphView::shared(&g);
        assert!(shared.as_sharded().is_none());
        assert!(shared.shard_timings().is_empty());
        let sharded = GraphView::new(&g, PartitionPolicy::DegreeBalanced, 4);
        let timings = sharded.shard_timings();
        assert_eq!(timings.len(), 4);
        assert_eq!(timings.iter().map(|t| t.vertices).sum::<usize>(), 80);
        for v in g.vertices() {
            assert_eq!(shared.neighbors(v), sharded.neighbors(v));
        }
        assert!(GraphView::new(&g, PartitionPolicy::Range, 0)
            .as_sharded()
            .is_none());
    }

    #[test]
    fn sharded_dir_round_trips_and_serves_identical_reads() {
        let dir = std::env::temp_dir().join(format!("usnae-shards-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let g = generators::gnp_connected(120, 0.06, 5).unwrap();
        for policy in PartitionPolicy::all() {
            let heap = ShardedCsr::build(&g, policy, 4);
            heap.write_dir(&dir, g.num_edges()).unwrap();
            let mapped = ShardedCsr::open_dir(&dir).unwrap();
            assert_eq!(mapped.policy(), policy);
            assert_eq!(mapped.num_shards(), heap.num_shards());
            assert_eq!(ShardView::num_vertices(&mapped), g.num_vertices());
            for (h, m) in heap.shards().iter().zip(mapped.shards()) {
                assert_eq!(h.range(), m.range());
                assert_eq!(h.local_edges(), m.local_edges());
                assert_eq!(h.frontier(), m.frontier());
            }
            for v in g.vertices() {
                assert_eq!(ShardView::neighbors(&mapped, v), g.neighbors(v));
            }
            assert_eq!(mapped.cut_edges(), heap.cut_edges());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn policy_names_round_trip() {
        for p in PartitionPolicy::all() {
            assert_eq!(PartitionPolicy::parse(p.name()), Some(p));
            assert_eq!(p.to_string(), p.name());
        }
        assert_eq!(PartitionPolicy::parse("mesh"), None);
    }

    #[test]
    fn oversized_shard_counts_clamp_to_n() {
        let g = generators::path(3).unwrap();
        let s = ShardedCsr::build(&g, PartitionPolicy::Range, 64);
        assert_eq!(s.num_shards(), 3);
        views_agree(&g, PartitionPolicy::Range, 64);
        // Zero-vertex graphs degenerate to one empty shard.
        let empty = Graph::empty(0);
        let s = ShardedCsr::build(&empty, PartitionPolicy::DegreeBalanced, 4);
        assert_eq!(s.num_shards(), 1);
        assert_eq!(ShardView::num_vertices(&s), 0);
    }
}
