//! Breadth-first searches over the unweighted input graph `G`.
//!
//! The SAI constructions need several flavors:
//!
//! * plain single-source BFS ([`bfs`]) for ground-truth distances;
//! * depth-bounded BFS ([`bfs_bounded`]) — the "Dijkstra exploration to depth
//!   `δ_i`" of Algorithm 1 (on an unweighted graph Dijkstra *is* BFS);
//! * multi-source BFS ([`multi_source_bfs`]) that also reports the closest
//!   source and parent pointers — the BFS ruling forest of §3.1.2 Task 3.

use crate::graph::{GraphCore, VertexId};
use crate::storage::AdjStorage;
use crate::{Dist, INF};
use std::collections::VecDeque;

/// Single-source BFS; `None` marks unreachable vertices.
///
/// # Example
///
/// ```
/// use usnae_graph::{Graph, bfs::bfs};
///
/// # fn main() -> Result<(), usnae_graph::GraphError> {
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2)])?;
/// let d = bfs(&g, 0);
/// assert_eq!(d[2], Some(2));
/// assert_eq!(d[3], None);
/// # Ok(())
/// # }
/// ```
pub fn bfs<S: AdjStorage>(g: &GraphCore<S>, source: VertexId) -> Vec<Option<Dist>> {
    bfs_bounded(g, source, INF)
}

/// BFS truncated at `depth`: vertices farther than `depth` stay `None`.
pub fn bfs_bounded<S: AdjStorage>(
    g: &GraphCore<S>,
    source: VertexId,
    depth: Dist,
) -> Vec<Option<Dist>> {
    let mut dist = vec![None; g.num_vertices()];
    let mut queue = VecDeque::new();
    dist[source] = Some(0);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u].expect("queued vertices have distances");
        if du == depth {
            continue;
        }
        for &v in g.neighbors(u) {
            if dist[v].is_none() {
                dist[v] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Vertices within hop distance `depth` of `source` (including `source`),
/// paired with their distances, in BFS order.
pub fn ball<S: AdjStorage>(
    g: &GraphCore<S>,
    source: VertexId,
    depth: Dist,
) -> Vec<(VertexId, Dist)> {
    let dist = bfs_bounded(g, source, depth);
    let mut out: Vec<(VertexId, Dist)> = dist
        .iter()
        .enumerate()
        .filter_map(|(v, d)| d.map(|d| (v, d)))
        .collect();
    out.sort_by_key(|&(v, d)| (d, v));
    out
}

/// Result of a multi-source BFS: per-vertex distance, closest source, and
/// BFS-tree parent (`None` at sources and unreached vertices).
#[derive(Debug, Clone)]
pub struct Forest {
    /// Distance to the closest source (`INF` when unreached).
    pub dist: Vec<Dist>,
    /// Closest source (ties broken toward the smaller source id).
    pub root: Vec<Option<VertexId>>,
    /// BFS-tree parent pointers.
    pub parent: Vec<Option<VertexId>>,
}

impl Forest {
    /// The path from `v` up to its root, inclusive; `None` if `v` unreached.
    pub fn path_to_root(&self, v: VertexId) -> Option<Vec<VertexId>> {
        self.root[v]?;
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur] {
            path.push(p);
            cur = p;
        }
        Some(path)
    }

    /// Tree depth of `v` below its root (equals `dist[v]`), `None` if unreached.
    pub fn depth(&self, v: VertexId) -> Option<Dist> {
        if self.root[v].is_some() {
            Some(self.dist[v])
        } else {
            None
        }
    }
}

/// Multi-source BFS to depth `depth`, producing a ruling forest.
///
/// Each reached vertex records the closest source (smallest id on ties) and a
/// parent on a shortest path toward it. This mirrors the deterministic
/// distributed BFS forest of the paper's Task 3: explorations from all
/// sources start simultaneously and a vertex joins the tree of the first
/// exploration to reach it.
pub fn multi_source_bfs<S: AdjStorage>(
    g: &GraphCore<S>,
    sources: &[VertexId],
    depth: Dist,
) -> Forest {
    let n = g.num_vertices();
    let mut dist = vec![INF; n];
    let mut root = vec![None; n];
    let mut parent = vec![None; n];
    let mut queue = VecDeque::new();
    let mut sorted: Vec<VertexId> = sources.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    for &s in &sorted {
        dist[s] = 0;
        root[s] = Some(s);
        queue.push_back(s);
    }
    while let Some(u) = queue.pop_front() {
        if dist[u] == depth {
            continue;
        }
        for &v in g.neighbors(u) {
            if root[v].is_none() {
                dist[v] = dist[u] + 1;
                root[v] = root[u];
                parent[v] = Some(u);
                queue.push_back(v);
            }
        }
    }
    Forest { dist, root, parent }
}

/// Eccentricity of `source` (max distance to a reachable vertex).
pub fn eccentricity<S: AdjStorage>(g: &GraphCore<S>, source: VertexId) -> Dist {
    bfs(g, source).into_iter().flatten().max().unwrap_or(0)
}

/// Lower bound on the diameter via a double-sweep BFS heuristic; exact on
/// trees, and a cheap scale estimate for workload reporting.
pub fn double_sweep_diameter<S: AdjStorage>(g: &GraphCore<S>, start: VertexId) -> Dist {
    let d1 = bfs(g, start);
    let far = d1
        .iter()
        .enumerate()
        .filter_map(|(v, d)| d.map(|d| (d, v)))
        .max()
        .map(|(_, v)| v)
        .unwrap_or(start);
    eccentricity(g, far)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, Graph};

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn bfs_on_path() {
        let g = path_graph(6);
        let d = bfs(&g, 0);
        for (v, &dist) in d.iter().enumerate() {
            assert_eq!(dist, Some(v as Dist));
        }
    }

    #[test]
    fn bfs_unreachable_is_none() {
        let g = Graph::from_edges(4, &[(0, 1)]).unwrap();
        let d = bfs(&g, 0);
        assert_eq!(d[2], None);
        assert_eq!(d[3], None);
    }

    #[test]
    fn bounded_bfs_truncates() {
        let g = path_graph(10);
        let d = bfs_bounded(&g, 0, 3);
        assert_eq!(d[3], Some(3));
        assert_eq!(d[4], None);
    }

    #[test]
    fn ball_is_sorted_by_distance() {
        let g = path_graph(10);
        let b = ball(&g, 5, 2);
        assert_eq!(b, vec![(5, 0), (4, 1), (6, 1), (3, 2), (7, 2)]);
    }

    #[test]
    fn multi_source_ties_break_to_smaller_source() {
        // 0 - 1 - 2 - 3 - 4, sources {0, 4}: vertex 2 equidistant.
        let g = path_graph(5);
        let f = multi_source_bfs(&g, &[4, 0], INF);
        assert_eq!(f.root[2], Some(0));
        assert_eq!(f.dist[2], 2);
        assert_eq!(f.root[3], Some(4));
    }

    #[test]
    fn forest_paths_walk_to_root() {
        let g = path_graph(6);
        let f = multi_source_bfs(&g, &[0], INF);
        assert_eq!(f.path_to_root(3).unwrap(), vec![3, 2, 1, 0]);
        assert_eq!(f.depth(3), Some(3));
    }

    #[test]
    fn forest_respects_depth_bound() {
        let g = path_graph(10);
        let f = multi_source_bfs(&g, &[0], 2);
        assert_eq!(f.root[2], Some(0));
        assert_eq!(f.root[3], None);
        assert_eq!(f.path_to_root(3), None);
    }

    #[test]
    fn eccentricity_of_path_end() {
        let g = path_graph(7);
        assert_eq!(eccentricity(&g, 0), 6);
        assert_eq!(eccentricity(&g, 3), 3);
    }

    #[test]
    fn double_sweep_exact_on_path() {
        let g = path_graph(9);
        assert_eq!(double_sweep_diameter(&g, 4), 8);
    }

    #[test]
    fn multi_source_on_grid_covers_everything() {
        let g = generators::grid2d(8, 8).unwrap();
        let f = multi_source_bfs(&g, &[0, 63], INF);
        assert!(f.root.iter().all(|r| r.is_some()));
    }
}
