//! Deterministic parallel execution substrate for the per-center
//! exploration phases.
//!
//! The dominant cost of every SAI construction is phase 0: one bounded BFS
//! per cluster center, each a pure function of `G` — embarrassingly
//! parallel. This module provides a work-stealing-free fan-out built only
//! on [`std::thread::scope`] (the repository is dependency-free):
//!
//! * [`shard_ranges`] splits an index range into contiguous, disjoint
//!   shards that cover every index exactly once;
//! * [`map_ranges`] / [`map_indexed`] fan a pure map over those shards and
//!   merge per-shard results **in shard order**, so the merged vector is
//!   identical for every thread count — including 1;
//! * [`balls`] runs one bounded BFS per source through the fan-out,
//!   returning each ball sorted by vertex id (the iteration order the
//!   sequential constructions use when scanning a dense distance array).
//!
//! Determinism contract: for any `threads >= 1`, every function here
//! returns *bit-identical* output to its `threads == 1` run. The parity
//! suite (`tests/parallel_determinism.rs` at the workspace root) holds the
//! constructions built on top of this module to the same standard.

use crate::graph::VertexId;
use crate::partition::ShardView;
use crate::{Dist, INF};
use std::collections::VecDeque;
use std::ops::Range;

/// Splits `0..len` into at most `shards` contiguous ranges of near-equal
/// length, covering every index exactly once. The first `len % shards`
/// ranges are one element longer; empty ranges are never returned.
pub fn shard_ranges(len: usize, shards: usize) -> Vec<Range<usize>> {
    let shards = shards.max(1).min(len.max(1));
    if len == 0 {
        return Vec::new();
    }
    let base = len / shards;
    let rem = len % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let size = base + usize::from(s < rem);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

/// Applies `f` to each shard of `0..len` and concatenates the per-shard
/// vectors in shard order.
///
/// With `threads <= 1` (or a single shard) this is exactly `f(0..len)` on
/// the calling thread — no spawn, no overhead. With more, each shard runs
/// on its own scoped thread; because shards are contiguous and results are
/// merged in shard order, the output is independent of the thread count.
///
/// `f` sees the *global* index range of its shard, so workers can address
/// shared read-only slices directly and allocate per-shard scratch once.
///
/// # Panics
///
/// Propagates a panic from any worker thread.
pub fn map_ranges<T, F>(threads: usize, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> Vec<T> + Sync,
{
    let shards = shard_ranges(len, threads);
    if shards.len() <= 1 {
        return f(0..len);
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|r| scope.spawn(move || f(r)))
            .collect();
        let mut out = Vec::with_capacity(len);
        for h in handles {
            out.extend(h.join().expect("parallel shard worker panicked"));
        }
        out
    })
}

/// Index-wise parallel map: `out[i] == f(i)` for all `i in 0..len`,
/// deterministically, for any `threads >= 1`.
pub fn map_indexed<T, F>(threads: usize, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    map_ranges(threads, len, |r| r.map(&f).collect())
}

/// Reusable bounded-BFS scratch: one dense distance array, reset sparsely
/// (only the vertices the last search reached), so a shard of many
/// small-ball searches pays the `O(n)` initialization once.
#[derive(Debug, Clone)]
pub struct BallScratch {
    dist: Vec<Dist>,
    queue: VecDeque<VertexId>,
}

impl BallScratch {
    /// Scratch for searches over an `n`-vertex graph.
    pub fn new(n: usize) -> Self {
        BallScratch {
            dist: vec![INF; n],
            queue: VecDeque::new(),
        }
    }

    /// Bounded BFS from `source` to depth `depth`, returning the reached
    /// vertices (including `source` at distance 0) **sorted by vertex id**
    /// — the order a scan of a dense distance array visits them, which is
    /// what keeps the constructions' edge-emission order identical to
    /// their historical dense-array loops.
    ///
    /// Generic over [`ShardView`], so the same search runs over the shared
    /// adjacency array or over per-worker CSR shards (identical output —
    /// the views are pointwise identical by contract).
    pub fn ball_sorted<V: ShardView + ?Sized>(
        &mut self,
        g: &V,
        source: VertexId,
        depth: Dist,
    ) -> Vec<(VertexId, Dist)> {
        let mut reached: Vec<(VertexId, Dist)> = Vec::new();
        self.dist[source] = 0;
        self.queue.push_back(source);
        reached.push((source, 0));
        while let Some(u) = self.queue.pop_front() {
            let du = self.dist[u];
            if du == depth {
                continue;
            }
            for &v in g.neighbors(u) {
                if self.dist[v] == INF {
                    self.dist[v] = du + 1;
                    reached.push((v, du + 1));
                    self.queue.push_back(v);
                }
            }
        }
        for &(v, _) in &reached {
            self.dist[v] = INF;
        }
        self.queue.clear();
        reached.sort_unstable_by_key(|&(v, _)| v);
        reached
    }
}

/// One bounded BFS per source, fanned out over `threads` shards; `out[i]`
/// is the ball of `sources[i]` sorted by vertex id (see
/// [`BallScratch::ball_sorted`]). Identical output for every thread count
/// and for every [`ShardView`] layout (shared array or CSR shards).
pub fn balls<V: ShardView + ?Sized>(
    g: &V,
    sources: &[VertexId],
    depth: Dist,
    threads: usize,
) -> Vec<Vec<(VertexId, Dist)>> {
    map_ranges(threads, sources.len(), |range| {
        let mut scratch = BallScratch::new(g.num_vertices());
        range
            .map(|i| scratch.ball_sorted(g, sources[i], depth))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs;
    use crate::generators;

    #[test]
    fn shard_ranges_cover_every_index_exactly_once() {
        for len in [0usize, 1, 2, 7, 64, 1000, 1001] {
            for shards in [1usize, 2, 3, 4, 8, 13, 2000] {
                let ranges = shard_ranges(len, shards);
                let mut seen = vec![0usize; len];
                let mut prev_end = 0;
                for r in &ranges {
                    assert!(!r.is_empty(), "len={len} shards={shards}: empty shard");
                    assert_eq!(r.start, prev_end, "shards must be contiguous");
                    prev_end = r.end;
                    for i in r.clone() {
                        seen[i] += 1;
                    }
                }
                assert!(
                    seen.iter().all(|&c| c == 1),
                    "len={len} shards={shards}: index covered != once"
                );
                assert!(ranges.len() <= shards.max(1));
            }
        }
    }

    #[test]
    fn map_indexed_merge_order_is_stable_across_thread_counts() {
        let reference: Vec<usize> = (0..997).map(|i| i * i % 101).collect();
        for threads in [1usize, 2, 3, 4, 8, 16] {
            let got = map_indexed(threads, 997, |i| i * i % 101);
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn map_ranges_sees_global_indices() {
        let data: Vec<u64> = (0..500).map(|i| i as u64 * 3).collect();
        for threads in [1usize, 4, 7] {
            let got = map_ranges(threads, data.len(), |r| {
                r.map(|i| data[i] + 1).collect::<Vec<_>>()
            });
            let want: Vec<u64> = data.iter().map(|&x| x + 1).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn ball_sorted_matches_dense_bounded_bfs() {
        let g = generators::gnp_connected(200, 0.04, 11).unwrap();
        let mut scratch = BallScratch::new(200);
        for source in [0usize, 7, 199] {
            for depth in [0u64, 1, 2, 5, INF] {
                let sparse = scratch.ball_sorted(&g, source, depth);
                let dense: Vec<(VertexId, Dist)> = bfs::bfs_bounded(&g, source, depth)
                    .iter()
                    .enumerate()
                    .filter_map(|(v, d)| d.map(|d| (v, d)))
                    .collect();
                assert_eq!(sparse, dense, "source={source} depth={depth}");
            }
        }
    }

    #[test]
    fn scratch_reuse_leaves_no_residue() {
        let g = generators::grid2d(12, 12).unwrap();
        let mut scratch = BallScratch::new(144);
        let first = scratch.ball_sorted(&g, 0, 4);
        let _middle = scratch.ball_sorted(&g, 77, 6);
        let again = scratch.ball_sorted(&g, 0, 4);
        assert_eq!(first, again);
    }

    #[test]
    fn balls_fan_out_agrees_with_sequential_loop_on_seeded_graphs() {
        for seed in [1u64, 5, 9] {
            let g = generators::gnp_connected(150, 0.05, seed).unwrap();
            let sources: Vec<VertexId> = (0..g.num_vertices()).collect();
            let sequential = balls(&g, &sources, 3, 1);
            for threads in [2usize, 4, 8] {
                let parallel = balls(&g, &sources, 3, threads);
                assert_eq!(sequential, parallel, "seed={seed} threads={threads}");
            }
            // And the sequential loop itself matches the plain dense BFS.
            for (&s, ball) in sources.iter().zip(&sequential) {
                let dense: Vec<(VertexId, Dist)> = bfs::bfs_bounded(&g, s, 3)
                    .iter()
                    .enumerate()
                    .filter_map(|(v, d)| d.map(|d| (v, d)))
                    .collect();
                assert_eq!(*ball, dense, "seed={seed} source={s}");
            }
        }
    }

    #[test]
    fn balls_over_csr_shards_match_the_shared_array() {
        use crate::partition::{PartitionPolicy, ShardedCsr};
        let g = generators::gnp_connected(160, 0.05, 7).unwrap();
        let sources: Vec<VertexId> = (0..g.num_vertices()).step_by(3).collect();
        let shared = balls(&g, &sources, 4, 2);
        for policy in PartitionPolicy::all() {
            for shards in [1usize, 2, 4, 7] {
                let layout = ShardedCsr::build(&g, policy, shards);
                assert_eq!(
                    balls(&layout, &sources, 4, 2),
                    shared,
                    "policy={policy} shards={shards}"
                );
            }
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        let g = generators::path(4).unwrap();
        assert!(balls(&g, &[], 3, 4).is_empty());
        assert!(map_indexed(4, 0, |i| i).is_empty());
        assert!(shard_ranges(0, 4).is_empty());
    }
}
