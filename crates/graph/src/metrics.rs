//! Workload-characterization metrics: the numbers experiment tables use to
//! describe graph instances (degree profile, diameter estimate, clustering),
//! plus the canonical [`fingerprint`] construction caches key on.

use crate::bfs::double_sweep_diameter;
use crate::graph::Graph;
use crate::weighted::WeightedGraph;
use crate::Dist;

/// FNV-1a offset basis / prime, shared by every fingerprint in the
/// workspace so digests computed in different crates agree byte-for-byte.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a folding over `u64` words — the workspace's one
/// hashing primitive for cross-process digests (the std hashers make no
/// cross-version stability promise; this does).
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// Fresh digest at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Folds one word into the digest.
    pub fn write_u64(&mut self, x: u64) {
        self.0 ^= x;
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    /// Folds raw bytes into the digest (used by the snapshot codec's
    /// whole-file checksum).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// Canonical fingerprint of an input graph: FNV-1a over `n`, `m`, and the
/// edge list in its one defined order (`u < v`, ascending — the CSR
/// guarantees it). Two graphs fingerprint equal iff they are the same
/// labeled graph, regardless of the order edges were inserted through
/// [`GraphBuilder`](crate::graph::GraphBuilder), so the digest is a safe
/// cross-process cache key for `(graph, algo, config)` construction caches.
/// Storage-generic: a file-backed [`MappedGraph`](crate::MappedGraph)
/// fingerprints identically to its heap materialization.
///
/// # Example
///
/// ```
/// use usnae_graph::metrics::fingerprint;
/// use usnae_graph::Graph;
///
/// # fn main() -> Result<(), usnae_graph::GraphError> {
/// let a = Graph::from_edges(3, &[(0, 1), (1, 2)])?;
/// let b = Graph::from_edges(3, &[(1, 2), (1, 0)])?; // different insert order
/// assert_eq!(fingerprint(&a), fingerprint(&b));
/// # Ok(())
/// # }
/// ```
pub fn fingerprint<S: crate::storage::AdjStorage>(g: &crate::graph::GraphCore<S>) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(g.num_vertices() as u64);
    h.write_u64(g.num_edges() as u64);
    for (u, v) in g.edges() {
        h.write_u64(u as u64);
        h.write_u64(v as u64);
    }
    h.finish()
}

/// Canonical fingerprint of a weighted graph (emulator/spanner output),
/// over the sorted `(u, v, w)` edge set. Insertion-order independent, so it
/// identifies the *structure* rather than the build that produced it.
pub fn weighted_fingerprint(h: &WeightedGraph) -> u64 {
    let mut edges: Vec<_> = h.edges().map(|e| (e.u, e.v, e.weight)).collect();
    edges.sort_unstable();
    let mut d = Fnv64::new();
    d.write_u64(h.num_vertices() as u64);
    d.write_u64(edges.len() as u64);
    for (u, v, w) in edges {
        d.write_u64(u as u64);
        d.write_u64(v as u64);
        d.write_u64(w);
    }
    d.finish()
}

/// Summary statistics of a graph instance.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSummary {
    /// Number of vertices.
    pub n: usize,
    /// Number of undirected edges.
    pub m: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Average degree `2m/n`.
    pub avg_degree: f64,
    /// Double-sweep lower bound on the diameter (exact on trees).
    pub diameter_estimate: Dist,
    /// Global clustering coefficient (3·triangles / open wedges).
    pub clustering: f64,
}

/// Computes all summary statistics. `O(n + m·d_max)` for the triangle count.
///
/// # Example
///
/// ```
/// use usnae_graph::metrics::summarize;
/// use usnae_graph::generators;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::complete_graph(5)?;
/// let s = summarize(&g);
/// assert_eq!(s.n, 5);
/// assert_eq!(s.m, 10);
/// assert_eq!(s.clustering, 1.0); // cliques are fully clustered
/// # Ok(())
/// # }
/// ```
pub fn summarize(g: &Graph) -> GraphSummary {
    let n = g.num_vertices();
    let degrees: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
    let (mut triangles, mut wedges) = (0u64, 0u64);
    for v in g.vertices() {
        let nbrs = g.neighbors(v);
        let d = nbrs.len() as u64;
        wedges += d.saturating_sub(1) * d / 2;
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in nbrs.iter().skip(i + 1) {
                if g.has_edge(a, b) {
                    triangles += 1;
                }
            }
        }
    }
    // Each triangle is counted once per corner (3 times total).
    let clustering = if wedges == 0 {
        0.0
    } else {
        triangles as f64 / wedges as f64
    };
    GraphSummary {
        n,
        m: g.num_edges(),
        min_degree: degrees.iter().copied().min().unwrap_or(0),
        max_degree: degrees.iter().copied().max().unwrap_or(0),
        avg_degree: g.average_degree(),
        diameter_estimate: if n == 0 {
            0
        } else {
            double_sweep_diameter(g, 0)
        },
        clustering,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_summary() {
        let g = generators::path(10).unwrap();
        let s = summarize(&g);
        assert_eq!(s.n, 10);
        assert_eq!(s.m, 9);
        assert_eq!(s.min_degree, 1);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.diameter_estimate, 9);
        assert_eq!(s.clustering, 0.0);
    }

    #[test]
    fn clique_fully_clustered() {
        let g = generators::complete_graph(6).unwrap();
        let s = summarize(&g);
        assert_eq!(s.clustering, 1.0);
        assert_eq!(s.diameter_estimate, 1);
    }

    #[test]
    fn star_has_no_triangles_many_wedges() {
        let g = generators::star(10).unwrap();
        let s = summarize(&g);
        assert_eq!(s.clustering, 0.0);
        assert_eq!(s.max_degree, 9);
        assert_eq!(s.diameter_estimate, 2);
    }

    #[test]
    fn caveman_highly_clustered() {
        let g = generators::caveman(5, 6).unwrap();
        let s = summarize(&g);
        assert!(s.clustering > 0.5, "clustering = {}", s.clustering);
    }

    #[test]
    fn empty_graph_is_degenerate() {
        let s = summarize(&crate::Graph::empty(3));
        assert_eq!(s.m, 0);
        assert_eq!(s.clustering, 0.0);
        assert_eq!(s.diameter_estimate, 0);
    }

    #[test]
    fn fingerprint_is_insertion_order_independent() {
        let a = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4), (2, 3)]).unwrap();
        let b = Graph::from_edges(5, &[(2, 3), (4, 3), (2, 1), (1, 0)]).unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn fingerprint_separates_structure_and_size() {
        let path = generators::path(10).unwrap();
        let cycle =
            Graph::from_edges(10, &(0..10).map(|i| (i, (i + 1) % 10)).collect::<Vec<_>>()).unwrap();
        assert_ne!(fingerprint(&path), fingerprint(&cycle));
        // Same edges, different vertex count (trailing isolated vertex).
        let padded = Graph::from_edges(11, &path.edges().collect::<Vec<_>>()).unwrap();
        assert_ne!(fingerprint(&path), fingerprint(&padded));
        // Stable across clones (and, by construction, across processes).
        assert_eq!(fingerprint(&path), fingerprint(&path.clone()));
    }

    #[test]
    fn weighted_fingerprint_ignores_insertion_order_keeps_weights() {
        let mut a = WeightedGraph::new(4);
        a.add_edge(0, 1, 5);
        a.add_edge(2, 3, 7);
        let mut b = WeightedGraph::new(4);
        b.add_edge(3, 2, 7);
        b.add_edge(1, 0, 5);
        assert_eq!(weighted_fingerprint(&a), weighted_fingerprint(&b));
        let mut c = WeightedGraph::new(4);
        c.add_edge(0, 1, 5);
        c.add_edge(2, 3, 8); // different weight
        assert_ne!(weighted_fingerprint(&a), weighted_fingerprint(&c));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // FNV-1a over the byte string "a" (0x61):
        // (offset ^ 0x61) * prime == 0xaf63dc4c8601ec8c.
        let mut h = Fnv64::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63dc4c8601ec8c);
        // Empty input is the offset basis.
        assert_eq!(Fnv64::new().finish(), 0xcbf29ce484222325);
    }
}
