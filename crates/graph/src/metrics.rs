//! Workload-characterization metrics: the numbers experiment tables use to
//! describe graph instances (degree profile, diameter estimate, clustering).

use crate::bfs::double_sweep_diameter;
use crate::graph::Graph;
use crate::Dist;

/// Summary statistics of a graph instance.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSummary {
    /// Number of vertices.
    pub n: usize,
    /// Number of undirected edges.
    pub m: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Average degree `2m/n`.
    pub avg_degree: f64,
    /// Double-sweep lower bound on the diameter (exact on trees).
    pub diameter_estimate: Dist,
    /// Global clustering coefficient (3·triangles / open wedges).
    pub clustering: f64,
}

/// Computes all summary statistics. `O(n + m·d_max)` for the triangle count.
///
/// # Example
///
/// ```
/// use usnae_graph::metrics::summarize;
/// use usnae_graph::generators;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::complete_graph(5)?;
/// let s = summarize(&g);
/// assert_eq!(s.n, 5);
/// assert_eq!(s.m, 10);
/// assert_eq!(s.clustering, 1.0); // cliques are fully clustered
/// # Ok(())
/// # }
/// ```
pub fn summarize(g: &Graph) -> GraphSummary {
    let n = g.num_vertices();
    let degrees: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
    let (mut triangles, mut wedges) = (0u64, 0u64);
    for v in g.vertices() {
        let nbrs = g.neighbors(v);
        let d = nbrs.len() as u64;
        wedges += d.saturating_sub(1) * d / 2;
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in nbrs.iter().skip(i + 1) {
                if g.has_edge(a, b) {
                    triangles += 1;
                }
            }
        }
    }
    // Each triangle is counted once per corner (3 times total).
    let clustering = if wedges == 0 {
        0.0
    } else {
        triangles as f64 / wedges as f64
    };
    GraphSummary {
        n,
        m: g.num_edges(),
        min_degree: degrees.iter().copied().min().unwrap_or(0),
        max_degree: degrees.iter().copied().max().unwrap_or(0),
        avg_degree: g.average_degree(),
        diameter_estimate: if n == 0 {
            0
        } else {
            double_sweep_diameter(g, 0)
        },
        clustering,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_summary() {
        let g = generators::path(10).unwrap();
        let s = summarize(&g);
        assert_eq!(s.n, 10);
        assert_eq!(s.m, 9);
        assert_eq!(s.min_degree, 1);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.diameter_estimate, 9);
        assert_eq!(s.clustering, 0.0);
    }

    #[test]
    fn clique_fully_clustered() {
        let g = generators::complete_graph(6).unwrap();
        let s = summarize(&g);
        assert_eq!(s.clustering, 1.0);
        assert_eq!(s.diameter_estimate, 1);
    }

    #[test]
    fn star_has_no_triangles_many_wedges() {
        let g = generators::star(10).unwrap();
        let s = summarize(&g);
        assert_eq!(s.clustering, 0.0);
        assert_eq!(s.max_degree, 9);
        assert_eq!(s.diameter_estimate, 2);
    }

    #[test]
    fn caveman_highly_clustered() {
        let g = generators::caveman(5, 6).unwrap();
        let s = summarize(&g);
        assert!(s.clustering > 0.5, "clustering = {}", s.clustering);
    }

    #[test]
    fn empty_graph_is_degenerate() {
        let s = summarize(&crate::Graph::empty(3));
        assert_eq!(s.m, 0);
        assert_eq!(s.clustering, 0.0);
        assert_eq!(s.diameter_estimate, 0);
    }
}
