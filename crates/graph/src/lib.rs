//! Graph substrate for the ultra-sparse near-additive emulator reproduction.
//!
//! This crate provides everything the emulator/spanner constructions of
//! Elkin & Matar (PODC 2021) need from a graph library, built from scratch:
//!
//! * [`Graph`] — a compact CSR (compressed sparse row) representation of an
//!   *unweighted undirected* graph, the paper's input object `G = (V, E)`.
//! * [`WeightedGraph`] — an adjacency-list *weighted* graph used for the
//!   emulator `H` (emulator edges carry weights `d_G(r_C, r_C')`).
//! * [`generators`] — synthetic workload families (the paper has no datasets,
//!   so experiments run on Erdős–Rényi, random-regular, grids, stars,
//!   Barabási–Albert, Watts–Strogatz, dumbbells, …).
//! * [`bfs`] / [`dijkstra`] — single/multi-source, optionally depth-bounded
//!   searches used both inside the constructions and for verification.
//! * [`distance`] — exact distance ground truth (repeated BFS) and random
//!   pair sampling for stretch audits.
//! * [`connectivity`] / [`union_find`] — components and DSU plumbing.
//! * [`par`] — deterministic scoped-thread fan-out for the per-center
//!   bounded-BFS explorations (zero external deps, byte-identical output
//!   for every thread count).
//! * [`partition`] — partitioned CSR graph shards: contiguous per-worker
//!   vertex ranges with local CSR arrays and cut-edge frontier lists,
//!   behind the [`partition::ShardView`] read seam (sharded reads are
//!   pointwise identical to the shared array, so builds over either
//!   layout are byte-identical).
//! * [`storage`] — the [`storage::AdjStorage`] seam under every CSR
//!   array: heap `Vec`s by default ([`Graph`]), or a mapped CSR file
//!   ([`MappedGraph`], mmap with a portable paged fallback) so
//!   million-vertex graphs are read without heap materialization; the
//!   streaming loader in [`io`] writes those files directly from an
//!   edge list, two-passing the input.
//!
//! # Example
//!
//! ```
//! use usnae_graph::{Graph, bfs};
//!
//! # fn main() -> Result<(), usnae_graph::GraphError> {
//! let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])?;
//! let dist = bfs::bfs(&g, 0);
//! assert_eq!(dist[3], Some(3));
//! # Ok(())
//! # }
//! ```

pub mod bfs;
pub mod connectivity;
pub mod dijkstra;
pub mod distance;
pub mod error;
pub mod generators;
pub mod graph;
pub mod io;
pub mod metrics;
pub mod par;
pub mod partition;
pub mod rng;
pub mod storage;
pub mod union_find;
pub mod weighted;

pub use error::GraphError;
pub use graph::{Graph, GraphBuilder, GraphCore, MappedGraph, VertexId};
pub use storage::{AdjStorage, ByteMap, HeapAdj, MappedAdj, StorageError};
pub use weighted::{WeightedEdge, WeightedGraph};

/// Distance type used throughout: hop distances in `G` and weighted distances
/// in emulators are both integral because `G` is unweighted and emulator edge
/// weights are exact `G`-distances.
pub type Dist = u64;

/// A conventional "infinite" distance for dense distance arrays.
pub const INF: Dist = Dist::MAX;
