//! Exact distance ground truth and pair sampling for stretch audits.
//!
//! The stretch guarantee `d_H ≤ (1+ε)·d_G + β` is verified empirically by
//! comparing emulator distances against exact BFS distances on sampled (or
//! exhaustive) vertex pairs.

use crate::bfs::bfs;
use crate::graph::{Graph, VertexId};
use crate::rng::Rng;
use crate::Dist;

/// All-pairs shortest paths by repeated BFS. O(n·(n + m)); intended for
/// verification on small graphs only.
#[derive(Debug, Clone)]
pub struct Apsp {
    dist: Vec<Vec<Option<Dist>>>,
}

impl Apsp {
    /// Computes exact distances from every vertex.
    pub fn new(g: &Graph) -> Self {
        Apsp {
            dist: g.vertices().map(|v| bfs(g, v)).collect(),
        }
    }

    /// Exact distance between `u` and `v` (`None` if disconnected).
    pub fn distance(&self, u: VertexId, v: VertexId) -> Option<Dist> {
        self.dist[u][v]
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.dist.len()
    }

    /// Exact diameter over connected pairs (0 for edgeless graphs).
    pub fn diameter(&self) -> Dist {
        self.dist
            .iter()
            .flatten()
            .flatten()
            .copied()
            .max()
            .unwrap_or(0)
    }
}

/// Samples up to `count` distinct unordered connected pairs `(u, v)`, `u != v`.
///
/// Falls back to exhaustive enumeration when the graph is small enough that
/// exhaustive checking is cheaper than sampling.
pub fn sample_pairs(g: &Graph, count: usize, seed: u64) -> Vec<(VertexId, VertexId)> {
    let n = g.num_vertices();
    if n < 2 {
        return Vec::new();
    }
    let total = n * (n - 1) / 2;
    if total <= count {
        let mut all = Vec::with_capacity(total);
        for u in 0..n {
            for v in (u + 1)..n {
                all.push((u, v));
            }
        }
        return all;
    }
    let mut rng = Rng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(count);
    let mut pairs = Vec::with_capacity(count);
    while pairs.len() < count {
        let u = rng.gen_range(0, n);
        let v = rng.gen_range(0, n);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            pairs.push(key);
        }
    }
    pairs
}

/// Exact distances for a batch of pairs, grouping by source so each source
/// needs only one BFS.
pub fn exact_pair_distances(g: &Graph, pairs: &[(VertexId, VertexId)]) -> Vec<Option<Dist>> {
    use std::collections::HashMap;
    let mut by_source: HashMap<VertexId, Vec<usize>> = HashMap::new();
    for (idx, &(u, _)) in pairs.iter().enumerate() {
        by_source.entry(u).or_default().push(idx);
    }
    let mut out = vec![None; pairs.len()];
    for (source, indices) in by_source {
        let dist = bfs(g, source);
        for idx in indices {
            out[idx] = dist[pairs[idx].1];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn apsp_matches_bfs_on_grid() {
        let g = generators::grid2d(5, 5).unwrap();
        let apsp = Apsp::new(&g);
        assert_eq!(apsp.num_vertices(), 25);
        assert_eq!(apsp.distance(0, 24), Some(8));
        assert_eq!(apsp.diameter(), 8);
    }

    #[test]
    fn apsp_disconnected_pairs_none() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let apsp = Apsp::new(&g);
        assert_eq!(apsp.distance(0, 3), None);
        assert_eq!(apsp.distance(2, 3), Some(1));
    }

    #[test]
    fn sample_pairs_distinct_and_in_range() {
        let g = generators::gnp(100, 0.1, 1).unwrap();
        let pairs = sample_pairs(&g, 50, 7);
        assert_eq!(pairs.len(), 50);
        let set: std::collections::HashSet<_> = pairs.iter().collect();
        assert_eq!(set.len(), 50);
        assert!(pairs.iter().all(|&(u, v)| u < v && v < 100));
    }

    #[test]
    fn sample_pairs_exhaustive_on_small_graphs() {
        let g = generators::path(5).unwrap();
        let pairs = sample_pairs(&g, 100, 0);
        assert_eq!(pairs.len(), 10); // C(5,2)
    }

    #[test]
    fn sample_pairs_trivial_graphs() {
        assert!(sample_pairs(&Graph::empty(1), 10, 0).is_empty());
        assert!(sample_pairs(&Graph::empty(0), 10, 0).is_empty());
    }

    #[test]
    fn exact_pair_distances_match_apsp() {
        let g = generators::gnp_connected(60, 0.08, 5).unwrap();
        let apsp = Apsp::new(&g);
        let pairs = sample_pairs(&g, 40, 3);
        let dists = exact_pair_distances(&g, &pairs);
        for (i, &(u, v)) in pairs.iter().enumerate() {
            assert_eq!(dists[i], apsp.distance(u, v));
        }
    }
}
