//! Connected components and connectivity patching.
//!
//! Emulator stretch guarantees quantify over pairs in the same component;
//! generators use [`connect_components`] to produce connected workloads so
//! stretch audits cover all sampled pairs.

use crate::graph::{Graph, GraphBuilder, VertexId};
use crate::union_find::UnionFind;

/// Per-vertex component labels (0-based, in order of first appearance) plus
/// the number of components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// `label[v]` is the component of `v`.
    pub label: Vec<usize>,
    /// Number of connected components.
    pub count: usize,
}

impl Components {
    /// Whether `u` and `v` share a component.
    pub fn same(&self, u: VertexId, v: VertexId) -> bool {
        self.label[u] == self.label[v]
    }

    /// Sizes of the components, indexed by label.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &l in &self.label {
            sizes[l] += 1;
        }
        sizes
    }
}

/// Labels connected components via union-find.
pub fn components(g: &Graph) -> Components {
    let n = g.num_vertices();
    let mut uf = UnionFind::new(n);
    for (u, v) in g.edges() {
        uf.union(u, v);
    }
    let mut label = vec![usize::MAX; n];
    let mut count = 0;
    for v in 0..n {
        let r = uf.find(v);
        if label[r] == usize::MAX {
            label[r] = count;
            count += 1;
        }
        label[v] = label[r];
    }
    Components { label, count }
}

/// Whether `g` is connected (vacuously true for `n <= 1`).
pub fn is_connected(g: &Graph) -> bool {
    g.num_vertices() <= 1 || components(g).count == 1
}

/// Returns `g` with one representative of each extra component chained to
/// component 0 by a single new edge, making the graph connected while adding
/// the minimum number of edges.
pub fn connect_components(g: &Graph) -> Graph {
    let comps = components(g);
    if comps.count <= 1 {
        return g.clone();
    }
    let mut representative = vec![None; comps.count];
    for v in g.vertices() {
        if representative[comps.label[v]].is_none() {
            representative[comps.label[v]] = Some(v);
        }
    }
    let mut b = GraphBuilder::new(g.num_vertices());
    for (u, v) in g.edges() {
        b.add_edge(u, v).expect("existing edges are valid");
    }
    let anchor = representative[0].expect("component 0 is nonempty");
    for rep in representative.into_iter().skip(1).flatten() {
        b.add_edge(anchor, rep)
            .expect("representatives are valid vertices");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_component() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let c = components(&g);
        assert_eq!(c.count, 1);
        assert!(c.same(0, 2));
        assert!(is_connected(&g));
    }

    #[test]
    fn two_components_and_isolated_vertex() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)]).unwrap();
        let c = components(&g);
        assert_eq!(c.count, 3);
        assert!(c.same(0, 1));
        assert!(!c.same(1, 2));
        assert_eq!(c.sizes().iter().sum::<usize>(), 5);
    }

    #[test]
    fn connect_components_yields_connected() {
        let g = Graph::from_edges(6, &[(0, 1), (2, 3)]).unwrap();
        let connected = connect_components(&g);
        assert!(is_connected(&connected));
        // 2 original edges + 3 patch edges (components {2,3}, {4}, {5}).
        assert_eq!(connected.num_edges(), 5);
    }

    #[test]
    fn connect_components_noop_when_connected() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(connect_components(&g), g);
    }

    #[test]
    fn empty_and_singleton_graphs_connected() {
        assert!(is_connected(&Graph::empty(0)));
        assert!(is_connected(&Graph::empty(1)));
        assert!(!is_connected(&Graph::empty(2)));
    }
}
