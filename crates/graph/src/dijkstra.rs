//! Dijkstra's algorithm on weighted graphs (binary heap).
//!
//! Used to answer distance queries in the emulator `H` — the verification
//! side of the reproduction: `d_H(u, v)` must sit in
//! `[d_G(u, v), (1+ε)·d_G(u, v) + β]`.

use crate::weighted::WeightedGraph;
use crate::{Dist, INF};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Single-source Dijkstra; `None` marks unreachable vertices.
///
/// # Example
///
/// ```
/// use usnae_graph::{WeightedGraph, dijkstra::dijkstra};
///
/// let mut h = WeightedGraph::new(3);
/// h.add_edge(0, 1, 5);
/// h.add_edge(1, 2, 7);
/// let d = dijkstra(&h, 0);
/// assert_eq!(d[2], Some(12));
/// ```
pub fn dijkstra(g: &WeightedGraph, source: usize) -> Vec<Option<Dist>> {
    dijkstra_bounded(g, source, INF)
}

/// Dijkstra truncated at distance `bound`: vertices farther than `bound`
/// remain `None`. The centralized Algorithm 1 uses this with `bound = δ_i`.
pub fn dijkstra_bounded(g: &WeightedGraph, source: usize, bound: Dist) -> Vec<Option<Dist>> {
    let n = g.num_vertices();
    let mut dist: Vec<Dist> = vec![INF; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source] = 0;
    heap.push(Reverse((0 as Dist, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if done[u] || d > bound {
            continue;
        }
        done[u] = true;
        for (v, w) in g.neighbors(u) {
            let nd = d.saturating_add(w);
            if nd < dist[v] && nd <= bound {
                dist[v] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist.into_iter()
        .zip(done)
        .map(|(d, fin)| if fin || d != INF { Some(d) } else { None })
        .collect()
}

/// Point-to-point distance in a weighted graph.
pub fn distance(g: &WeightedGraph, source: usize, target: usize) -> Option<Dist> {
    // Early-exit Dijkstra: stop as soon as `target` is settled.
    let n = g.num_vertices();
    let mut dist: Vec<Dist> = vec![INF; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source] = 0;
    heap.push(Reverse((0 as Dist, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if done[u] {
            continue;
        }
        if u == target {
            return Some(d);
        }
        done[u] = true;
        for (v, w) in g.neighbors(u) {
            let nd = d.saturating_add(w);
            if nd < dist[v] {
                dist[v] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weighted_path(weights: &[Dist]) -> WeightedGraph {
        let mut g = WeightedGraph::new(weights.len() + 1);
        for (i, &w) in weights.iter().enumerate() {
            g.add_edge(i, i + 1, w);
        }
        g
    }

    #[test]
    fn dijkstra_on_weighted_path() {
        let g = weighted_path(&[2, 3, 4]);
        let d = dijkstra(&g, 0);
        assert_eq!(d, vec![Some(0), Some(2), Some(5), Some(9)]);
    }

    #[test]
    fn dijkstra_prefers_light_detour() {
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 3, 100);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 1);
        g.add_edge(2, 3, 1);
        assert_eq!(dijkstra(&g, 0)[3], Some(3));
    }

    #[test]
    fn unreachable_is_none() {
        let mut g = WeightedGraph::new(3);
        g.add_edge(0, 1, 1);
        assert_eq!(dijkstra(&g, 0)[2], None);
    }

    #[test]
    fn bounded_dijkstra_truncates() {
        let g = weighted_path(&[2, 3, 4]);
        let d = dijkstra_bounded(&g, 0, 5);
        assert_eq!(d[2], Some(5));
        assert_eq!(d[3], None);
    }

    #[test]
    fn bounded_dijkstra_keeps_exact_boundary() {
        let g = weighted_path(&[5]);
        let d = dijkstra_bounded(&g, 0, 5);
        assert_eq!(d[1], Some(5));
    }

    #[test]
    fn point_to_point_matches_full() {
        let mut g = WeightedGraph::new(5);
        g.add_edge(0, 1, 4);
        g.add_edge(1, 4, 6);
        g.add_edge(0, 2, 1);
        g.add_edge(2, 3, 1);
        g.add_edge(3, 4, 1);
        assert_eq!(distance(&g, 0, 4), Some(3));
        assert_eq!(distance(&g, 0, 4), dijkstra(&g, 0)[4]);
    }

    #[test]
    fn point_to_point_unreachable() {
        let g = WeightedGraph::new(2);
        assert_eq!(distance(&g, 0, 1), None);
    }

    #[test]
    fn source_distance_zero() {
        let g = weighted_path(&[1]);
        assert_eq!(distance(&g, 1, 1), Some(0));
    }
}
