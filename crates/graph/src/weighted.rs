//! Weighted undirected multigraph used for emulators `H`.
//!
//! Emulator edges carry integral weights (`d_G` distances). Unlike
//! [`Graph`](crate::Graph), this structure is mutable (the constructions add
//! edges phase by phase) and keeps parallel edges apart only by weight: when
//! the same pair is inserted twice, the smaller weight wins, matching the
//! semantics of shortest-path structures.

use crate::graph::VertexId;
use crate::Dist;
use std::collections::HashMap;

/// A weighted undirected edge of an emulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WeightedEdge {
    /// Smaller endpoint.
    pub u: VertexId,
    /// Larger endpoint.
    pub v: VertexId,
    /// Integral weight (an exact `G`-distance in the paper's constructions).
    pub weight: Dist,
}

impl WeightedEdge {
    /// Canonicalizes endpoints so `u <= v`.
    pub fn new(u: VertexId, v: VertexId, weight: Dist) -> Self {
        if u <= v {
            WeightedEdge { u, v, weight }
        } else {
            WeightedEdge { u: v, v: u, weight }
        }
    }
}

/// Mutable weighted undirected simple graph (adjacency-map based).
///
/// # Example
///
/// ```
/// use usnae_graph::WeightedGraph;
///
/// let mut h = WeightedGraph::new(4);
/// h.add_edge(0, 2, 5);
/// h.add_edge(2, 0, 3); // keeps the lighter parallel edge
/// assert_eq!(h.num_edges(), 1);
/// assert_eq!(h.weight(0, 2), Some(3));
/// ```
#[derive(Debug, Clone, Default)]
pub struct WeightedGraph {
    adjacency: Vec<HashMap<VertexId, Dist>>,
    num_edges: usize,
}

impl WeightedGraph {
    /// Creates an edgeless weighted graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        WeightedGraph {
            adjacency: vec![HashMap::new(); n],
            num_edges: 0,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Inserts the undirected edge `(u, v)` with `weight`.
    ///
    /// If the edge already exists, the minimum of the old and new weight is
    /// kept. Returns `true` if a new edge was created.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` (emulator constructions never produce loops) or if
    /// an endpoint is out of range.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, weight: Dist) -> bool {
        assert_ne!(u, v, "emulator edges are never self-loops");
        assert!(
            u < self.num_vertices() && v < self.num_vertices(),
            "endpoint out of range"
        );
        let mut created = false;
        let entry = self.adjacency[u].entry(v).or_insert_with(|| {
            created = true;
            weight
        });
        if weight < *entry {
            *entry = weight;
        }
        let w = *entry;
        self.adjacency[v].insert(u, w);
        if created {
            self.num_edges += 1;
        }
        created
    }

    /// Weight of edge `(u, v)` if present.
    pub fn weight(&self, u: VertexId, v: VertexId) -> Option<Dist> {
        self.adjacency.get(u)?.get(&v).copied()
    }

    /// Whether the edge `(u, v)` exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.weight(u, v).is_some()
    }

    /// Neighbors of `v` with weights, in unspecified order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Dist)> + '_ {
        self.adjacency[v].iter().map(|(&u, &w)| (u, w))
    }

    /// Degree of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.adjacency[v].len()
    }

    /// All edges in canonical `(u <= v)` form, in unspecified order.
    pub fn edges(&self) -> impl Iterator<Item = WeightedEdge> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(u, nbrs)| {
            nbrs.iter()
                .filter(move |(&v, _)| u <= v)
                .map(move |(&v, &w)| WeightedEdge { u, v, weight: w })
        })
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> u128 {
        self.edges().map(|e| e.weight as u128).sum()
    }

    /// Builds a weighted graph that mirrors an unweighted [`Graph`](crate::Graph) with all
    /// weights 1 (used to union `G` into spanner/emulator comparisons).
    pub fn from_unit_graph(g: &crate::Graph) -> Self {
        let mut h = WeightedGraph::new(g.num_vertices());
        for (u, v) in g.edges() {
            h.add_edge(u, v, 1);
        }
        h
    }
}

impl FromIterator<WeightedEdge> for WeightedGraph {
    /// Collects edges; the vertex count is one past the largest endpoint.
    fn from_iter<T: IntoIterator<Item = WeightedEdge>>(iter: T) -> Self {
        let edges: Vec<_> = iter.into_iter().collect();
        let n = edges.iter().map(|e| e.v + 1).max().unwrap_or(0);
        let mut g = WeightedGraph::new(n);
        for e in edges {
            g.add_edge(e.u, e.v, e.weight);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn add_and_query() {
        let mut h = WeightedGraph::new(3);
        assert!(h.add_edge(0, 1, 7));
        assert!(!h.add_edge(1, 0, 9)); // heavier duplicate ignored
        assert_eq!(h.weight(0, 1), Some(7));
        assert_eq!(h.weight(1, 0), Some(7));
        assert_eq!(h.num_edges(), 1);
    }

    #[test]
    fn lighter_duplicate_replaces() {
        let mut h = WeightedGraph::new(3);
        h.add_edge(0, 1, 7);
        h.add_edge(0, 1, 2);
        assert_eq!(h.weight(1, 0), Some(2));
        assert_eq!(h.num_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut h = WeightedGraph::new(3);
        h.add_edge(1, 1, 1);
    }

    #[test]
    fn edges_canonical() {
        let mut h = WeightedGraph::new(4);
        h.add_edge(3, 1, 4);
        h.add_edge(0, 2, 5);
        let mut edges: Vec<_> = h.edges().collect();
        edges.sort_by_key(|e| (e.u, e.v));
        assert_eq!(
            edges,
            vec![WeightedEdge::new(0, 2, 5), WeightedEdge::new(1, 3, 4)]
        );
    }

    #[test]
    fn total_weight_sums() {
        let mut h = WeightedGraph::new(4);
        h.add_edge(0, 1, 10);
        h.add_edge(1, 2, 20);
        assert_eq!(h.total_weight(), 30);
    }

    #[test]
    fn from_unit_graph_mirrors() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let h = WeightedGraph::from_unit_graph(&g);
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.weight(1, 2), Some(1));
    }

    #[test]
    fn from_iterator_collects() {
        let h: WeightedGraph = vec![WeightedEdge::new(0, 5, 2), WeightedEdge::new(1, 2, 3)]
            .into_iter()
            .collect();
        assert_eq!(h.num_vertices(), 6);
        assert_eq!(h.num_edges(), 2);
    }

    #[test]
    fn weighted_edge_canonicalizes() {
        let e = WeightedEdge::new(7, 3, 1);
        assert_eq!((e.u, e.v), (3, 7));
    }
}
