//! Synthetic graph families used as experiment workloads.
//!
//! The paper has no experimental datasets, so the reproduction exercises the
//! constructions on families with deliberately diverse diameter/degree
//! profiles (substitution S3 in `DESIGN.md`):
//!
//! * dense [`gnp`] and [`random_regular`] — superclustering fires early;
//! * [`path`], [`cycle`], [`grid2d`], [`torus2d`] — high diameter, deep phases;
//! * [`star`] — the paper's own §2.1.1 order-dependence example;
//! * [`dumbbell`] — exercises buffer-set (`N_i`) joins;
//! * [`broom`] — stars of paths, the hub-vertex splitting stress case (Fig 7);
//! * [`barabasi_albert`], [`watts_strogatz`], [`caveman`] — heavy-tail /
//!   small-world / clustered profiles;
//! * [`hypercube`], [`circulant`], [`complete_graph`], [`binary_tree`].
//!
//! All randomized generators take an explicit seed for reproducibility.

use crate::error::GraphError;
use crate::graph::{Graph, GraphBuilder};
use crate::rng::Rng;

fn require(ok: bool, reason: &str) -> Result<(), GraphError> {
    if ok {
        Ok(())
    } else {
        Err(GraphError::InvalidParameters {
            reason: reason.to_string(),
        })
    }
}

/// Path graph `P_n`: `0 - 1 - … - (n-1)`.
///
/// # Errors
///
/// `n == 0` is rejected.
pub fn path(n: usize) -> Result<Graph, GraphError> {
    require(n > 0, "path requires n >= 1")?;
    let mut b = GraphBuilder::new(n);
    for i in 0..n.saturating_sub(1) {
        b.add_edge(i, i + 1)?;
    }
    Ok(b.build())
}

/// Cycle graph `C_n`.
///
/// # Errors
///
/// `n < 3` is rejected (smaller cycles are not simple graphs).
pub fn cycle(n: usize) -> Result<Graph, GraphError> {
    require(n >= 3, "cycle requires n >= 3")?;
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(i, (i + 1) % n)?;
    }
    Ok(b.build())
}

/// Complete graph `K_n`.
pub fn complete_graph(n: usize) -> Result<Graph, GraphError> {
    require(n > 0, "complete graph requires n >= 1")?;
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v)?;
        }
    }
    Ok(b.build())
}

/// Star `K_{1,n-1}` centered at vertex 0 — the paper's §2.1.1 example where
/// cluster-processing order decides whether the hub becomes popular.
pub fn star(n: usize) -> Result<Graph, GraphError> {
    require(n >= 2, "star requires n >= 2")?;
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(0, v)?;
    }
    Ok(b.build())
}

/// `rows × cols` grid; vertex `(r, c)` has id `r * cols + c`.
pub fn grid2d(rows: usize, cols: usize) -> Result<Graph, GraphError> {
    require(rows > 0 && cols > 0, "grid requires positive dimensions")?;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                b.add_edge(v, v + 1)?;
            }
            if r + 1 < rows {
                b.add_edge(v, v + cols)?;
            }
        }
    }
    Ok(b.build())
}

/// `rows × cols` torus (grid with wraparound); requires both dims ≥ 3 so the
/// wrap edges are neither loops nor duplicates.
pub fn torus2d(rows: usize, cols: usize) -> Result<Graph, GraphError> {
    require(
        rows >= 3 && cols >= 3,
        "torus requires both dimensions >= 3",
    )?;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            b.add_edge(v, r * cols + (c + 1) % cols)?;
            b.add_edge(v, ((r + 1) % rows) * cols + c)?;
        }
    }
    Ok(b.build())
}

/// `d`-dimensional hypercube on `2^d` vertices.
pub fn hypercube(d: u32) -> Result<Graph, GraphError> {
    require(
        (1..=20).contains(&d),
        "hypercube dimension must be in 1..=20",
    )?;
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if v < u {
                b.add_edge(v, u)?;
            }
        }
    }
    Ok(b.build())
}

/// Complete binary tree with `n` vertices (heap indexing).
pub fn binary_tree(n: usize) -> Result<Graph, GraphError> {
    require(n > 0, "binary tree requires n >= 1")?;
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(v, (v - 1) / 2)?;
    }
    Ok(b.build())
}

/// Circulant graph: vertex `v` adjacent to `v ± s (mod n)` for each stride in
/// `strides`. With well-spread strides these are decent expanders.
pub fn circulant(n: usize, strides: &[usize]) -> Result<Graph, GraphError> {
    require(n >= 3, "circulant requires n >= 3")?;
    require(
        !strides.is_empty(),
        "circulant requires at least one stride",
    )?;
    require(
        strides.iter().all(|&s| s >= 1 && s < n),
        "circulant strides must satisfy 1 <= s < n",
    )?;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for &s in strides {
            let u = (v + s) % n;
            if u != v {
                b.add_edge(v, u)?;
            }
        }
    }
    Ok(b.build())
}

/// Erdős–Rényi `G(n, p)`; every pair independently present with probability `p`.
///
/// # Errors
///
/// Rejects `n == 0` or `p` outside `[0, 1]`.
pub fn gnp(n: usize, p: f64, seed: u64) -> Result<Graph, GraphError> {
    require(n > 0, "gnp requires n >= 1")?;
    require((0.0..=1.0).contains(&p), "gnp requires p in [0, 1]")?;
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    if p >= 1.0 {
        return complete_graph(n);
    }
    if p > 0.0 {
        // Geometric skipping: O(n + |E|) expected instead of O(n^2).
        let log_q = (1.0 - p).ln();
        let mut v: usize = 1;
        let mut w: i64 = -1;
        while v < n {
            let r: f64 = rng.gen_f64_range(f64::EPSILON, 1.0);
            w += 1 + (r.ln() / log_q).floor() as i64;
            while w >= v as i64 && v < n {
                w -= v as i64;
                v += 1;
            }
            if v < n {
                b.add_edge(w as usize, v)?;
            }
        }
    }
    Ok(b.build())
}

/// Connected `G(n, p)`: `gnp` with minimal patch edges added between
/// components so stretch audits can sample any pair.
pub fn gnp_connected(n: usize, p: f64, seed: u64) -> Result<Graph, GraphError> {
    Ok(crate::connectivity::connect_components(&gnp(n, p, seed)?))
}

/// Random `d`-regular graph via the configuration model with restarts.
///
/// # Errors
///
/// Rejects `n * d` odd, `d >= n`, or `d == 0`.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Result<Graph, GraphError> {
    require(d >= 1, "random regular requires d >= 1")?;
    require(d < n, "random regular requires d < n")?;
    require(
        (n * d).is_multiple_of(2),
        "random regular requires n * d even",
    )?;
    let mut rng = Rng::seed_from_u64(seed);
    'attempt: for _ in 0..200 {
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        rng.shuffle(&mut stubs);
        let mut b = GraphBuilder::new(n);
        let mut seen = std::collections::HashSet::new();
        for pair in stubs.chunks(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v || !seen.insert(if u < v { (u, v) } else { (v, u) }) {
                continue 'attempt; // loop or multi-edge: restart
            }
            b.add_edge(u, v)?;
        }
        return Ok(b.build());
    }
    Err(GraphError::InvalidParameters {
        reason: format!("failed to sample a simple {d}-regular graph on {n} vertices"),
    })
}

/// Barabási–Albert preferential attachment: starts from a clique on
/// `m + 1` vertices, then each new vertex attaches to `m` distinct existing
/// vertices chosen proportionally to degree.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Result<Graph, GraphError> {
    require(m >= 1, "barabasi-albert requires m >= 1")?;
    require(n > m, "barabasi-albert requires n > m")?;
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Repeated-endpoint list: sampling uniformly from it is degree-proportional.
    let mut endpoint_pool: Vec<usize> = Vec::new();
    for u in 0..=m {
        for v in (u + 1)..=m {
            b.add_edge(u, v)?;
            endpoint_pool.push(u);
            endpoint_pool.push(v);
        }
    }
    for v in (m + 1)..n {
        let mut targets = std::collections::HashSet::new();
        while targets.len() < m {
            let t = *rng.choose(&endpoint_pool).expect("pool nonempty");
            targets.insert(t);
        }
        for &t in &targets {
            b.add_edge(v, t)?;
            endpoint_pool.push(v);
            endpoint_pool.push(t);
        }
    }
    Ok(b.build())
}

/// Watts–Strogatz small world: ring lattice where each vertex connects to its
/// `k/2` nearest neighbors per side, then each lattice edge is rewired with
/// probability `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Result<Graph, GraphError> {
    require(
        k >= 2 && k.is_multiple_of(2),
        "watts-strogatz requires even k >= 2",
    )?;
    require(n > k, "watts-strogatz requires n > k")?;
    require(
        (0.0..=1.0).contains(&beta),
        "watts-strogatz requires beta in [0, 1]",
    )?;
    let mut rng = Rng::seed_from_u64(seed);
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for v in 0..n {
        for j in 1..=(k / 2) {
            edges.push((v, (v + j) % n));
        }
    }
    let mut present: std::collections::HashSet<(usize, usize)> = edges
        .iter()
        .map(|&(u, v)| if u < v { (u, v) } else { (v, u) })
        .collect();
    let mut b = GraphBuilder::new(n);
    for &(u, v) in &edges {
        let canon = if u < v { (u, v) } else { (v, u) };
        if rng.gen_bool(beta) {
            // Try to rewire (u, v) -> (u, w).
            for _ in 0..32 {
                let w = rng.gen_range(0, n);
                let cand = if u < w { (u, w) } else { (w, u) };
                if w != u && !present.contains(&cand) {
                    present.remove(&canon);
                    present.insert(cand);
                    break;
                }
            }
        }
    }
    for (u, v) in present {
        b.add_edge(u, v)?;
    }
    Ok(b.build())
}

/// Connected caveman graph: `cliques` cliques of `clique_size` vertices each,
/// chained into a ring by single inter-clique edges.
pub fn caveman(cliques: usize, clique_size: usize) -> Result<Graph, GraphError> {
    require(cliques >= 2, "caveman requires >= 2 cliques")?;
    require(clique_size >= 2, "caveman requires clique size >= 2")?;
    let n = cliques * clique_size;
    let mut b = GraphBuilder::new(n);
    for c in 0..cliques {
        let base = c * clique_size;
        for u in 0..clique_size {
            for v in (u + 1)..clique_size {
                b.add_edge(base + u, base + v)?;
            }
        }
        // Link last vertex of this clique to first of the next.
        let next = ((c + 1) % cliques) * clique_size;
        b.add_edge(base + clique_size - 1, next)?;
    }
    Ok(b.build())
}

/// Dumbbell: two cliques of size `clique_size` joined by a path of
/// `bridge_len` intermediate vertices. Exercises buffer-set (`N_i`) joins:
/// bridge clusters sit just outside a supercluster's `δ_i` ball but inside
/// `2·δ_i`.
pub fn dumbbell(clique_size: usize, bridge_len: usize) -> Result<Graph, GraphError> {
    require(clique_size >= 2, "dumbbell requires clique size >= 2")?;
    let n = 2 * clique_size + bridge_len;
    let mut b = GraphBuilder::new(n);
    for base in [0, clique_size + bridge_len] {
        for u in 0..clique_size {
            for v in (u + 1)..clique_size {
                b.add_edge(base + u, base + v)?;
            }
        }
    }
    // Bridge occupies ids clique_size .. clique_size + bridge_len.
    let mut prev = clique_size - 1; // a vertex of the left clique
    for i in 0..bridge_len {
        let v = clique_size + i;
        b.add_edge(prev, v)?;
        prev = v;
    }
    b.add_edge(prev, clique_size + bridge_len)?; // first vertex of right clique
    Ok(b.build())
}

/// Broom / star-of-paths: `arms` paths of length `arm_len` all attached to a
/// hub vertex 0. The hub is the canonical hub-vertex-splitting stress case
/// (Fig 7): messages from all arms funnel through it.
pub fn broom(arms: usize, arm_len: usize) -> Result<Graph, GraphError> {
    require(
        arms >= 1 && arm_len >= 1,
        "broom requires arms >= 1 and arm_len >= 1",
    )?;
    let n = 1 + arms * arm_len;
    let mut b = GraphBuilder::new(n);
    for a in 0..arms {
        let mut prev = 0;
        for i in 0..arm_len {
            let v = 1 + a * arm_len + i;
            b.add_edge(prev, v)?;
            prev = v;
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs;
    use crate::connectivity::is_connected;

    #[test]
    fn path_shape() {
        let g = path(5).unwrap();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert!(is_connected(&g));
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6).unwrap();
        assert_eq!(g.num_edges(), 6);
        assert!(g.vertices().all(|v| g.degree(v) == 2));
        assert!(cycle(2).is_err());
    }

    #[test]
    fn complete_shape() {
        let g = complete_graph(5).unwrap();
        assert_eq!(g.num_edges(), 10);
        assert!(g.vertices().all(|v| g.degree(v) == 4));
    }

    #[test]
    fn star_shape() {
        let g = star(8).unwrap();
        assert_eq!(g.degree(0), 7);
        assert!((1..8).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn grid_distances() {
        let g = grid2d(4, 5).unwrap();
        assert_eq!(g.num_vertices(), 20);
        assert_eq!(g.num_edges(), 4 * 4 + 3 * 5); // horizontal + vertical
        let d = bfs(&g, 0);
        assert_eq!(d[19], Some(3 + 4)); // Manhattan distance to (3,4)
    }

    #[test]
    fn torus_is_regular() {
        let g = torus2d(4, 5).unwrap();
        assert!(g.vertices().all(|v| g.degree(v) == 4));
        assert_eq!(g.num_edges(), 2 * 20);
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4).unwrap();
        assert_eq!(g.num_vertices(), 16);
        assert!(g.vertices().all(|v| g.degree(v) == 4));
        let d = bfs(&g, 0);
        assert_eq!(d[0b1111], Some(4));
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(7).unwrap();
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 1);
        assert!(is_connected(&g));
    }

    #[test]
    fn circulant_expander_connected() {
        let g = circulant(64, &[1, 9, 23]).unwrap();
        assert!(is_connected(&g));
        assert!(g.vertices().all(|v| g.degree(v) <= 6));
    }

    #[test]
    fn circulant_rejects_bad_strides() {
        assert!(circulant(10, &[]).is_err());
        assert!(circulant(10, &[0]).is_err());
        assert!(circulant(10, &[10]).is_err());
    }

    #[test]
    fn gnp_extremes() {
        let g0 = gnp(20, 0.0, 1).unwrap();
        assert_eq!(g0.num_edges(), 0);
        let g1 = gnp(20, 1.0, 1).unwrap();
        assert_eq!(g1.num_edges(), 190);
    }

    #[test]
    fn gnp_density_close_to_expectation() {
        let n = 400;
        let p = 0.05;
        let g = gnp(n, p, 42).unwrap();
        let expected = p * (n * (n - 1) / 2) as f64;
        let actual = g.num_edges() as f64;
        assert!(
            (actual - expected).abs() < 0.25 * expected,
            "{actual} vs {expected}"
        );
    }

    #[test]
    fn gnp_deterministic_per_seed() {
        assert_eq!(gnp(100, 0.1, 7).unwrap(), gnp(100, 0.1, 7).unwrap());
        assert_ne!(gnp(100, 0.1, 7).unwrap(), gnp(100, 0.1, 8).unwrap());
    }

    #[test]
    fn gnp_connected_is_connected() {
        let g = gnp_connected(200, 0.005, 3).unwrap();
        assert!(is_connected(&g));
    }

    #[test]
    fn random_regular_is_regular() {
        let g = random_regular(50, 4, 11).unwrap();
        assert!(g.vertices().all(|v| g.degree(v) == 4));
        assert!(random_regular(5, 3, 0).is_err()); // n*d odd
        assert!(random_regular(4, 4, 0).is_err()); // d >= n
    }

    #[test]
    fn barabasi_albert_edge_count() {
        let (n, m) = (100, 3);
        let g = barabasi_albert(n, m, 5).unwrap();
        let clique_edges = (m + 1) * m / 2;
        assert_eq!(g.num_edges(), clique_edges + (n - m - 1) * m);
        assert!(is_connected(&g));
    }

    #[test]
    fn watts_strogatz_basics() {
        let g = watts_strogatz(60, 4, 0.1, 9).unwrap();
        assert_eq!(g.num_vertices(), 60);
        // Rewiring preserves the edge count.
        assert_eq!(g.num_edges(), 60 * 2);
        assert!(watts_strogatz(10, 3, 0.1, 0).is_err()); // odd k
    }

    #[test]
    fn caveman_shape() {
        let g = caveman(4, 5).unwrap();
        assert_eq!(g.num_vertices(), 20);
        assert!(is_connected(&g));
        assert_eq!(g.num_edges(), 4 * 10 + 4);
    }

    #[test]
    fn dumbbell_shape() {
        let g = dumbbell(4, 3).unwrap();
        assert_eq!(g.num_vertices(), 11);
        assert!(is_connected(&g));
        let d = bfs(&g, 0);
        // Left clique vertex 0 -> bridge (3 hops via v3) -> right clique.
        assert_eq!(d[7], Some(5));
    }

    #[test]
    fn broom_shape() {
        let g = broom(5, 3).unwrap();
        assert_eq!(g.num_vertices(), 16);
        assert_eq!(g.degree(0), 5);
        assert!(is_connected(&g));
        let d = bfs(&g, 0);
        assert_eq!(d[3], Some(3)); // end of first arm
    }
}
