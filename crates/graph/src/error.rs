//! Error types for graph construction and queries.

use std::error::Error;
use std::fmt;

/// Errors produced by graph constructors and generators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge references a vertex id `vertex` outside `0..n`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: usize,
        /// The number of vertices in the graph.
        n: usize,
    },
    /// A self-loop `(v, v)` was supplied; the paper's graphs are simple.
    SelfLoop {
        /// The vertex with the loop.
        vertex: usize,
    },
    /// A generator received parameters it cannot satisfy
    /// (e.g. a `d`-regular graph with `n * d` odd).
    InvalidParameters {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "vertex {vertex} out of range for graph with {n} vertices"
                )
            }
            GraphError::SelfLoop { vertex } => {
                write!(
                    f,
                    "self-loop at vertex {vertex} not allowed in a simple graph"
                )
            }
            GraphError::InvalidParameters { reason } => {
                write!(f, "invalid generator parameters: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::VertexOutOfRange { vertex: 7, n: 4 };
        assert_eq!(
            e.to_string(),
            "vertex 7 out of range for graph with 4 vertices"
        );
        let e = GraphError::SelfLoop { vertex: 3 };
        assert!(e.to_string().contains("self-loop at vertex 3"));
        let e = GraphError::InvalidParameters {
            reason: "n*d must be even".into(),
        };
        assert!(e.to_string().contains("n*d must be even"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
