//! Property-style tests for the graph substrate: the invariants are checked
//! over a deterministic sweep of seeded random instances (the repository is
//! dependency-free, so no proptest — the sweep plays its role).

use usnae_graph::bfs::{bfs, bfs_bounded, multi_source_bfs};
use usnae_graph::connectivity::{components, connect_components, is_connected};
use usnae_graph::dijkstra::{dijkstra, distance};
use usnae_graph::rng::Rng;
use usnae_graph::union_find::UnionFind;
use usnae_graph::{generators, Graph, GraphBuilder, WeightedGraph};

/// A random loop-free graph on `2..60` vertices from the sweep seed.
fn random_graph(seed: u64) -> Graph {
    let mut rng = Rng::seed_from_u64(seed);
    let n = rng.gen_range(2, 60);
    let m = rng.gen_range(0, 200);
    let mut b = GraphBuilder::new(n);
    for _ in 0..m {
        let u = rng.gen_range(0, n);
        let v = rng.gen_range(0, n);
        if u != v {
            b.add_edge(u, v).expect("in-range");
        }
    }
    b.build()
}

const CASES: u64 = 64;

/// CSR construction: symmetric, sorted, loop-free, deduplicated.
#[test]
fn csr_invariants() {
    for seed in 0..CASES {
        let g = random_graph(seed);
        let mut undirected = 0usize;
        for u in g.vertices() {
            let nbrs = g.neighbors(u);
            assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "sorted & deduped");
            for &v in nbrs {
                assert_ne!(u, v, "no loops");
                assert!(g.has_edge(v, u), "symmetry");
                undirected += 1;
            }
        }
        assert_eq!(undirected, 2 * g.num_edges(), "seed {seed}");
        assert_eq!(g.num_directed_edges(), undirected);
    }
}

/// BFS satisfies the triangle property along edges and matches the layered
/// definition of hop distance.
#[test]
fn bfs_is_a_metric_tree() {
    for seed in 0..CASES {
        let g = random_graph(seed);
        let d = bfs(&g, 0);
        for (u, v) in g.edges() {
            match (d[u], d[v]) {
                (Some(a), Some(b)) => {
                    assert!(a.abs_diff(b) <= 1, "seed {seed} edge ({u},{v}): {a} vs {b}");
                }
                (None, None) => {}
                _ => panic!("seed {seed}: edge spans reachable/unreachable"),
            }
        }
        // Every reachable non-source vertex has a predecessor one layer up.
        for v in g.vertices() {
            if let Some(dv) = d[v] {
                if dv > 0 {
                    assert!(g.neighbors(v).iter().any(|&u| d[u] == Some(dv - 1)));
                }
            }
        }
    }
}

/// Dijkstra on a unit-weight mirror equals BFS.
#[test]
fn dijkstra_equals_bfs_on_unit_weights() {
    for seed in 0..CASES {
        let g = random_graph(seed);
        let h = WeightedGraph::from_unit_graph(&g);
        assert_eq!(bfs(&g, 0), dijkstra(&h, 0), "seed {seed}");
    }
}

/// Point-to-point Dijkstra agrees with the full run.
#[test]
fn point_to_point_consistency() {
    for seed in 0..CASES {
        let g = random_graph(seed);
        let h = WeightedGraph::from_unit_graph(&g);
        let t = (seed as usize * 7) % g.num_vertices();
        assert_eq!(distance(&h, 0, t), dijkstra(&h, 0)[t], "seed {seed}");
    }
}

/// Bounded BFS is BFS filtered by depth.
#[test]
fn bounded_bfs_is_filtered_bfs() {
    for seed in 0..CASES {
        let g = random_graph(seed);
        let full = bfs(&g, 0);
        for depth in 0u64..8 {
            let bounded = bfs_bounded(&g, 0, depth);
            for v in g.vertices() {
                let expect = full[v].filter(|&d| d <= depth);
                assert_eq!(bounded[v], expect, "seed {seed} depth {depth} vertex {v}");
            }
        }
    }
}

/// Multi-source BFS returns the minimum over per-source BFS runs.
#[test]
fn multi_source_is_min_over_sources() {
    for seed in 0..CASES {
        let g = random_graph(seed);
        let n = g.num_vertices();
        let sources: Vec<usize> = (0..n).step_by(3).collect();
        let f = multi_source_bfs(&g, &sources, u64::MAX);
        let per: Vec<_> = sources.iter().map(|&s| bfs(&g, s)).collect();
        for v in 0..n {
            let best = per.iter().filter_map(|d| d[v]).min();
            let got = f.root[v].map(|_| f.dist[v]);
            assert_eq!(got, best, "seed {seed} vertex {v}");
        }
    }
}

/// Components agree with BFS reachability and patching connects.
#[test]
fn components_match_reachability() {
    for seed in 0..CASES {
        let g = random_graph(seed);
        let comps = components(&g);
        let d = bfs(&g, 0);
        for v in g.vertices() {
            assert_eq!(comps.same(0, v), d[v].is_some(), "seed {seed} vertex {v}");
        }
        let patched = connect_components(&g);
        assert!(is_connected(&patched));
        assert!(patched.num_edges() < g.num_edges() + comps.count);
    }
}

/// Union-find agrees with graph components when fed the same edges.
#[test]
fn union_find_matches_components() {
    for seed in 0..CASES {
        let g = random_graph(seed);
        let mut uf = UnionFind::new(g.num_vertices());
        for (u, v) in g.edges() {
            uf.union(u, v);
        }
        let comps = components(&g);
        assert_eq!(uf.num_sets(), comps.count, "seed {seed}");
        for (u, v) in g.edges() {
            assert!(uf.connected(u, v));
        }
    }
}

/// Generator contracts: sizes, degrees, determinism.
#[test]
fn generator_contracts() {
    for seed in 0..32u64 {
        let n = 4 + (seed as usize * 3) % 76;
        let gnp = generators::gnp(n, 0.1, seed).unwrap();
        assert_eq!(gnp, generators::gnp(n, 0.1, seed).unwrap());

        let star = generators::star(n).unwrap();
        assert_eq!(star.degree(0), n - 1);

        let cycle = generators::cycle(n.max(3)).unwrap();
        assert!(cycle.vertices().all(|v| cycle.degree(v) == 2));

        if n.is_multiple_of(2) && n > 4 {
            let rr = generators::random_regular(n, 3, seed).unwrap();
            assert!(rr.vertices().all(|v| rr.degree(v) == 3));
        }
    }
}

/// Weighted graph keeps minimum parallel weight and symmetric access.
#[test]
fn weighted_graph_min_weight() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let mut h = WeightedGraph::new(20);
        let mut best = std::collections::HashMap::new();
        for _ in 0..rng.gen_range(1, 100) {
            let u = rng.gen_range(0, 20);
            let v = rng.gen_range(0, 20);
            let w = rng.gen_range(1, 100) as u64;
            if u == v {
                continue;
            }
            h.add_edge(u, v, w);
            let key = if u < v { (u, v) } else { (v, u) };
            let e = best.entry(key).or_insert(w);
            *e = (*e).min(w);
        }
        assert_eq!(h.num_edges(), best.len(), "seed {seed}");
        for ((u, v), w) in best {
            assert_eq!(h.weight(u, v), Some(w));
            assert_eq!(h.weight(v, u), Some(w));
        }
    }
}
