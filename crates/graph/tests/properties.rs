//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use usnae_graph::bfs::{bfs, bfs_bounded, multi_source_bfs};
use usnae_graph::connectivity::{components, connect_components, is_connected};
use usnae_graph::dijkstra::{dijkstra, distance};
use usnae_graph::union_find::UnionFind;
use usnae_graph::{generators, Graph, GraphBuilder, WeightedGraph};

fn arb_edge_list() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..60).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..200);
        (Just(n), edges)
    })
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    arb_edge_list().prop_map(|(n, edges)| {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            if u != v {
                b.add_edge(u, v).expect("in-range");
            }
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR construction: symmetric, sorted, loop-free, deduplicated.
    #[test]
    fn csr_invariants(g in arb_graph()) {
        let mut undirected = 0usize;
        for u in g.vertices() {
            let nbrs = g.neighbors(u);
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "sorted & deduped");
            for &v in nbrs {
                prop_assert_ne!(u, v, "no loops");
                prop_assert!(g.has_edge(v, u), "symmetry");
                undirected += 1;
            }
        }
        prop_assert_eq!(undirected, 2 * g.num_edges());
        prop_assert_eq!(g.num_directed_edges(), undirected);
    }

    /// BFS satisfies the triangle property along edges and matches the
    /// layered definition of hop distance.
    #[test]
    fn bfs_is_a_metric_tree(g in arb_graph()) {
        let d = bfs(&g, 0);
        for (u, v) in g.edges() {
            match (d[u], d[v]) {
                (Some(a), Some(b)) => {
                    prop_assert!(a.abs_diff(b) <= 1, "edge ({u},{v}): {a} vs {b}");
                }
                (None, None) => {}
                _ => prop_assert!(false, "edge spans reachable/unreachable"),
            }
        }
        // Every reachable non-source vertex has a predecessor one layer up.
        for v in g.vertices() {
            if let Some(dv) = d[v] {
                if dv > 0 {
                    prop_assert!(g.neighbors(v).iter().any(|&u| d[u] == Some(dv - 1)));
                }
            }
        }
    }

    /// Dijkstra on a unit-weight mirror equals BFS.
    #[test]
    fn dijkstra_equals_bfs_on_unit_weights(g in arb_graph()) {
        let h = WeightedGraph::from_unit_graph(&g);
        let db = bfs(&g, 0);
        let dd = dijkstra(&h, 0);
        prop_assert_eq!(db, dd);
    }

    /// Point-to-point Dijkstra agrees with the full run.
    #[test]
    fn point_to_point_consistency(g in arb_graph(), t_pick in 0usize..60) {
        let h = WeightedGraph::from_unit_graph(&g);
        let t = t_pick % g.num_vertices();
        prop_assert_eq!(distance(&h, 0, t), dijkstra(&h, 0)[t]);
    }

    /// Bounded BFS is BFS filtered by depth.
    #[test]
    fn bounded_bfs_is_filtered_bfs(g in arb_graph(), depth in 0u64..8) {
        let full = bfs(&g, 0);
        let bounded = bfs_bounded(&g, 0, depth);
        for v in g.vertices() {
            let expect = full[v].filter(|&d| d <= depth);
            prop_assert_eq!(bounded[v], expect, "vertex {}", v);
        }
    }

    /// Multi-source BFS returns the minimum over per-source BFS runs.
    #[test]
    fn multi_source_is_min_over_sources(g in arb_graph()) {
        let n = g.num_vertices();
        let sources: Vec<usize> = (0..n).step_by(3).collect();
        let f = multi_source_bfs(&g, &sources, u64::MAX);
        let per: Vec<_> = sources.iter().map(|&s| bfs(&g, s)).collect();
        for v in 0..n {
            let best = per.iter().filter_map(|d| d[v]).min();
            let got = f.root[v].map(|_| f.dist[v]);
            prop_assert_eq!(got, best, "vertex {}", v);
        }
    }

    /// Components agree with BFS reachability and patching connects.
    #[test]
    fn components_match_reachability(g in arb_graph()) {
        let comps = components(&g);
        let d = bfs(&g, 0);
        for v in g.vertices() {
            prop_assert_eq!(comps.same(0, v), d[v].is_some(), "vertex {}", v);
        }
        let patched = connect_components(&g);
        prop_assert!(is_connected(&patched));
        prop_assert!(patched.num_edges() < g.num_edges() + comps.count);
    }

    /// Union-find agrees with graph components when fed the same edges.
    #[test]
    fn union_find_matches_components(g in arb_graph()) {
        let mut uf = UnionFind::new(g.num_vertices());
        for (u, v) in g.edges() {
            uf.union(u, v);
        }
        let comps = components(&g);
        prop_assert_eq!(uf.num_sets(), comps.count);
        for (u, v) in g.edges() {
            prop_assert!(uf.connected(u, v));
        }
    }

    /// Generator contracts: sizes, degrees, determinism.
    #[test]
    fn generator_contracts(n in 4usize..80, seed in 0u64..100) {
        let gnp = generators::gnp(n, 0.1, seed).unwrap();
        prop_assert_eq!(gnp, generators::gnp(n, 0.1, seed).unwrap());

        let star = generators::star(n).unwrap();
        prop_assert_eq!(star.degree(0), n - 1);

        let cycle = generators::cycle(n.max(3)).unwrap();
        prop_assert!(cycle.vertices().all(|v| cycle.degree(v) == 2));

        if n % 2 == 0 && n > 4 {
            let rr = generators::random_regular(n, 3, seed).unwrap();
            prop_assert!(rr.vertices().all(|v| rr.degree(v) == 3));
        }
    }

    /// Weighted graph keeps minimum parallel weight and symmetric access.
    #[test]
    fn weighted_graph_min_weight(
        edges in proptest::collection::vec((0usize..20, 0usize..20, 1u64..100), 1..100)
    ) {
        let mut h = WeightedGraph::new(20);
        let mut best = std::collections::HashMap::new();
        for (u, v, w) in edges {
            if u == v {
                continue;
            }
            h.add_edge(u, v, w);
            let key = if u < v { (u, v) } else { (v, u) };
            let e = best.entry(key).or_insert(w);
            *e = (*e).min(w);
        }
        prop_assert_eq!(h.num_edges(), best.len());
        for ((u, v), w) in best {
            prop_assert_eq!(h.weight(u, v), Some(w));
            prop_assert_eq!(h.weight(v, u), Some(w));
        }
    }
}
