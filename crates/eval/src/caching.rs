//! Opt-in construction caching for experiment sweeps.
//!
//! The experiment matrices (E7/E8, and the `exp_*` binaries over them)
//! rebuild the same `(graph, algorithm, config)` cells whenever a sweep is
//! re-run with one knob changed. Setting `USNAE_CACHE_DIR` points every
//! sweep build at one fingerprint-keyed construction cache
//! ([`usnae_core::cache`]): the first run pays the builds, every later run
//! reuses the warm, verified entries. Unset, behavior is byte-identical to
//! an uncached sweep — the cache is a pure read-through.

use usnae_core::api::{BuildConfig, BuildError, BuildOutput, Construction};
use usnae_core::cache::{build_cached, CacheConfig};
use usnae_graph::Graph;

/// Name of the environment variable the sweeps consult.
pub const CACHE_ENV: &str = "USNAE_CACHE_DIR";

/// The sweep-level cache configuration, when `USNAE_CACHE_DIR` is set and
/// non-empty.
pub fn env_cache() -> Option<CacheConfig> {
    match std::env::var(CACHE_ENV) {
        Ok(dir) if !dir.is_empty() => Some(CacheConfig::new(dir)),
        _ => None,
    }
}

/// Builds through the sweep cache when one is configured, directly
/// otherwise. Every registry iteration in [`crate::experiments`] goes
/// through here, so a whole experiment matrix warms (and reuses) one
/// cache directory.
///
/// An *unusable cache* (e.g. `USNAE_CACHE_DIR` pointing at an unwritable
/// path) must not poison an experiment table: the sweeps treat a build
/// `Err` as "parameters out of range for this lineage" and skip the row,
/// so a cache-store failure is downgraded here to a warning plus an
/// uncached rebuild instead of being surfaced as that kind of `Err`.
///
/// # Errors
///
/// Whatever the underlying build reports (never `BuildError::Cache`).
pub fn sweep_build(
    construction: &dyn Construction,
    g: &Graph,
    cfg: &BuildConfig,
) -> Result<BuildOutput, BuildError> {
    build_with(construction, g, cfg, env_cache().as_ref())
}

/// [`sweep_build`] with the cache decision made explicit (testable without
/// touching the process environment).
///
/// # Errors
///
/// Whatever the underlying build reports (never `BuildError::Cache`).
pub fn build_with(
    construction: &dyn Construction,
    g: &Graph,
    cfg: &BuildConfig,
    cache: Option<&CacheConfig>,
) -> Result<BuildOutput, BuildError> {
    match cache {
        Some(cache_cfg) => match build_cached(construction, g, cfg, cache_cfg) {
            Err(BuildError::Cache(e)) => {
                eprintln!(
                    "warning: construction cache at {} unusable ({e}); sweep continues uncached",
                    cache_cfg.dir.display()
                );
                construction.build(g, cfg)
            }
            other => other,
        },
        None => construction.build(g, cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usnae_core::api::{Algorithm, CacheStatus};
    use usnae_graph::generators;

    #[test]
    fn sweep_build_matches_direct_build_uncached() {
        // The suite must not depend on the ambient environment; this test
        // exercises the uncached path explicitly via a no-op CacheConfig
        // check (env handling is covered by the CLI/CI legs).
        let g = generators::grid2d(6, 6).unwrap();
        let cfg = BuildConfig::default();
        let c = Algorithm::Centralized.construction();
        let direct = c.build(&g, &cfg).unwrap();
        let swept = sweep_build(c.as_ref(), &g, &cfg).unwrap();
        assert_eq!(
            direct.emulator.provenance(),
            swept.emulator.provenance(),
            "read-through changes nothing"
        );
    }

    #[test]
    fn unusable_cache_degrades_to_an_uncached_build() {
        // Point the cache "directory" at a regular file: every store must
        // fail, and the sweep must still produce the correct output.
        let file =
            std::env::temp_dir().join(format!("usnae-eval-cache-blocked-{}", std::process::id()));
        std::fs::write(&file, b"not a directory").unwrap();
        let g = generators::grid2d(5, 5).unwrap();
        let cfg = BuildConfig::default();
        let c = Algorithm::Centralized.construction();
        let blocked = CacheConfig::new(file.join("sub"));
        let out = build_with(c.as_ref(), &g, &cfg, Some(&blocked))
            .expect("cache failure must not fail the sweep");
        let direct = c.build(&g, &cfg).unwrap();
        assert_eq!(out.emulator.provenance(), direct.emulator.provenance());
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn explicit_cache_config_round_trips_a_sweep_cell() {
        let dir = std::env::temp_dir().join(format!("usnae-eval-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let g = generators::gnp_connected(60, 0.1, 5).unwrap();
        let cfg = BuildConfig::default();
        let c = Algorithm::Centralized.construction();
        let cache_cfg = CacheConfig::new(&dir);
        let cold = build_cached(c.as_ref(), &g, &cfg, &cache_cfg).unwrap();
        let warm = build_cached(c.as_ref(), &g, &cfg, &cache_cfg).unwrap();
        assert_eq!(cold.stats.cache, CacheStatus::Miss);
        assert_eq!(warm.stats.cache, CacheStatus::Hit);
        assert_eq!(warm.stream_fingerprint(), cold.stream_fingerprint());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
