//! Named workload families for the experiments (substitution S3).
//!
//! The paper evaluates nothing empirically, so we choose families whose
//! diameter/degree spectra exercise every code path: dense random graphs
//! (early superclustering), grids and cycles (deep phases, large diameter),
//! hubs and brooms (popularity order-dependence, hub splitting), clustered
//! and small-world graphs (mixed regimes).

use usnae_graph::{generators, Graph};

/// A named graph instance.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Family name (stable across sizes, used as a table key).
    pub name: &'static str,
    /// The instance.
    pub graph: Graph,
}

impl Workload {
    fn new(name: &'static str, graph: Graph) -> Self {
        Workload { name, graph }
    }
}

/// The standard suite at `n` vertices (approximately — lattice dims are
/// rounded). All instances are connected.
pub fn standard_suite(n: usize, seed: u64) -> Vec<Workload> {
    let side = (n as f64).sqrt().round() as usize;
    vec![
        Workload::new(
            "gnp-dense",
            generators::gnp_connected(n, 8.0 / n as f64, seed).expect("valid gnp"),
        ),
        Workload::new(
            "gnp-sparse",
            generators::gnp_connected(n, 2.5 / n as f64, seed + 1).expect("valid gnp"),
        ),
        Workload::new(
            "grid",
            generators::grid2d(side.max(2), side.max(2)).expect("valid grid"),
        ),
        Workload::new(
            "regular",
            generators::random_regular(if n.is_multiple_of(2) { n } else { n + 1 }, 4, seed + 2)
                .expect("valid regular"),
        ),
        Workload::new(
            "ba",
            generators::barabasi_albert(n, 3, seed + 3).expect("valid ba"),
        ),
        Workload::new(
            "ws",
            generators::watts_strogatz(n, 6, 0.1, seed + 4).expect("valid ws"),
        ),
        Workload::new(
            "caveman",
            generators::caveman((n / 10).max(2), 10).expect("valid caveman"),
        ),
    ]
}

/// A smaller suite for the expensive distributed-simulation experiments.
pub fn congest_suite(n: usize, seed: u64) -> Vec<Workload> {
    let side = (n as f64).sqrt().round() as usize;
    vec![
        Workload::new(
            "gnp-dense",
            generators::gnp_connected(n, 8.0 / n as f64, seed).expect("valid gnp"),
        ),
        Workload::new(
            "grid",
            generators::grid2d(side.max(2), side.max(2)).expect("valid grid"),
        ),
        Workload::new(
            "broom",
            generators::broom((n / 8).max(2), 7).expect("valid broom"),
        ),
    ]
}

/// The structural instances behind the paper's figures.
pub fn figure_suite(n: usize) -> Vec<Workload> {
    vec![
        Workload::new("star", generators::star(n).expect("valid star")),
        Workload::new(
            "dumbbell",
            generators::dumbbell(n / 2, n / 8 + 1).expect("valid dumbbell"),
        ),
        Workload::new(
            "broom",
            generators::broom((n / 8).max(2), 7).expect("valid broom"),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use usnae_graph::connectivity::is_connected;

    #[test]
    fn standard_suite_connected_and_sized() {
        for w in standard_suite(200, 7) {
            assert!(is_connected(&w.graph), "{} disconnected", w.name);
            assert!(
                w.graph.num_vertices() >= 180 && w.graph.num_vertices() <= 220,
                "{}: n = {}",
                w.name,
                w.graph.num_vertices()
            );
        }
    }

    #[test]
    fn suites_have_distinct_names() {
        let names: Vec<_> = standard_suite(100, 1).iter().map(|w| w.name).collect();
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(names.len(), set.len());
    }

    #[test]
    fn congest_and_figure_suites_connected() {
        for w in congest_suite(96, 3).into_iter().chain(figure_suite(64)) {
            assert!(is_connected(&w.graph), "{} disconnected", w.name);
        }
    }
}
