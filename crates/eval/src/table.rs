//! Plain-text tables and CSV output for experiment reports.

use std::fmt;

/// A titled table with a header row and string cells.
///
/// # Example
///
/// ```
/// use usnae_eval::table::Table;
///
/// let mut t = Table::new("sizes", &["n", "edges"]);
/// t.push_row(vec!["100".into(), "123".into()]);
/// let text = t.to_string();
/// assert!(text.contains("sizes"));
/// assert!(text.contains("123"));
/// assert_eq!(t.to_csv(), "n,edges\n100,123\n");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Cell accessor (row-major), `None` when out of range.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows.get(row)?.get(col).map(|s| s.as_str())
    }

    /// Column index by header name.
    pub fn column(&self, header: &str) -> Option<usize> {
        self.headers.iter().position(|h| h == header)
    }

    /// Parses a whole column as `f64` (non-numeric cells skipped).
    pub fn column_f64(&self, header: &str) -> Vec<f64> {
        let Some(idx) = self.column(header) else {
            return Vec::new();
        };
        self.rows
            .iter()
            .filter_map(|r| r[idx].parse().ok())
            .collect()
    }

    /// RFC-4180-ish CSV (values are simple tokens in this project; no
    /// quoting needed, commas in cells are rejected).
    ///
    /// # Panics
    ///
    /// Panics if any cell contains a comma or newline.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                assert!(
                    !c.contains(',') && !c.contains('\n'),
                    "cell {c:?} needs quoting"
                );
                if i > 0 {
                    out.push(',');
                }
                out.push_str(c);
            }
            out.push('\n');
        };
        emit(&mut out, &self.headers);
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {:>width$} |", c, width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<width$}|", "", width = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float compactly for table cells.
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1e6 || x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else if x.fract() == 0.0 && x.abs() < 1e9 {
        format!("{x:.0}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("t", &["a", "long_header"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.contains("## t"));
        assert!(s.contains("long_header"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new("t", &["x", "y"]);
        t.push_row(vec!["1".into(), "2.5".into()]);
        t.push_row(vec!["3".into(), "4.5".into()]);
        assert_eq!(t.to_csv().lines().count(), 3);
        assert_eq!(t.column_f64("y"), vec![2.5, 4.5]);
        assert_eq!(t.column("z"), None);
        assert_eq!(t.cell(1, 0), Some("3"));
        assert_eq!(t.cell(5, 0), None);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(3.25), "3.250");
        assert!(fmt_f64(1.5e9).contains('e'));
        assert!(fmt_f64(1e-5).contains('e'));
    }
}
