//! F5/F6 — auditing the *per-level* stretch bound of Lemma 2.10.
//!
//! The stretch proof (Figures 5–6) is inductive: if every vertex on some
//! shortest `u–v` path is `U^(i)`-clustered — clustered at level `i` or
//! below — then `d_H(u,v) ≤ α_i·d_G(u,v) + β_i`, with the per-level pairs
//! `(α_i, β_i)` from the paper's recursions. The final corollary only uses
//! `i = ℓ`; this audit recovers each pair's *actual* level from the build
//! trace and checks the sharper level-`i` bound — a much stronger test of
//! the construction than the end-to-end corollary.

use usnae_core::centralized::BuildTrace;
use usnae_core::params::CentralizedParams;
use usnae_core::Emulator;
use usnae_graph::bfs::bfs;
use usnae_graph::{Graph, VertexId};

/// Result of a per-level stretch audit.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentAuditReport {
    /// Pairs audited (connected pairs only).
    pub pairs_checked: usize,
    /// Pairs violating their *level* bound `α_i·d + β_i`.
    pub level_violations: usize,
    /// Histogram: how many audited pairs resolved at each level `i`.
    pub level_histogram: Vec<usize>,
    /// Max observed `d_H − d_G` among pairs that resolved at level 0
    /// (must be 0: level-0 paths are reproduced exactly).
    pub level0_max_error: u64,
}

impl SegmentAuditReport {
    /// Whether every audited pair satisfied its level bound.
    pub fn passed(&self) -> bool {
        self.level_violations == 0 && self.level0_max_error == 0
    }
}

/// The clustering level of each vertex: the phase `i` at which its cluster
/// joined `U_i` (Lemma 2.8 guarantees exactly one).
pub fn vertex_levels(trace: &BuildTrace, n: usize) -> Vec<usize> {
    let mut level = vec![usize::MAX; n];
    for (i, u_i) in trace.unclustered.iter().enumerate() {
        for c in u_i {
            for &v in &c.members {
                debug_assert_eq!(level[v], usize::MAX, "vertex clustered twice");
                level[v] = i;
            }
        }
    }
    debug_assert!(level.iter().all(|&l| l != usize::MAX), "U-levels cover V");
    level
}

/// Audits the Lemma 2.10 level bound over `pairs`.
///
/// For each pair a shortest path is reconstructed from BFS parents; the
/// pair's level is the maximum vertex level along it (the minimal `i` with
/// the whole path `U^(i)`-clustered for *this* path — a sound witness since
/// Lemma 2.10 quantifies over any shortest path).
pub fn segment_audit(
    g: &Graph,
    emulator: &Emulator,
    trace: &BuildTrace,
    params: &CentralizedParams,
    pairs: &[(VertexId, VertexId)],
) -> SegmentAuditReport {
    let n = g.num_vertices();
    let levels = vertex_levels(trace, n);
    let alphas = params.schedule().alpha_sequence();
    let betas = params.schedule().beta_sequence();
    let mut report = SegmentAuditReport {
        pairs_checked: 0,
        level_violations: 0,
        level_histogram: vec![0; params.ell() + 1],
        level0_max_error: 0,
    };

    // Group by source: one BFS (with parents) + one emulator SSSP each.
    let mut by_source: std::collections::HashMap<VertexId, Vec<VertexId>> = Default::default();
    for &(u, v) in pairs {
        by_source.entry(u).or_default().push(v);
    }
    for (source, targets) in by_source {
        // BFS with parent pointers for path reconstruction.
        let dist = bfs(g, source);
        let mut parent: Vec<Option<VertexId>> = vec![None; n];
        for v in 0..n {
            if let Some(dv) = dist[v] {
                if dv > 0 {
                    parent[v] = g
                        .neighbors(v)
                        .iter()
                        .copied()
                        .find(|&u| dist[u] == Some(dv - 1));
                }
            }
        }
        let dh = emulator.distances_from(source);
        for v in targets {
            let Some(dg) = dist[v] else { continue };
            report.pairs_checked += 1;
            // Reconstruct one shortest path and take the max level on it.
            let mut lvl = levels[v].max(levels[source]);
            let mut cur = v;
            while let Some(p) = parent[cur] {
                lvl = lvl.max(levels[p]);
                cur = p;
            }
            report.level_histogram[lvl] += 1;
            let dh = dh[v].unwrap_or(u64::MAX);
            let bound = alphas[lvl] * dg as f64 + betas[lvl];
            if dh as f64 > bound + 1e-9 {
                report.level_violations += 1;
            }
            if lvl == 0 {
                report.level0_max_error = report.level0_max_error.max(dh.saturating_sub(dg));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use usnae_core::api::{Emulator as ApiEmulator, ProcessingOrder};
    use usnae_graph::distance::sample_pairs;
    use usnae_graph::generators;

    /// Traced centralized build through the unified API, unpacked into the
    /// pieces this audit consumes.
    fn traced_build(
        g: &Graph,
        eps: f64,
        kappa: u32,
        raw: bool,
        order: ProcessingOrder,
    ) -> (Emulator, BuildTrace, CentralizedParams) {
        let out = ApiEmulator::builder(g)
            .epsilon(eps)
            .kappa(kappa)
            .raw_epsilon(raw)
            .order(order)
            .traced(true)
            .build()
            .unwrap();
        let trace = out
            .trace
            .unwrap()
            .as_centralized()
            .expect("centralized build")
            .clone();
        let params = if raw {
            CentralizedParams::with_raw_epsilon(eps, kappa)
        } else {
            CentralizedParams::new(eps, kappa)
        }
        .unwrap();
        (out.emulator, trace, params)
    }

    fn audit(g: &Graph, eps: f64, kappa: u32, pairs: usize) -> SegmentAuditReport {
        let (h, trace, p) = traced_build(g, eps, kappa, true, ProcessingOrder::ById);
        let sampled = sample_pairs(g, pairs, 7);
        segment_audit(g, &h, &trace, &p, &sampled)
    }

    #[test]
    fn levels_cover_all_vertices_once() {
        let g = generators::gnp_connected(150, 0.06, 3).unwrap();
        let (_, trace, p) = traced_build(&g, 0.5, 4, false, ProcessingOrder::ById);
        let levels = vertex_levels(&trace, 150);
        assert_eq!(levels.len(), 150);
        assert!(levels.iter().all(|&l| l <= p.ell()));
    }

    #[test]
    fn per_level_bound_holds_on_random_graphs() {
        for seed in 0..3u64 {
            let g = generators::gnp_connected(200, 0.05, seed).unwrap();
            let report = audit(&g, 0.5, 8, 200);
            assert!(report.passed(), "seed {seed}: {report:?}");
            assert_eq!(report.pairs_checked, 200);
        }
    }

    #[test]
    fn star_pairs_resolve_at_level_one() {
        // The hub is popular in phase 0 (ById processes it first), so the
        // whole star superclusters and joins U_1: every pair resolves at
        // level 1 and must satisfy (α_1, β_1).
        let g = generators::star(100).unwrap();
        let report = audit(&g, 0.5, 4, 200);
        assert!(report.passed(), "{report:?}");
        assert_eq!(
            report.level_histogram[1], report.pairs_checked,
            "{report:?}"
        );
    }

    #[test]
    fn caveman_exercises_deep_levels() {
        // Cliques supercluster in phase 0 under hubs-first ordering; the
        // inter-clique structure resolves at level ≥ 1.
        let g = generators::caveman(24, 8).unwrap();
        let (h, trace, p) = traced_build(&g, 0.5, 8, true, ProcessingOrder::ByDegreeDesc);
        let sampled = sample_pairs(&g, 250, 11);
        let report = segment_audit(&g, &h, &trace, &p, &sampled);
        assert!(report.passed(), "{report:?}");
        let deep: usize = report.level_histogram.iter().skip(1).sum();
        assert!(deep > 0, "expected multi-level pairs: {report:?}");
    }

    #[test]
    fn level0_pairs_have_exact_distances() {
        // On a path everything stays level 0 and distances are exact.
        let g = generators::path(40).unwrap();
        let report = audit(&g, 0.5, 4, 100);
        assert!(report.passed());
        assert_eq!(report.level_histogram[0], report.pairs_checked);
        assert_eq!(report.level0_max_error, 0);
    }
}
