//! Experiment harness for the reproduction.
//!
//! The paper is a theory paper: its "evaluation" is a set of theorems and
//! illustrative figures. `DESIGN.md` maps each to a measurable experiment
//! (E1–E8, F1–F7); this crate provides the runners that regenerate them:
//!
//! * [`workloads`] — the synthetic graph families (substitution S3);
//! * [`table`] — plain-text table + CSV rendering;
//! * [`experiments`] — one runner per experiment id, each returning
//!   [`table::Table`]s whose *shape* (who wins, by what factor, where
//!   ratios sit relative to 1.0) is the reproduced result.
//!
//! The `usnae-bench` crate wraps these in `exp_*` binaries; integration
//! tests assert the headline shapes hold.
//!
//! Sweeps are cache-aware: set `USNAE_CACHE_DIR` (see [`caching`]) and the
//! registry iterations reuse warm construction-cache entries instead of
//! rebuilding identical cells.

pub mod caching;
pub mod experiments;
pub mod segment_audit;
pub mod table;
pub mod workloads;
