//! Experiment runners E1–E8 and the figure anatomies (see `DESIGN.md` §4).
//!
//! Each runner returns a [`Table`]; the *shape* of the numbers is the
//! reproduced result (size ratios ≤ 1 against `n^(1+1/κ)`, edges/n → 1 in
//! the ultra-sparse regime, measured β far below certified β, our spanner
//! sparser than EM19, zero knowledge violations distributedly, …).
//!
//! All constructions are reached through the unified API: one-off builds go
//! through [`Emulator::builder`], and the lineage comparisons (E7/E8)
//! iterate [`usnae_baselines::registry`] instead of hardcoding algorithm
//! lists — registering a new [`Construction`](usnae_core::api::Construction)
//! adds it to those tables with no experiment edits.

use crate::table::{fmt_f64, Table};
use crate::workloads::{congest_suite, standard_suite, Workload};
use usnae_baselines::registry;
use usnae_core::api::{
    Algorithm, BuildConfig, Emulator, PartitionPolicy, ProcessingOrder, QueryEngine, TransportKind,
};
use usnae_core::verify::{audit_stretch, is_subgraph_spanner};
use usnae_graph::distance::{sample_pairs, Apsp};

/// κ in the ultra-sparse regime: `log₂²n = ω(log n)` (Corollary 2.15).
pub fn ultra_sparse_kappa(n: usize) -> u32 {
    let l = (n as f64).log2();
    ((l * l).round() as u32).max(2)
}

/// E1 — the headline size bound (Cor 2.14): `|H| ≤ n^(1+1/κ)` with leading
/// constant exactly 1, across families, sizes, κ.
pub fn e1_size(sizes: &[usize], kappas: &[u32], epsilon: f64, seed: u64) -> Table {
    let mut t = Table::new(
        "E1 (Cor 2.14): emulator size vs n^(1+1/kappa), leading constant 1",
        &["family", "n", "kappa", "edges", "bound", "ratio"],
    );
    for &n in sizes {
        for w in standard_suite(n, seed) {
            let n_actual = w.graph.num_vertices();
            for &kappa in kappas {
                let out = Emulator::builder(&w.graph)
                    .epsilon(epsilon)
                    .kappa(kappa)
                    .algorithm(Algorithm::Centralized)
                    .build()
                    .expect("valid params");
                let bound = out.size_bound.expect("centralized build is bounded");
                t.push_row(vec![
                    w.name.into(),
                    n_actual.to_string(),
                    kappa.to_string(),
                    out.num_edges().to_string(),
                    fmt_f64(bound),
                    fmt_f64(out.num_edges() as f64 / bound),
                ]);
            }
        }
    }
    t
}

/// E2 — ultra-sparse regime (Cor 2.15): `κ = log²n ⇒ |H| = n + o(n)`;
/// `edges/n` must approach 1 from above as `n` grows.
pub fn e2_ultra_sparse(sizes: &[usize], epsilon: f64, seed: u64) -> Table {
    let mut t = Table::new(
        "E2 (Cor 2.15): ultra-sparse emulators, kappa = log^2 n",
        &[
            "family",
            "n",
            "kappa",
            "edges",
            "edges_over_n",
            "bound_over_n",
        ],
    );
    for &n in sizes {
        for w in standard_suite(n, seed) {
            let n_actual = w.graph.num_vertices();
            let kappa = ultra_sparse_kappa(n_actual);
            let out = Emulator::builder(&w.graph)
                .epsilon(epsilon)
                .kappa(kappa)
                .build()
                .expect("valid params");
            t.push_row(vec![
                w.name.into(),
                n_actual.to_string(),
                kappa.to_string(),
                out.num_edges().to_string(),
                fmt_f64(out.num_edges() as f64 / n_actual as f64),
                fmt_f64(out.size_bound.expect("bounded") / n_actual as f64),
            ]);
        }
    }
    t
}

/// E3 — stretch audit (Cor 2.13 / 2.11): sampled-pair distances obey
/// `d_H ≤ α·d_G + β` with the certified pair; the measured "needed β"
/// shows how loose the worst case is.
pub fn e3_stretch(n: usize, kappas: &[u32], epsilons: &[f64], pairs: usize, seed: u64) -> Table {
    let mut t = Table::new(
        "E3 (Cor 2.13): stretch audit, certified vs measured",
        &[
            "family",
            "kappa",
            "eps",
            "alpha_cert",
            "beta_cert",
            "beta_closed_form",
            "max_ratio",
            "needed_beta",
            "violations",
        ],
    );
    for w in standard_suite(n, seed) {
        let sampled = sample_pairs(&w.graph, pairs, seed + 17);
        for &kappa in kappas {
            for &eps in epsilons {
                let out = Emulator::builder(&w.graph)
                    .epsilon(eps)
                    .kappa(kappa)
                    .build()
                    .expect("valid params");
                let (alpha, beta) = out.certified.expect("centralized certifies");
                let closed_form = BuildConfig {
                    epsilon: eps,
                    kappa,
                    ..BuildConfig::default()
                }
                .centralized_params()
                .expect("valid params")
                .beta_closed_form();
                let report = audit_stretch(&w.graph, out.emulator.graph(), alpha, beta, &sampled);
                t.push_row(vec![
                    w.name.into(),
                    kappa.to_string(),
                    fmt_f64(eps),
                    fmt_f64(alpha),
                    fmt_f64(beta),
                    fmt_f64(closed_form),
                    fmt_f64(report.max_ratio),
                    fmt_f64(report.needed_beta),
                    (report.violations + report.shortening_violations + report.unreachable_pairs)
                        .to_string(),
                ]);
            }
        }
    }
    t
}

/// E4/E5 — the distributed construction (Cor 3.11 / 3.12): measured CONGEST
/// rounds vs the paper's `O(β·n^ρ)` budget, size bound, and the
/// both-endpoints knowledge check. With `ultra`, κ is set to `log²n` (E5).
pub fn e4_congest(
    n: usize,
    kappa: u32,
    rhos: &[f64],
    epsilon: f64,
    seed: u64,
    ultra: bool,
) -> Table {
    let mut t = Table::new(
        if ultra {
            "E5 (Cor 3.12): distributed ultra-sparse emulators"
        } else {
            "E4 (Cor 3.11): distributed CONGEST construction"
        },
        &[
            "family",
            "kappa",
            "rho",
            "rounds",
            "paper_budget",
            "messages",
            "edges",
            "bound",
            "knowledge_bad",
        ],
    );
    for w in congest_suite(n, seed) {
        let n_actual = w.graph.num_vertices();
        let kappa = if ultra {
            ultra_sparse_kappa(n_actual)
        } else {
            kappa
        };
        for &rho in rhos {
            let cfg = BuildConfig {
                epsilon,
                kappa,
                rho,
                ..BuildConfig::default()
            };
            // Skip only parameter incompatibilities (rho vs kappa); a
            // CongestError from the build is a protocol bug and must panic.
            let Ok(params) = cfg.distributed_params() else {
                continue;
            };
            let out = Algorithm::Distributed
                .construction()
                .build(&w.graph, &cfg)
                .expect("protocol completes");
            let budget = params.round_budget(n_actual);
            let stats = out.congest.as_ref().expect("distributed builds report");
            t.push_row(vec![
                w.name.into(),
                kappa.to_string(),
                fmt_f64(rho),
                stats.metrics.rounds.to_string(),
                fmt_f64(budget),
                stats.metrics.messages.to_string(),
                out.num_edges().to_string(),
                fmt_f64(out.size_bound.expect("bounded")),
                stats.knowledge_violations.to_string(),
            ]);
        }
    }
    t
}

/// E7 — spanner comparison (Cor 4.4): the §4 spanner vs the EM19 baseline;
/// ours must be a subgraph and (on dense inputs) sparser.
pub fn e7_spanner(sizes: &[usize], kappas: &[u32], epsilon: f64, rho: f64, seed: u64) -> Table {
    let mut t = Table::new(
        "E7 (Cor 4.4): spanner size, ours vs EM19 baseline",
        &[
            "family",
            "n",
            "kappa",
            "ours",
            "em19",
            "em19_over_ours",
            "input_edges",
            "subgraph",
        ],
    );
    let em19 = registry::find("em19").expect("baseline registered");
    for &n in sizes {
        for w in standard_suite(n, seed) {
            let n_actual = w.graph.num_vertices();
            for &kappa in kappas {
                // Raw-ε mode: the rescaled ε collapses all phase structure
                // at simulable sizes (δ_1 > diameter); see params docs.
                let cfg = BuildConfig {
                    epsilon,
                    kappa,
                    rho,
                    raw_epsilon: true,
                    ..BuildConfig::default()
                };
                if cfg.spanner_params().is_err() || cfg.distributed_params().is_err() {
                    continue; // kappa/rho combination out of range
                }
                let ours = crate::caching::sweep_build(
                    Algorithm::Spanner.construction().as_ref(),
                    &w.graph,
                    &cfg,
                )
                .expect("validated above");
                let theirs = crate::caching::sweep_build(em19.as_ref(), &w.graph, &cfg)
                    .expect("validated above");
                t.push_row(vec![
                    w.name.into(),
                    n_actual.to_string(),
                    kappa.to_string(),
                    ours.num_edges().to_string(),
                    theirs.num_edges().to_string(),
                    fmt_f64(theirs.num_edges() as f64 / ours.num_edges().max(1) as f64),
                    w.graph.num_edges().to_string(),
                    is_subgraph_spanner(&w.graph, ours.emulator.graph()).to_string(),
                ]);
            }
        }
    }
    t
}

/// E8 — emulator lineage comparison (§1.1): every *emulator* construction
/// in the registry (paper and baseline alike) at equal (ε, κ), one row per
/// (family, κ, algorithm). Registering a new construction adds its rows
/// automatically.
pub fn e8_baselines(n: usize, kappas: &[u32], epsilon: f64, seed: u64) -> Table {
    let mut t = Table::new(
        "E8: emulator sizes across the whole registry at equal (eps, kappa)",
        &["family", "kappa", "algo", "edges", "bound"],
    );
    // The CONGEST emulator is excluded on cost grounds only (it rebuilds
    // the same structure as fast-centralized through the simulator).
    let lineup: Vec<_> = registry::emulators()
        .into_iter()
        .filter(|c| !c.supports().congest)
        .collect();
    for w in standard_suite(n, seed) {
        for &kappa in kappas {
            let cfg = BuildConfig {
                epsilon,
                kappa,
                raw_epsilon: true,
                seed: seed + 23,
                ..BuildConfig::default()
            };
            for c in &lineup {
                let Ok(out) = crate::caching::sweep_build(c.as_ref(), &w.graph, &cfg) else {
                    continue; // parameters out of range for this lineage
                };
                t.push_row(vec![
                    w.name.into(),
                    kappa.to_string(),
                    c.name().into(),
                    out.num_edges().to_string(),
                    out.size_bound.map_or_else(|| "-".into(), fmt_f64),
                ]);
            }
        }
    }
    t
}

/// E9 — query accuracy (the serving half): every emulator lineage in the
/// registry answers the same seeded query set through a
/// [`QueryEngine`], and the observed worst case (max multiplicative
/// ratio, needed additive β) is tabled against the certified `(α, β)` —
/// for the exact-path engine and for a `landmarks`-landmark index
/// (certified at `(α, β + 2R)`). Violation counts must be zero wherever
/// a bound is certified; uncertified baselines show `-` and are checked
/// for the lower bound only.
pub fn e9_query_accuracy(
    n: usize,
    kappa: u32,
    epsilon: f64,
    pairs: usize,
    landmarks: usize,
    seed: u64,
) -> Table {
    let mut t = Table::new(
        "E9: observed vs certified stretch through the query engine",
        &[
            "family",
            "algo",
            "edges",
            "alpha_cert",
            "beta_cert",
            "max_ratio",
            "needed_beta",
            "lm_beta_cert",
            "lm_needed_beta",
            "violations",
        ],
    );
    // The CONGEST lineages are excluded on cost grounds only, as in E8
    // (they rebuild fast-centralized's structure through the simulator);
    // `tests/query_conformance.rs` serves the full registry.
    let lineup: Vec<_> = registry::all()
        .into_iter()
        .filter(|c| !c.supports().congest)
        .collect();
    for w in standard_suite(n, seed) {
        let sampled = sample_pairs(&w.graph, pairs, seed + 17);
        let apsp = Apsp::new(&w.graph);
        let cfg = BuildConfig {
            epsilon,
            kappa,
            raw_epsilon: true,
            seed: seed + 23,
            ..BuildConfig::default()
        };
        for c in &lineup {
            let Ok(out) = crate::caching::sweep_build(c.as_ref(), &w.graph, &cfg) else {
                continue; // parameters out of range for this lineage
            };
            let certified = out.certified;
            let engine = out.into_query_engine();
            let lm_engine = QueryEngine::new(
                engine.emulator().expect("heap-backed engine").clone(),
                engine.algorithm(),
                certified,
            )
            .with_landmarks(landmarks);
            let (alpha, beta) = engine.guarantee();
            let (_, lm_beta) = lm_engine.landmark_guarantee();
            let answers = engine.distances(&sampled);
            let mut max_ratio = 1.0f64;
            let mut needed_beta = 0.0f64;
            let mut lm_needed_beta = 0.0f64;
            let mut violations = 0usize;
            for (&(u, v), a) in sampled.iter().zip(&answers) {
                let exact = apsp.distance(u, v);
                if !a.holds_against(exact) {
                    violations += 1;
                }
                let lm = lm_engine.approx_distance(u, v);
                if !lm.holds_against(exact) {
                    violations += 1;
                }
                let (Some(d), Some(got)) = (exact, a.value) else {
                    continue;
                };
                if d > 0 {
                    max_ratio = max_ratio.max(got as f64 / d as f64);
                }
                needed_beta = needed_beta.max(got as f64 - alpha * d as f64);
                if let Some(lm_got) = lm.value {
                    lm_needed_beta = lm_needed_beta.max(lm_got as f64 - alpha * d as f64);
                }
            }
            let show_beta = |b: f64| {
                if b.is_finite() {
                    fmt_f64(b)
                } else {
                    "-".to_string()
                }
            };
            t.push_row(vec![
                w.name.into(),
                c.name().into(),
                engine.num_edges().to_string(),
                fmt_f64(alpha),
                show_beta(beta),
                fmt_f64(max_ratio),
                fmt_f64(needed_beta),
                show_beta(lm_beta),
                fmt_f64(lm_needed_beta),
                violations.to_string(),
            ]);
        }
    }
    t
}

/// E10 — measured vs simulated message complexity: the same logical
/// construction counted two ways on the same input. The fast-centralized
/// build on the channel worker transport *measures* real traffic between
/// `shards` shard workers ([`BuildStats::messages`](usnae_core::api::BuildStats)
/// — frontier candidates, rank exchange, and the round-end shipping of
/// the output stream to the workers' retained partitions plus the lazy
/// fetch that merges them back); the distributed build *simulates* the
/// §3 CONGEST protocol and counts its idealized per-round messages. The
/// `msg_ratio` column (measured / simulated) is the engineering-overhead
/// factor of the worker protocol relative to the model — the paper's
/// headline message-complexity metric made empirical. The parallel bench
/// emits the same ratio into the `BENCH_<sha>.json` trend.
pub fn e10_message_ratio(
    n: usize,
    kappa: u32,
    rho: f64,
    epsilon: f64,
    shards: usize,
    seed: u64,
) -> Table {
    let mut t = Table::new(
        "E10: measured worker messages vs CONGEST-simulated counts",
        &[
            "family",
            "n",
            "shards",
            "measured_rounds",
            "measured_msgs",
            "measured_bytes",
            "shard_pairs",
            "sim_rounds",
            "sim_msgs",
            "msg_ratio",
        ],
    );
    for w in congest_suite(n, seed) {
        let n_actual = w.graph.num_vertices();
        let measured = Emulator::builder(&w.graph)
            .epsilon(epsilon)
            .kappa(kappa)
            .algorithm(Algorithm::FastCentralized)
            .partition(PartitionPolicy::DegreeBalanced, shards)
            .transport(TransportKind::Channel)
            .build()
            .expect("valid params");
        let m = measured
            .stats
            .messages
            .as_ref()
            .expect("worker builds measure messages");
        let sim = Emulator::builder(&w.graph)
            .epsilon(epsilon)
            .kappa(kappa)
            .rho(rho)
            .algorithm(Algorithm::Distributed)
            .build()
            .expect("valid params");
        let s = &sim
            .congest
            .as_ref()
            .expect("distributed builds report")
            .metrics;
        t.push_row(vec![
            w.name.into(),
            n_actual.to_string(),
            shards.to_string(),
            m.rounds.to_string(),
            m.messages.to_string(),
            m.bytes.to_string(),
            m.pairs.len().to_string(),
            s.rounds.to_string(),
            s.messages.to_string(),
            fmt_f64(m.messages as f64 / s.messages.max(1) as f64),
        ]);
    }
    t
}

/// F1–F3 anatomy: edge kinds per phase under different processing orders
/// (the star example's order-dependence is visible in the `star` rows).
pub fn anatomy(workloads: &[Workload], kappa: u32, epsilon: f64) -> Table {
    let mut t = Table::new(
        "F1-F3: edge anatomy by processing order",
        &[
            "family",
            "order",
            "phase",
            "clusters",
            "unclustered",
            "superclusters",
            "interconnect_edges",
            "supercluster_edges",
            "buffer_joins",
        ],
    );
    for w in workloads {
        for (order, name) in [
            (ProcessingOrder::ById, "by-id"),
            (ProcessingOrder::ByIdDesc, "by-id-desc"),
            (ProcessingOrder::ByDegreeDesc, "hubs-first"),
            (ProcessingOrder::ByDegreeAsc, "hubs-last"),
        ] {
            let out = Emulator::builder(&w.graph)
                .epsilon(epsilon)
                .kappa(kappa)
                .raw_epsilon(true)
                .order(order)
                .traced(true)
                .build()
                .expect("valid params");
            let trace = out.trace.expect("traced build");
            for ph in trace.phase_summaries() {
                t.push_row(vec![
                    w.name.into(),
                    name.into(),
                    ph.phase.to_string(),
                    ph.num_clusters.to_string(),
                    ph.num_unclustered.to_string(),
                    ph.num_superclusters.to_string(),
                    ph.interconnection_edges.to_string(),
                    ph.superclustering_edges.to_string(),
                    ph.buffer_join_edges.to_string(),
                ]);
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::figure_suite;

    #[test]
    fn e1_all_ratios_at_most_one() {
        let t = e1_size(&[150], &[2, 4], 0.5, 3);
        assert!(t.num_rows() > 0);
        for r in t.column_f64("ratio") {
            assert!(r <= 1.0 + 1e-9, "ratio {r} > 1");
        }
    }

    #[test]
    fn e2_edges_over_n_near_one() {
        let t = e2_ultra_sparse(&[256], 0.5, 5);
        for r in t.column_f64("edges_over_n") {
            assert!(r <= 1.10, "edges/n = {r}");
        }
    }

    #[test]
    fn e3_zero_violations() {
        let t = e3_stretch(120, &[3], &[0.5], 120, 7);
        for v in t.column_f64("violations") {
            assert_eq!(v, 0.0);
        }
        // Certified β dominates the measured requirement.
        let cert = t.column_f64("beta_cert");
        let need = t.column_f64("needed_beta");
        for (c, n) in cert.iter().zip(&need) {
            assert!(n <= c, "needed {n} > certified {c}");
        }
    }

    #[test]
    fn e4_zero_knowledge_violations_and_size_ok() {
        let t = e4_congest(64, 4, &[0.5], 0.5, 9, false);
        assert!(t.num_rows() > 0);
        for v in t.column_f64("knowledge_bad") {
            assert_eq!(v, 0.0);
        }
        let edges = t.column_f64("edges");
        let bounds = t.column_f64("bound");
        for (e, b) in edges.iter().zip(&bounds) {
            assert!(e <= b, "{e} > {b}");
        }
    }

    #[test]
    fn e10_ratio_is_positive_and_both_counters_report() {
        let t = e10_message_ratio(64, 4, 0.5, 0.5, 2, 9);
        assert!(t.num_rows() > 0);
        for m in t.column_f64("measured_msgs") {
            assert!(m > 0.0, "worker builds must measure traffic");
        }
        for s in t.column_f64("sim_msgs") {
            assert!(s > 0.0, "the simulator must count messages");
        }
        for r in t.column_f64("msg_ratio") {
            assert!(r > 0.0 && r.is_finite(), "ratio {r}");
        }
    }

    #[test]
    fn e7_ours_is_subgraph() {
        let t = e7_spanner(&[120], &[4], 0.5, 0.5, 11);
        let col = t.column("subgraph").unwrap();
        for i in 0..t.num_rows() {
            assert_eq!(t.cell(i, col), Some("true"));
        }
    }

    #[test]
    fn e8_covers_every_noncongesting_emulator_lineage() {
        let t = e8_baselines(100, &[4], 0.5, 13);
        let algos: std::collections::HashSet<String> = {
            let col = t.column("algo").unwrap();
            (0..t.num_rows())
                .filter_map(|i| t.cell(i, col).map(str::to_string))
                .collect()
        };
        for expected in ["centralized", "fast-centralized", "ep01", "tz06", "en17a"] {
            assert!(algos.contains(expected), "missing {expected}: {algos:?}");
        }
        assert!(!algos.contains("distributed"), "congest lineage excluded");
    }

    #[test]
    fn e9_zero_violations_and_certified_dominates_needed() {
        let t = e9_query_accuracy(96, 3, 0.5, 60, 4, 7);
        assert!(t.num_rows() > 0);
        for v in t.column_f64("violations") {
            assert_eq!(v, 0.0);
        }
        for r in t.column_f64("max_ratio") {
            assert!(r >= 1.0, "answers never undershoot: {r}");
        }
        // Wherever a β is certified, the measured requirement sits under it,
        // and the landmark certificate is at least the exact one.
        let beta_col = t.column("beta_cert").unwrap();
        let lm_beta_col = t.column("lm_beta_cert").unwrap();
        let needed = t.column_f64("needed_beta");
        let lm_needed = t.column_f64("lm_needed_beta");
        let mut certified_rows = 0;
        for i in 0..t.num_rows() {
            let Some(beta) = t.cell(i, beta_col).and_then(|s| s.parse::<f64>().ok()) else {
                continue;
            };
            certified_rows += 1;
            assert!(
                needed[i] <= beta,
                "row {i}: needed {} > certified {beta}",
                needed[i]
            );
            let lm_beta: f64 = t.cell(i, lm_beta_col).unwrap().parse().unwrap();
            assert!(lm_beta >= beta);
            assert!(lm_needed[i] <= lm_beta);
        }
        assert!(certified_rows > 0, "paper lineages certify");
        // The sweep covers paper constructions and baselines alike.
        let algo_col = t.column("algo").unwrap();
        let algos: std::collections::HashSet<&str> = (0..t.num_rows())
            .filter_map(|i| t.cell(i, algo_col))
            .collect();
        for expected in ["centralized", "spanner", "tz06", "em19"] {
            assert!(algos.contains(expected), "missing {expected}: {algos:?}");
        }
    }

    #[test]
    fn anatomy_star_orders_differ() {
        let t = anatomy(&figure_suite(64), 2, 0.5);
        // Star under hubs-first has superclusters in phase 0; hubs-last none.
        let fam = t.column("family").unwrap();
        let ord = t.column("order").unwrap();
        let phase = t.column("phase").unwrap();
        let sc = t.column("superclusters").unwrap();
        let mut first = None;
        let mut last = None;
        for i in 0..t.num_rows() {
            if t.cell(i, fam) == Some("star") && t.cell(i, phase) == Some("0") {
                match t.cell(i, ord) {
                    Some("hubs-first") => first = t.cell(i, sc).map(|s| s.to_string()),
                    Some("hubs-last") => last = t.cell(i, sc).map(|s| s.to_string()),
                    _ => {}
                }
            }
        }
        assert_eq!(first.as_deref(), Some("1"));
        assert_eq!(last.as_deref(), Some("0"));
    }

    #[test]
    fn ultra_sparse_kappa_grows() {
        assert!(ultra_sparse_kappa(1024) >= 100);
        assert!(ultra_sparse_kappa(4096) > ultra_sparse_kappa(1024));
        assert!(ultra_sparse_kappa(4) >= 2);
    }
}
