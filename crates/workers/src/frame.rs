//! The shared frame grammar: magic, version, kind, length-prefixed
//! payload, FNV-64 trailer.
//!
//! Every byte-stream protocol in the workspace frames its messages the
//! same way — the worker process transport (`USNAEWKR`, [`crate::proto`])
//! and the serve daemon's client protocol (`USNAESRV`,
//! `usnae_core::serve`) differ only in their magic, version, and payload
//! vocabulary:
//!
//! ```text
//! +----------+---------+------+-------------+-----------+----------+
//! |  magic   | version | kind | payload_len | payload.. | checksum |
//! |  8 bytes |   u32   |  u8  |     u64     |           |   u64    |
//! +----------+---------+------+-------------+-----------+----------+
//! ```
//!
//! All integers are little-endian; the checksum is FNV-64 over everything
//! before the trailer. This module owns the grammar once: framing,
//! deframing, the clean-EOF/truncation distinction, and the typed
//! [`FrameError`] taxonomy each protocol converts into its own error
//! type. It also provides the little-endian payload helpers
//! ([`Payload`] writer / [`Slice`] reader) so payload codecs share the
//! same bounds-checked, allocation-bounded reading discipline.

use std::io::{Read, Write};

use usnae_graph::metrics::Fnv64;

/// Frame header length: magic (8) + version (4) + kind (1) + payload
/// length (8).
pub const HEADER_LEN: usize = 21;

/// Typed failures of the shared frame grammar. Each protocol converts
/// these into its own error enum (`WorkerError`, `ServeError`), keeping
/// one taxonomy: corruption is never a hang or a panic.
#[derive(Debug)]
pub enum FrameError {
    /// An OS-level read/write failure.
    Io(std::io::Error),
    /// The frame did not start with the protocol's magic.
    BadMagic,
    /// The frame advertised a version this build does not speak.
    UnsupportedVersion {
        /// Version found in the frame header.
        found: u32,
        /// Version this build speaks.
        supported: u32,
    },
    /// The stream ended early (short read) at the given byte offset.
    Truncated {
        /// Offset into the frame where the data ran out.
        offset: usize,
    },
    /// The FNV-64 trailer did not match the received bytes.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        stored: u64,
        /// Checksum recomputed over the received bytes.
        computed: u64,
    },
    /// A structurally invalid frame or payload (oversized length,
    /// unknown tag, trailing garbage).
    Corrupt {
        /// Human-readable description of the malformation.
        reason: String,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::BadMagic => write!(f, "frame is missing the protocol magic"),
            FrameError::UnsupportedVersion { found, supported } => write!(
                f,
                "frame version {found} is unsupported (this build speaks {supported})"
            ),
            FrameError::Truncated { offset } => write!(f, "frame truncated at byte {offset}"),
            FrameError::ChecksumMismatch { stored, computed } => write!(
                f,
                "frame checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            FrameError::Corrupt { reason } => write!(f, "corrupt frame: {reason}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Frames and writes one message under the given magic and version:
/// header, payload, FNV-64 trailer over everything before it.
///
/// # Errors
///
/// [`FrameError::Io`] on write failures.
pub fn write_frame(
    out: &mut impl Write,
    magic: &[u8; 8],
    version: u32,
    kind: u8,
    payload: &[u8],
) -> Result<(), FrameError> {
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len() + 8);
    frame.extend_from_slice(magic);
    frame.extend_from_slice(&version.to_le_bytes());
    frame.push(kind);
    frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    frame.extend_from_slice(payload);
    let mut h = Fnv64::new();
    h.write_bytes(&frame);
    frame.extend_from_slice(&h.finish().to_le_bytes());
    out.write_all(&frame)?;
    out.flush()?;
    Ok(())
}

/// Reads exactly `buf.len()` bytes, reporting a short read as
/// [`FrameError::Truncated`] at `base + bytes_read`.
fn read_exact_or_truncated(
    input: &mut impl Read,
    buf: &mut [u8],
    base: usize,
) -> Result<(), FrameError> {
    let mut read = 0;
    while read < buf.len() {
        match input.read(&mut buf[read..]) {
            Ok(0) => {
                return Err(FrameError::Truncated {
                    offset: base + read,
                })
            }
            Ok(k) => read += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// Reads and validates one frame under the given magic and version,
/// returning `(kind, payload)`. `Ok(None)` means clean EOF at a frame
/// boundary (the peer closed between messages); anything else malformed
/// is a typed error.
///
/// # Errors
///
/// Any [`FrameError`]: bad magic, version skew, truncation mid-frame,
/// checksum mismatch, or an oversized declared length.
pub fn read_frame(
    input: &mut impl Read,
    magic: &[u8; 8],
    version: u32,
) -> Result<Option<(u8, Vec<u8>)>, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    // Distinguish clean EOF (no bytes at all) from a truncated header.
    let mut first = [0u8; 1];
    loop {
        match input.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    header[0] = first[0];
    read_exact_or_truncated(input, &mut header[1..], 1)?;
    if &header[..8] != magic {
        return Err(FrameError::BadMagic);
    }
    let found = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if found != version {
        return Err(FrameError::UnsupportedVersion {
            found,
            supported: version,
        });
    }
    let kind = header[12];
    let len = u64::from_le_bytes(header[13..21].try_into().expect("8 bytes"));
    let len = usize::try_from(len).map_err(|_| FrameError::Corrupt {
        reason: format!("frame payload length {len} does not fit in usize"),
    })?;
    let mut payload = vec![0u8; len];
    read_exact_or_truncated(input, &mut payload, HEADER_LEN)?;
    let mut trailer = [0u8; 8];
    read_exact_or_truncated(input, &mut trailer, HEADER_LEN + len)?;
    let stored = u64::from_le_bytes(trailer);
    let mut h = Fnv64::new();
    h.write_bytes(&header);
    h.write_bytes(&payload);
    let computed = h.finish();
    if stored != computed {
        return Err(FrameError::ChecksumMismatch { stored, computed });
    }
    Ok(Some((kind, payload)))
}

/// Little-endian payload writer shared by the frame-based protocols.
#[derive(Debug, Default)]
pub struct Payload {
    buf: Vec<u8>,
}

impl Payload {
    /// An empty payload buffer.
    pub fn new() -> Self {
        Payload::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn usize(&mut self, x: usize) {
        self.u64(x as u64);
    }

    /// Appends an `f64` by bit pattern.
    pub fn f64(&mut self, x: f64) {
        self.u64(x.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// The assembled payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian payload reader; every read can fail with
/// [`FrameError::Truncated`], and declared collection lengths are
/// sanity-bounded against the remaining payload so corruption cannot
/// trigger a giant allocation.
#[derive(Debug)]
pub struct Slice<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Slice<'a> {
    /// A reader over one payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Slice { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(FrameError::Truncated { offset: self.pos })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, FrameError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a `u64` that must fit in `usize`.
    pub fn usize(&mut self) -> Result<usize, FrameError> {
        let x = self.u64()?;
        usize::try_from(x).map_err(|_| FrameError::Corrupt {
            reason: format!("length {x} does not fit in usize"),
        })
    }

    /// Reads an `f64` by bit pattern.
    pub fn f64(&mut self) -> Result<f64, FrameError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a collection count, sanity-bounded against the remaining
    /// payload so a corrupt length cannot trigger a giant allocation.
    pub fn count(&mut self, min_elem_bytes: usize) -> Result<usize, FrameError> {
        let n = self.usize()?;
        let remaining = self.buf.len() - self.pos;
        if min_elem_bytes > 0 && n > remaining / min_elem_bytes {
            return Err(FrameError::Corrupt {
                reason: format!("count {n} exceeds remaining payload ({remaining} bytes)"),
            });
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, FrameError> {
        let n = self.count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| FrameError::Corrupt {
            reason: "string payload is not UTF-8".to_string(),
        })
    }

    /// Asserts the payload was consumed exactly.
    ///
    /// # Errors
    ///
    /// [`FrameError::Corrupt`] when bytes remain.
    pub fn finish(self) -> Result<(), FrameError> {
        if self.pos != self.buf.len() {
            return Err(FrameError::Corrupt {
                reason: format!(
                    "trailing garbage: consumed {} of {} payload bytes",
                    self.pos,
                    self.buf.len()
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: &[u8; 8] = b"USNAETST";

    #[test]
    fn frames_round_trip_under_any_magic() {
        let mut buf = Vec::new();
        write_frame(&mut buf, MAGIC, 3, 7, b"payload").unwrap();
        let (kind, payload) = read_frame(&mut buf.as_slice(), MAGIC, 3).unwrap().unwrap();
        assert_eq!(kind, 7);
        assert_eq!(payload, b"payload");
    }

    #[test]
    fn clean_eof_is_none_and_mid_frame_eof_is_truncated() {
        let empty: &[u8] = &[];
        assert!(read_frame(&mut { empty }, MAGIC, 1).unwrap().is_none());
        let mut buf = Vec::new();
        write_frame(&mut buf, MAGIC, 1, 0, b"x").unwrap();
        let cut = &buf[..buf.len() - 2];
        assert!(matches!(
            read_frame(&mut { cut }, MAGIC, 1),
            Err(FrameError::Truncated { .. })
        ));
    }

    #[test]
    fn magic_version_and_checksum_are_enforced() {
        let mut buf = Vec::new();
        write_frame(&mut buf, MAGIC, 2, 0, b"abc").unwrap();

        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_frame(&mut bad.as_slice(), MAGIC, 2),
            Err(FrameError::BadMagic)
        ));

        assert!(matches!(
            read_frame(&mut buf.as_slice(), MAGIC, 9),
            Err(FrameError::UnsupportedVersion {
                found: 2,
                supported: 9
            })
        ));

        let mut bad = buf.clone();
        bad[HEADER_LEN] ^= 0xFF;
        assert!(matches!(
            read_frame(&mut bad.as_slice(), MAGIC, 2),
            Err(FrameError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn payload_helpers_round_trip_and_bound_counts() {
        let mut w = Payload::new();
        w.u8(9);
        w.u32(77);
        w.u64(1 << 40);
        w.f64(0.25);
        w.str("usnae");
        let bytes = w.into_bytes();
        let mut r = Slice::new(&bytes);
        assert_eq!(r.u8().unwrap(), 9);
        assert_eq!(r.u32().unwrap(), 77);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.f64().unwrap(), 0.25);
        assert_eq!(r.str().unwrap(), "usnae");
        r.finish().unwrap();

        // A declared count beyond the remaining payload is corruption,
        // not an allocation order.
        let mut w = Payload::new();
        w.u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = Slice::new(&bytes);
        assert!(matches!(r.count(8), Err(FrameError::Corrupt { .. })));
    }
}
