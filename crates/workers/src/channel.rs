//! Channel workers: one OS thread per shard, bounded mpsc channels, and a
//! deterministic round barrier (requests sent to every worker, responses
//! drained in ascending shard id).
//!
//! # Interleaving stress
//!
//! When `USNAE_WORKER_DELAY_SEED` is set (to a `u64`) at transport
//! construction, every worker sleeps a seeded pseudo-random 0–500 µs
//! before each response. The delays scramble thread scheduling without
//! touching any message content, so a build under any seed must still be
//! byte-identical — the conformance suite's adversarial-scheduling leg.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::error::WorkerError;
use crate::proto::{Request, Response, ShardInit};
use crate::worker::ShardWorker;
use crate::Transport;

/// Tiny xorshift64 for the delay injector (no external RNG crates).
struct Xorshift(u64);

impl Xorshift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

struct ChannelWorker {
    // Both channel ends live in Options so teardown can drop them before
    // joining: a closed request channel unblocks a worker waiting for
    // work, a closed response channel unblocks one waiting to reply.
    tx: Option<SyncSender<Request>>,
    rx: Option<Receiver<Result<Response, WorkerError>>>,
    handle: Option<JoinHandle<()>>,
}

/// One thread per shard; the driver is the only peer every thread talks
/// to, so the exchange barrier is a plain send-all-then-receive-in-order.
pub struct ChannelTransport {
    workers: Vec<ChannelWorker>,
}

impl ChannelTransport {
    /// Spawns one worker thread per shard layout.
    pub fn new(inits: Vec<ShardInit>) -> Self {
        let delay_seed = std::env::var("USNAE_WORKER_DELAY_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok());
        let workers = inits
            .into_iter()
            .enumerate()
            .map(|(shard, init)| {
                let (req_tx, req_rx) = sync_channel::<Request>(1);
                let (resp_tx, resp_rx) = sync_channel::<Result<Response, WorkerError>>(1);
                let mut rng = delay_seed.map(|s| {
                    // Distinct nonzero stream per worker.
                    Xorshift(s.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (shard as u64 + 1))
                });
                let handle = std::thread::spawn(move || {
                    let mut worker = ShardWorker::new(init);
                    while let Ok(req) = req_rx.recv() {
                        let stop = matches!(req, Request::Shutdown);
                        let resp = worker.handle(req);
                        if let Some(rng) = rng.as_mut() {
                            std::thread::sleep(Duration::from_micros(rng.next() % 500));
                        }
                        if resp_tx.send(resp).is_err() || stop {
                            break;
                        }
                    }
                });
                ChannelWorker {
                    tx: Some(req_tx),
                    rx: Some(resp_rx),
                    handle: Some(handle),
                }
            })
            .collect();
        ChannelTransport { workers }
    }
}

impl Transport for ChannelTransport {
    fn name(&self) -> &'static str {
        "channel"
    }

    fn exchange(&mut self, reqs: Vec<Request>) -> Result<Vec<Response>, WorkerError> {
        assert_eq!(reqs.len(), self.workers.len(), "one request per shard");
        for (shard, (w, req)) in self.workers.iter().zip(reqs).enumerate() {
            w.tx.as_ref()
                .ok_or(WorkerError::Disconnected { shard })?
                .send(req)
                .map_err(|_| WorkerError::Disconnected { shard })?;
        }
        let mut resps = Vec::with_capacity(self.workers.len());
        for (shard, w) in self.workers.iter().enumerate() {
            let resp =
                w.rx.as_ref()
                    .ok_or(WorkerError::Disconnected { shard })?
                    .recv()
                    .map_err(|_| WorkerError::Disconnected { shard })??;
            resps.push(resp);
        }
        Ok(resps)
    }

    fn shutdown(&mut self) -> Result<(), WorkerError> {
        let resps = self.exchange(vec![Request::Shutdown; self.workers.len()])?;
        for (shard, resp) in resps.into_iter().enumerate() {
            if !matches!(resp, Response::Stopping) {
                return Err(WorkerError::Protocol {
                    shard,
                    reason: format!("expected Stopping, got {resp:?}"),
                });
            }
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
        Ok(())
    }
}

impl Drop for ChannelTransport {
    fn drop(&mut self) {
        // Dropping both channel ends unblocks a worker whether it is
        // waiting for a request or to deliver a response; joining
        // afterwards cannot hang.
        for w in &mut self.workers {
            w.tx = None;
            w.rx = None;
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}
