//! Process workers: one spawned `usnae-worker` child per shard, speaking
//! the length-prefixed binary protocol of [`crate::proto`] over
//! stdin/stdout pipes.
//!
//! Robust teardown is part of the contract: a child that dies, exits
//! nonzero, or emits a short/corrupt frame surfaces a typed
//! [`WorkerError`] — enriched with the child's exit status and captured
//! stderr when it is dead — and never leaves the driver blocked on a pipe
//! read. Dropping the transport kills and reaps every still-running child
//! (the kill-on-drop guard).

use std::io::Read;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

use crate::error::WorkerError;
use crate::proto::{read_response, write_request, Request, Response, ShardInit};
use crate::Transport;

/// Environment override for the worker executable path; without it the
/// binary is searched next to the current executable (covering
/// `target/{debug,release}` and their `deps/` test layout) and finally on
/// `PATH`.
pub const WORKER_BIN_ENV: &str = "USNAE_WORKER_BIN";

/// Resolves the `usnae-worker` executable.
pub fn worker_bin() -> PathBuf {
    if let Ok(p) = std::env::var(WORKER_BIN_ENV) {
        return PathBuf::from(p);
    }
    let name = format!("usnae-worker{}", std::env::consts::EXE_SUFFIX);
    if let Ok(exe) = std::env::current_exe() {
        // Test binaries live in target/<profile>/deps/, the CLI in
        // target/<profile>/ — check the sibling dir and its parent.
        let mut dir = exe.parent().map(PathBuf::from);
        for _ in 0..2 {
            if let Some(d) = dir {
                let candidate = d.join(&name);
                if candidate.is_file() {
                    return candidate;
                }
                dir = d.parent().map(PathBuf::from);
            } else {
                break;
            }
        }
    }
    PathBuf::from(name)
}

struct ChildWorker {
    child: Child,
    stdin: Option<ChildStdin>,
    stdout: Option<ChildStdout>,
}

impl ChildWorker {
    /// Kills and reaps the child, returning `(exit code, stderr)`.
    fn reap(&mut self) -> (Option<i32>, String) {
        // Close our pipe ends first so a child blocked on I/O unblocks.
        self.stdin = None;
        self.stdout = None;
        let _ = self.child.kill();
        let status = self.child.wait().ok();
        let mut stderr = String::new();
        if let Some(mut err) = self.child.stderr.take() {
            let _ = err.read_to_string(&mut stderr);
        }
        (status.and_then(|s| s.code()), stderr)
    }
}

impl Drop for ChildWorker {
    fn drop(&mut self) {
        // Kill-on-drop guard: never leak a worker process, even on an
        // error path that skipped the graceful shutdown.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One child process per shard; frames flow over stdin/stdout, stderr is
/// captured for post-mortem error reports.
pub struct ProcessTransport {
    children: Vec<ChildWorker>,
}

impl ProcessTransport {
    /// Spawns and initialises one worker process per shard layout.
    ///
    /// # Errors
    ///
    /// [`WorkerError`] when a child cannot be spawned or fails the
    /// `Init → Ready` handshake; children spawned so far are killed.
    pub fn new(inits: Vec<ShardInit>) -> Result<Self, WorkerError> {
        let bin = worker_bin();
        let mut transport = ProcessTransport {
            children: Vec::with_capacity(inits.len()),
        };
        for (shard, init) in inits.into_iter().enumerate() {
            let mut child = Command::new(&bin)
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::piped())
                .spawn()
                .map_err(WorkerError::Io)?;
            let stdin = child.stdin.take().expect("stdin piped");
            let stdout = child.stdout.take().expect("stdout piped");
            transport.children.push(ChildWorker {
                child,
                stdin: Some(stdin),
                stdout: Some(stdout),
            });
            let ready = transport.round_trip(shard, &Request::Init(init))?;
            if !matches!(ready, Response::Ready) {
                return Err(WorkerError::Protocol {
                    shard,
                    reason: format!("expected Ready after Init, got {ready:?}"),
                });
            }
        }
        Ok(transport)
    }

    /// If `shard`'s child is dead, converts `err` into
    /// [`WorkerError::WorkerExited`] with the exit status and stderr;
    /// otherwise kills the now-unusable child and keeps the frame error.
    fn enrich(&mut self, shard: usize, err: WorkerError) -> WorkerError {
        let child = &mut self.children[shard];
        let died = !matches!(child.child.try_wait(), Ok(None));
        let (code, stderr) = child.reap();
        if died || matches!(err, WorkerError::Io(_) | WorkerError::Truncated { .. }) {
            WorkerError::WorkerExited {
                shard,
                code,
                stderr,
            }
        } else {
            err
        }
    }

    fn send(&mut self, shard: usize, req: &Request) -> Result<(), WorkerError> {
        let r = match self.children[shard].stdin.as_mut() {
            Some(stdin) => write_request(stdin, req),
            None => Err(WorkerError::Disconnected { shard }),
        };
        r.map_err(|e| self.enrich(shard, e))
    }

    fn recv(&mut self, shard: usize) -> Result<Response, WorkerError> {
        let r = match self.children[shard].stdout.as_mut() {
            Some(stdout) => read_response(stdout),
            None => Err(WorkerError::Disconnected { shard }),
        };
        r.map_err(|e| self.enrich(shard, e))
    }

    fn round_trip(&mut self, shard: usize, req: &Request) -> Result<Response, WorkerError> {
        self.send(shard, req)?;
        self.recv(shard)
    }
}

impl Transport for ProcessTransport {
    fn name(&self) -> &'static str {
        "process"
    }

    fn exchange(&mut self, reqs: Vec<Request>) -> Result<Vec<Response>, WorkerError> {
        assert_eq!(reqs.len(), self.children.len(), "one request per shard");
        // Send everything first (children compute concurrently), then
        // drain responses in ascending shard id — the round barrier.
        for (shard, req) in reqs.iter().enumerate() {
            self.send(shard, req)?;
        }
        let mut resps = Vec::with_capacity(self.children.len());
        for shard in 0..self.children.len() {
            resps.push(self.recv(shard)?);
        }
        Ok(resps)
    }

    fn shutdown(&mut self) -> Result<(), WorkerError> {
        for shard in 0..self.children.len() {
            let resp = self.round_trip(shard, &Request::Shutdown)?;
            if !matches!(resp, Response::Stopping) {
                return Err(WorkerError::Protocol {
                    shard,
                    reason: format!("expected Stopping, got {resp:?}"),
                });
            }
            let child = &mut self.children[shard];
            child.stdin = None; // EOF lets the worker loop exit
            let status = child.child.wait().map_err(WorkerError::Io)?;
            if !status.success() {
                let (_, stderr) = child.reap();
                return Err(WorkerError::WorkerExited {
                    shard,
                    code: status.code(),
                    stderr,
                });
            }
        }
        Ok(())
    }
}
