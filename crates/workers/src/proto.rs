//! The typed message vocabulary and the binary wire codec.
//!
//! The process transport frames every message the way the core snapshot
//! codec frames a file — magic, version, a length-prefixed payload, and an
//! FNV-64 checksum over everything before the trailer — so a short read,
//! a stray byte, or a version skew surfaces as the same typed-error
//! taxonomy ([`WorkerError`]) instead of a hang:
//!
//! ```text
//! +----------+---------+------+-------------+-----------+----------+
//! | USNAEWKR | version | kind | payload_len | payload.. | checksum |
//! |  8 bytes |   u32   |  u8  |     u64     |           |   u64    |
//! +----------+---------+------+-------------+-----------+----------+
//! ```
//!
//! All integers are little-endian. The channel transport skips the wire
//! entirely (it moves the typed values), but both transports carry the
//! *same* `Request`/`Response` values, which is what makes their message
//! statistics and results identical.

use std::io::{Read, Write as IoWrite};

use usnae_graph::{Dist, VertexId};

use crate::error::WorkerError;
use crate::frame;

/// Frame magic: fixed 8 bytes, distinct from the snapshot codec's
/// `USNAESNP` so a worker pipe can never be confused with a cache file.
pub const MAGIC: &[u8; 8] = b"USNAEWKR";

/// Wire protocol version.
pub const VERSION: u32 = 1;

/// Frame header length: magic (8) + version (4) + kind (1) + payload len (8).
pub const HEADER_LEN: usize = frame::HEADER_LEN;

/// Wire size of one routed frontier [`Candidate`]: ball (4) + vertex (8) +
/// dist (8) + parent (8) + parent rank (8). Message statistics multiply
/// counts by this constant, so every transport reports identical bytes.
pub const CANDIDATE_WIRE_BYTES: u64 = 36;

/// Wire size of one rank-protocol key `(parent_rank, v)` plus its ball tag.
pub const KEY_WIRE_BYTES: u64 = 20;

/// Wire size of one rank-protocol reply rank.
pub const RANK_WIRE_BYTES: u64 = 8;

/// Wire size of one retained [`OutputRecord`]: index (8) + u (8) + v (8) +
/// weight (8) + phase (8) + kind (1) + charged_to (8). Message statistics
/// multiply record counts by this constant in both directions (retain and
/// fetch), so every transport reports identical bytes.
pub const RECORD_WIRE_BYTES: u64 = 49;

/// Everything a worker needs to own one shard: its id, the global vertex
/// range it owns, and its local CSR arrays (global vertex ids in the
/// adjacency, exactly as [`usnae_graph::partition::CsrShard`] stores them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardInit {
    /// This worker's shard id.
    pub shard: usize,
    /// Total number of shards in the pool.
    pub num_shards: usize,
    /// Vertex count of the full graph.
    pub num_vertices: usize,
    /// First owned vertex (inclusive).
    pub start: VertexId,
    /// One past the last owned vertex.
    pub end: VertexId,
    /// Local CSR offsets, `end - start + 1` entries.
    pub offsets: Vec<usize>,
    /// Local CSR adjacency (global vertex ids).
    pub adjacency: Vec<VertexId>,
}

/// Which exploration primitive a round sequence computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Sorted distance balls (the `par::balls` contract): per ball, every
    /// `(v, dist)` with `dist <= depth`, sorted by vertex id.
    Balls,
    /// Full BFS explorations (the `Exploration::run` contract): balls plus
    /// FIFO-exact BFS-tree parents, resolved through the rank protocol.
    Explorations,
}

impl Task {
    fn code(self) -> u8 {
        match self {
            Task::Balls => 0,
            Task::Explorations => 1,
        }
    }

    fn from_code(b: u8) -> Option<Task> {
        match b {
            0 => Some(Task::Balls),
            1 => Some(Task::Explorations),
            _ => None,
        }
    }
}

/// One frontier entry routed between shards (or buffered locally): vertex
/// `v` of ball `ball` is reachable at distance `dist` from parent
/// `parent`, whose rank in the previous level's FIFO queue is
/// `parent_rank`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Ball index within the current task (dense, driver-assigned).
    pub ball: u32,
    /// The candidate vertex.
    pub v: VertexId,
    /// Its tentative distance (= current level + 1).
    pub dist: Dist,
    /// The expanding parent vertex.
    pub parent: VertexId,
    /// The parent's FIFO-queue rank within its level (0-based).
    pub parent_rank: u64,
}

/// One record of a build's output insertion stream, in the transport's
/// integer-tuple form (the driver's edge/provenance types live above this
/// crate): the record's position in the original stream plus the edge
/// `(u, v, weight)` and its provenance `(phase, kind code, charged_to)`.
///
/// Workers hold these as their **retained output partition**: the driver
/// ships each worker the records whose `u` endpoint it owns
/// ([`Request::Retain`]) and streams them back lazily at finish
/// ([`Request::FetchRetained`]), merging by `index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutputRecord {
    /// Position in the original insertion stream (the merge key).
    pub index: u64,
    /// Lower edge endpoint (canonicalized `u <= v`); ownership key.
    pub u: u64,
    /// Upper edge endpoint.
    pub v: u64,
    /// Edge weight.
    pub weight: u64,
    /// Construction phase that inserted the edge.
    pub phase: u64,
    /// Edge-kind code (the driver's `EdgeKind::code`).
    pub kind: u8,
    /// Vertex the insertion was charged to.
    pub charged_to: u64,
}

/// Driver → worker messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Ship the shard layout; the worker replies [`Response::Ready`].
    Init(ShardInit),
    /// Begin a task: seed the given `(ball, source)` pairs (only sources
    /// this worker owns are listed) and expand level 0.
    Start {
        /// Which primitive to compute.
        task: Task,
        /// Exploration depth bound.
        depth: Dist,
        /// Total balls in this task (every worker tracks all of them).
        num_balls: u32,
        /// Owned sources: `(ball, source vertex)`.
        sources: Vec<(u32, VertexId)>,
    },
    /// One frontier round: candidates routed to this worker, grouped by
    /// origin shard in ascending shard id (the deterministic drain order).
    Round {
        /// `(origin shard, candidates)` batches, ascending origin.
        batches: Vec<(usize, Vec<Candidate>)>,
    },
    /// Rank-protocol reply (Explorations only): per ball, the global FIFO
    /// ranks of the keys this worker submitted, in submission order.
    Ranks {
        /// `(ball, ranks)` in the same ball order the worker used in its
        /// [`Response::Settled`].
        ranks: Vec<(u32, Vec<u64>)>,
    },
    /// Return the accumulated results for the current task.
    Collect,
    /// Append these records (all owned by this worker) to the worker's
    /// retained output partition; the worker replies
    /// [`Response::Retained`] with its new partition size.
    Retain {
        /// Records to retain, ascending by `index`.
        records: Vec<OutputRecord>,
    },
    /// Stream a slice of the retained partition back: up to `max` records
    /// starting at `offset` (stateless, so a slice can be re-fetched);
    /// the worker replies [`Response::RetainedPart`].
    FetchRetained {
        /// First record to return (position within the partition).
        offset: u64,
        /// Maximum records to return.
        max: u64,
    },
    /// Tear down; the worker replies [`Response::Stopping`] and exits.
    Shutdown,
}

/// Worker → driver messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Init acknowledged.
    Ready,
    /// Round output: candidates for *other* shards plus whether this
    /// worker still has work queued locally for the next level.
    Expanded {
        /// Candidates owned by other shards, ascending `(ball, v)` within
        /// each destination's slice (already deduplicated per `(ball, v)`
        /// keeping the minimum parent rank).
        outgoing: Vec<Candidate>,
        /// True when this worker has a non-empty next-level frontier.
        pending: bool,
    },
    /// Rank-protocol submission (Explorations only): per ball, the keys
    /// `(parent_rank, v)` of vertices settled this round, sorted.
    Settled {
        /// `(ball, sorted keys)` for every ball with settlements.
        keys: Vec<(u32, Vec<(u64, VertexId)>)>,
    },
    /// Collected results: per ball, the owned settled vertices
    /// `(v, dist, parent + 1)` sorted by vertex id (`0` encodes "no
    /// parent", i.e. the source).
    Results {
        /// One vector per ball, ball order.
        balls: Vec<Vec<(VertexId, Dist, u64)>>,
    },
    /// Retain acknowledged: the worker's retained partition now holds
    /// `held` records.
    Retained {
        /// Total records in this worker's retained partition.
        held: u64,
    },
    /// One slice of the retained partition, in partition order.
    RetainedPart {
        /// The requested records (empty when `offset` is past the end).
        records: Vec<OutputRecord>,
        /// Total records in this worker's retained partition.
        total: u64,
    },
    /// Shutdown acknowledged.
    Stopping,
}

// ---------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------

/// Little-endian payload writer (the codec's framing conventions, local
/// copy — the snapshot codec's writer is private to `usnae_core`).
struct Wire {
    buf: Vec<u8>,
}

impl Wire {
    fn new() -> Self {
        Wire { buf: Vec::new() }
    }

    fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    fn u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    fn usize(&mut self, x: usize) {
        self.u64(x as u64);
    }
}

/// Bounds-checked little-endian payload reader.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WorkerError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(WorkerError::Truncated { offset: self.pos })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WorkerError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WorkerError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, WorkerError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn usize(&mut self) -> Result<usize, WorkerError> {
        let x = self.u64()?;
        usize::try_from(x).map_err(|_| WorkerError::Corrupt {
            reason: format!("length {x} does not fit in usize"),
        })
    }

    /// A collection count, sanity-bounded against the remaining payload so
    /// a corrupt length cannot trigger a giant allocation.
    fn count(&mut self, min_elem_bytes: usize) -> Result<usize, WorkerError> {
        let n = self.usize()?;
        let remaining = self.buf.len() - self.pos;
        if min_elem_bytes > 0 && n > remaining / min_elem_bytes {
            return Err(WorkerError::Corrupt {
                reason: format!("count {n} exceeds remaining payload ({remaining} bytes)"),
            });
        }
        Ok(n)
    }

    fn finish(self) -> Result<(), WorkerError> {
        if self.pos != self.buf.len() {
            return Err(WorkerError::Corrupt {
                reason: format!(
                    "trailing garbage: consumed {} of {} payload bytes",
                    self.pos,
                    self.buf.len()
                ),
            });
        }
        Ok(())
    }
}

fn put_candidates(w: &mut Wire, cs: &[Candidate]) {
    w.usize(cs.len());
    for c in cs {
        w.u32(c.ball);
        w.usize(c.v);
        w.u64(c.dist);
        w.usize(c.parent);
        w.u64(c.parent_rank);
    }
}

fn get_candidates(r: &mut Cursor<'_>) -> Result<Vec<Candidate>, WorkerError> {
    let n = r.count(CANDIDATE_WIRE_BYTES as usize)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(Candidate {
            ball: r.u32()?,
            v: r.usize()?,
            dist: r.u64()?,
            parent: r.usize()?,
            parent_rank: r.u64()?,
        });
    }
    Ok(out)
}

fn put_records(w: &mut Wire, rs: &[OutputRecord]) {
    w.usize(rs.len());
    for rec in rs {
        w.u64(rec.index);
        w.u64(rec.u);
        w.u64(rec.v);
        w.u64(rec.weight);
        w.u64(rec.phase);
        w.u8(rec.kind);
        w.u64(rec.charged_to);
    }
}

fn get_records(r: &mut Cursor<'_>) -> Result<Vec<OutputRecord>, WorkerError> {
    let n = r.count(RECORD_WIRE_BYTES as usize)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(OutputRecord {
            index: r.u64()?,
            u: r.u64()?,
            v: r.u64()?,
            weight: r.u64()?,
            phase: r.u64()?,
            kind: r.u8()?,
            charged_to: r.u64()?,
        });
    }
    Ok(out)
}

impl Request {
    fn kind(&self) -> u8 {
        match self {
            Request::Init(_) => 0,
            Request::Start { .. } => 1,
            Request::Round { .. } => 2,
            Request::Ranks { .. } => 3,
            Request::Collect => 4,
            Request::Shutdown => 5,
            Request::Retain { .. } => 6,
            Request::FetchRetained { .. } => 7,
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut w = Wire::new();
        match self {
            Request::Init(init) => {
                w.usize(init.shard);
                w.usize(init.num_shards);
                w.usize(init.num_vertices);
                w.usize(init.start);
                w.usize(init.end);
                w.usize(init.offsets.len());
                for &o in &init.offsets {
                    w.usize(o);
                }
                w.usize(init.adjacency.len());
                for &v in &init.adjacency {
                    w.usize(v);
                }
            }
            Request::Start {
                task,
                depth,
                num_balls,
                sources,
            } => {
                w.u8(task.code());
                w.u64(*depth);
                w.u32(*num_balls);
                w.usize(sources.len());
                for &(ball, src) in sources {
                    w.u32(ball);
                    w.usize(src);
                }
            }
            Request::Round { batches } => {
                w.usize(batches.len());
                for (origin, cs) in batches {
                    w.usize(*origin);
                    put_candidates(&mut w, cs);
                }
            }
            Request::Ranks { ranks } => {
                w.usize(ranks.len());
                for (ball, rs) in ranks {
                    w.u32(*ball);
                    w.usize(rs.len());
                    for &r in rs {
                        w.u64(r);
                    }
                }
            }
            Request::Retain { records } => put_records(&mut w, records),
            Request::FetchRetained { offset, max } => {
                w.u64(*offset);
                w.u64(*max);
            }
            Request::Collect | Request::Shutdown => {}
        }
        w.buf
    }

    fn decode(kind: u8, payload: &[u8]) -> Result<Request, WorkerError> {
        let mut r = Cursor::new(payload);
        let req = match kind {
            0 => {
                let shard = r.usize()?;
                let num_shards = r.usize()?;
                let num_vertices = r.usize()?;
                let start = r.usize()?;
                let end = r.usize()?;
                let no = r.count(8)?;
                let mut offsets = Vec::with_capacity(no);
                for _ in 0..no {
                    offsets.push(r.usize()?);
                }
                let na = r.count(8)?;
                let mut adjacency = Vec::with_capacity(na);
                for _ in 0..na {
                    adjacency.push(r.usize()?);
                }
                Request::Init(ShardInit {
                    shard,
                    num_shards,
                    num_vertices,
                    start,
                    end,
                    offsets,
                    adjacency,
                })
            }
            1 => {
                let code = r.u8()?;
                let task = Task::from_code(code).ok_or_else(|| WorkerError::Corrupt {
                    reason: format!("unknown task code {code}"),
                })?;
                let depth = r.u64()?;
                let num_balls = r.u32()?;
                let n = r.count(12)?;
                let mut sources = Vec::with_capacity(n);
                for _ in 0..n {
                    sources.push((r.u32()?, r.usize()?));
                }
                Request::Start {
                    task,
                    depth,
                    num_balls,
                    sources,
                }
            }
            2 => {
                let nb = r.count(16)?;
                let mut batches = Vec::with_capacity(nb);
                for _ in 0..nb {
                    let origin = r.usize()?;
                    batches.push((origin, get_candidates(&mut r)?));
                }
                Request::Round { batches }
            }
            3 => {
                let nb = r.count(12)?;
                let mut ranks = Vec::with_capacity(nb);
                for _ in 0..nb {
                    let ball = r.u32()?;
                    let nr = r.count(8)?;
                    let mut rs = Vec::with_capacity(nr);
                    for _ in 0..nr {
                        rs.push(r.u64()?);
                    }
                    ranks.push((ball, rs));
                }
                Request::Ranks { ranks }
            }
            4 => Request::Collect,
            5 => Request::Shutdown,
            6 => Request::Retain {
                records: get_records(&mut r)?,
            },
            7 => Request::FetchRetained {
                offset: r.u64()?,
                max: r.u64()?,
            },
            _ => {
                return Err(WorkerError::Corrupt {
                    reason: format!("unknown request kind {kind}"),
                })
            }
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    fn kind(&self) -> u8 {
        match self {
            Response::Ready => 0,
            Response::Expanded { .. } => 1,
            Response::Settled { .. } => 2,
            Response::Results { .. } => 3,
            Response::Stopping => 4,
            Response::Retained { .. } => 5,
            Response::RetainedPart { .. } => 6,
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut w = Wire::new();
        match self {
            Response::Ready | Response::Stopping => {}
            Response::Expanded { outgoing, pending } => {
                w.u8(u8::from(*pending));
                put_candidates(&mut w, outgoing);
            }
            Response::Settled { keys } => {
                w.usize(keys.len());
                for (ball, ks) in keys {
                    w.u32(*ball);
                    w.usize(ks.len());
                    for &(rank, v) in ks {
                        w.u64(rank);
                        w.usize(v);
                    }
                }
            }
            Response::Results { balls } => {
                w.usize(balls.len());
                for ball in balls {
                    w.usize(ball.len());
                    for &(v, dist, parent) in ball {
                        w.usize(v);
                        w.u64(dist);
                        w.u64(parent);
                    }
                }
            }
            Response::Retained { held } => w.u64(*held),
            Response::RetainedPart { records, total } => {
                w.u64(*total);
                put_records(&mut w, records);
            }
        }
        w.buf
    }

    fn decode(kind: u8, payload: &[u8]) -> Result<Response, WorkerError> {
        let mut r = Cursor::new(payload);
        let resp = match kind {
            0 => Response::Ready,
            1 => {
                let pending = r.u8()? != 0;
                let outgoing = get_candidates(&mut r)?;
                Response::Expanded { outgoing, pending }
            }
            2 => {
                let nb = r.count(12)?;
                let mut keys = Vec::with_capacity(nb);
                for _ in 0..nb {
                    let ball = r.u32()?;
                    let nk = r.count(16)?;
                    let mut ks = Vec::with_capacity(nk);
                    for _ in 0..nk {
                        ks.push((r.u64()?, r.usize()?));
                    }
                    keys.push((ball, ks));
                }
                Response::Settled { keys }
            }
            3 => {
                let nb = r.count(8)?;
                let mut balls = Vec::with_capacity(nb);
                for _ in 0..nb {
                    let n = r.count(24)?;
                    let mut ball = Vec::with_capacity(n);
                    for _ in 0..n {
                        ball.push((r.usize()?, r.u64()?, r.u64()?));
                    }
                    balls.push(ball);
                }
                Response::Results { balls }
            }
            4 => Response::Stopping,
            5 => Response::Retained { held: r.u64()? },
            6 => {
                let total = r.u64()?;
                let records = get_records(&mut r)?;
                Response::RetainedPart { records, total }
            }
            _ => {
                return Err(WorkerError::Corrupt {
                    reason: format!("unknown response kind {kind}"),
                })
            }
        };
        r.finish()?;
        Ok(resp)
    }
}

/// Frames and writes one message under the worker magic/version via the
/// shared grammar ([`crate::frame`]).
fn write_frame(out: &mut impl IoWrite, kind: u8, payload: &[u8]) -> Result<(), WorkerError> {
    frame::write_frame(out, MAGIC, VERSION, kind, payload).map_err(WorkerError::from)
}

/// Writes one [`Request`] frame.
pub fn write_request(out: &mut impl IoWrite, req: &Request) -> Result<(), WorkerError> {
    write_frame(out, req.kind(), &req.payload())
}

/// Writes one [`Response`] frame.
pub fn write_response(out: &mut impl IoWrite, resp: &Response) -> Result<(), WorkerError> {
    write_frame(out, resp.kind(), &resp.payload())
}

/// Reads and validates one frame via the shared grammar, returning
/// `(kind, payload)`. `Ok(None)` means clean EOF at a frame boundary
/// (the peer closed its pipe between messages). Anything else malformed
/// is a typed error.
fn read_frame(input: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>, WorkerError> {
    frame::read_frame(input, MAGIC, VERSION).map_err(WorkerError::from)
}

/// Reads one [`Request`] frame; `Ok(None)` on clean EOF.
pub fn read_request(input: &mut impl Read) -> Result<Option<Request>, WorkerError> {
    match read_frame(input)? {
        None => Ok(None),
        Some((kind, payload)) => Request::decode(kind, &payload).map(Some),
    }
}

/// Reads one [`Response`] frame; clean EOF is an error for the driver
/// (a worker must answer every request), reported as a zero-offset
/// truncation so the transport can enrich it with the exit status.
pub fn read_response(input: &mut impl Read) -> Result<Response, WorkerError> {
    match read_frame(input)? {
        None => Err(WorkerError::Truncated { offset: 0 }),
        Some((kind, payload)) => Response::decode(kind, &payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usnae_graph::metrics::Fnv64;

    fn round_trip_request(req: Request) {
        let mut buf = Vec::new();
        write_request(&mut buf, &req).unwrap();
        let got = read_request(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(got, req);
    }

    fn round_trip_response(resp: Response) {
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        let got = read_response(&mut buf.as_slice()).unwrap();
        assert_eq!(got, resp);
    }

    fn sample_candidate() -> Candidate {
        Candidate {
            ball: 3,
            v: 17,
            dist: 2,
            parent: 9,
            parent_rank: 5,
        }
    }

    fn sample_record(index: u64) -> OutputRecord {
        OutputRecord {
            index,
            u: 4,
            v: 11,
            weight: 3,
            phase: 1,
            kind: 2,
            charged_to: 4,
        }
    }

    #[test]
    fn every_message_kind_round_trips() {
        round_trip_request(Request::Init(ShardInit {
            shard: 1,
            num_shards: 4,
            num_vertices: 10,
            start: 3,
            end: 6,
            offsets: vec![0, 2, 4, 5],
            adjacency: vec![0, 4, 3, 9, 1],
        }));
        round_trip_request(Request::Start {
            task: Task::Explorations,
            depth: 7,
            num_balls: 2,
            sources: vec![(0, 4), (1, 5)],
        });
        round_trip_request(Request::Round {
            batches: vec![(0, vec![sample_candidate()]), (2, vec![])],
        });
        round_trip_request(Request::Ranks {
            ranks: vec![(0, vec![0, 3, 4]), (1, vec![])],
        });
        round_trip_request(Request::Collect);
        round_trip_request(Request::Retain {
            records: vec![sample_record(0), sample_record(7)],
        });
        round_trip_request(Request::Retain { records: vec![] });
        round_trip_request(Request::FetchRetained { offset: 3, max: 64 });
        round_trip_request(Request::Shutdown);

        round_trip_response(Response::Ready);
        round_trip_response(Response::Expanded {
            outgoing: vec![sample_candidate(), sample_candidate()],
            pending: true,
        });
        round_trip_response(Response::Settled {
            keys: vec![(0, vec![(0, 4), (2, 7)]), (1, vec![])],
        });
        round_trip_response(Response::Results {
            balls: vec![vec![(3, 0, 0), (4, 1, 4)], vec![]],
        });
        round_trip_response(Response::Retained { held: 12 });
        round_trip_response(Response::RetainedPart {
            records: vec![sample_record(5)],
            total: 9,
        });
        round_trip_response(Response::RetainedPart {
            records: vec![],
            total: 0,
        });
        round_trip_response(Response::Stopping);
    }

    #[test]
    fn clean_eof_is_none_for_requests_and_truncated_for_responses() {
        let empty: &[u8] = &[];
        assert!(read_request(&mut { empty }).unwrap().is_none());
        match read_response(&mut { empty }) {
            Err(WorkerError::Truncated { offset: 0 }) => {}
            other => panic!("expected zero-offset truncation, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_frames_surface_typed_errors() {
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Collect).unwrap();

        // Bad magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_request(&mut bad.as_slice()),
            Err(WorkerError::BadMagic)
        ));

        // Unsupported version.
        let mut bad = buf.clone();
        bad[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            read_request(&mut bad.as_slice()),
            Err(WorkerError::UnsupportedVersion {
                found: 99,
                supported: VERSION
            })
        ));

        // Truncated mid-frame.
        let bad = &buf[..buf.len() - 3];
        assert!(matches!(
            read_request(&mut { bad }),
            Err(WorkerError::Truncated { .. })
        ));

        // Flipped payload-adjacent byte → checksum mismatch.
        let mut buf2 = Vec::new();
        write_request(
            &mut buf2,
            &Request::Start {
                task: Task::Balls,
                depth: 1,
                num_balls: 1,
                sources: vec![(0, 0)],
            },
        )
        .unwrap();
        let mid = HEADER_LEN + 2;
        buf2[mid] ^= 0xFF;
        assert!(matches!(
            read_request(&mut buf2.as_slice()),
            Err(WorkerError::ChecksumMismatch { .. })
        ));

        // Unknown kind byte (checksum recomputed so it survives framing).
        let payload: &[u8] = &[];
        let mut frame = Vec::new();
        frame.extend_from_slice(MAGIC);
        frame.extend_from_slice(&VERSION.to_le_bytes());
        frame.push(200);
        frame.extend_from_slice(&0u64.to_le_bytes());
        frame.extend_from_slice(payload);
        let mut h = Fnv64::new();
        h.write_bytes(&frame);
        frame.extend_from_slice(&h.finish().to_le_bytes());
        assert!(matches!(
            read_request(&mut frame.as_slice()),
            Err(WorkerError::Corrupt { .. })
        ));
    }

    #[test]
    fn candidate_wire_size_matches_the_constant() {
        let mut w = Wire::new();
        put_candidates(&mut w, &[sample_candidate()]);
        // 8 bytes of count prefix + one candidate.
        assert_eq!(w.buf.len() as u64, 8 + CANDIDATE_WIRE_BYTES);
    }

    #[test]
    fn record_wire_size_matches_the_constant() {
        let mut w = Wire::new();
        put_records(&mut w, &[sample_record(1)]);
        // 8 bytes of count prefix + one record.
        assert_eq!(w.buf.len() as u64, 8 + RECORD_WIRE_BYTES);
    }
}
