//! The per-shard worker process: reads framed [`Request`]s, answers
//! framed [`Response`]s, and exits nonzero with a diagnostic on stderr
//! for any protocol violation — the driver's teardown path turns that
//! into a typed `WorkerExited` error.
//!
//! Two serve modes over the same loop:
//!
//! * default — frames over stdin/stdout (the process transport);
//! * `--listen ADDR` — bind a TCP listener (`127.0.0.1:0` for an
//!   ephemeral loopback port), announce the bound address on stdout as
//!   `USNAE-WORKER LISTEN <addr>`, accept one connection, and serve
//!   frames over it (the socket transport; also the entry point for
//!   pre-started remote workers behind `--workers-addr`).
//!
//! # Fault injection
//!
//! When `USNAE_WORKER_KILL_SEED` is set (to a `u64`), the worker aborts
//! the whole process after a seeded pseudo-random number of post-`Init`
//! requests, without answering — the conformance suite's kill-injection
//! stress leg, which must surface as a typed error at the driver within
//! its timeout, never a hang.

use std::io::{Read, Write};
use std::net::TcpListener;
use std::process::ExitCode;

use usnae_workers::proto::{read_request, write_response, Request, Response};
use usnae_workers::socket::LISTEN_PREFIX;
use usnae_workers::{ShardWorker, WorkerError};

/// Seeded abrupt-death injector (see the module docs).
const KILL_SEED_ENV: &str = "USNAE_WORKER_KILL_SEED";

/// Exit code of an injected kill, distinct from the generic failure exit.
const KILL_EXIT_CODE: i32 = 17;

struct KillSwitch {
    remaining: u64,
}

impl KillSwitch {
    /// Arms the switch from the environment seed and this worker's shard
    /// id: die after 1..=5 post-`Init` requests, a distinct nonzero
    /// stream per shard (the same xorshift mixing as the delay injector).
    fn arm(shard: usize) -> Option<KillSwitch> {
        let seed = std::env::var(KILL_SEED_ENV)
            .ok()
            .and_then(|v| v.parse::<u64>().ok())?;
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (shard as u64 + 1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        Some(KillSwitch {
            remaining: x % 5 + 1,
        })
    }

    /// Ticks one request; exits the process abruptly when the fuse burns.
    fn tick(&mut self) {
        self.remaining = self.remaining.saturating_sub(1);
        if self.remaining == 0 {
            let _ = writeln!(std::io::stderr(), "usnae-worker: injected kill");
            std::process::exit(KILL_EXIT_CODE);
        }
    }
}

fn serve(input: &mut impl Read, output: &mut impl Write) -> Result<(), WorkerError> {
    // First frame must be Init: it carries the shard layout this worker
    // owns for the rest of its life.
    let worker = match read_request(input)? {
        None => return Ok(()), // driver went away before initialising us
        Some(Request::Init(init)) => ShardWorker::new(init),
        Some(other) => {
            return Err(WorkerError::Corrupt {
                reason: format!("first request must be Init, got {other:?}"),
            })
        }
    };
    let mut kill = KillSwitch::arm(worker.shard());
    write_response(output, &Response::Ready)?;
    let mut worker = worker;
    loop {
        let req = match read_request(input)? {
            // Clean EOF at a frame boundary: driver closed our pipe or
            // socket after (or instead of) a graceful shutdown.
            None => return Ok(()),
            Some(req) => req,
        };
        if let Some(kill) = kill.as_mut() {
            kill.tick();
        }
        let stop = matches!(req, Request::Shutdown);
        let resp = worker.handle(req)?;
        write_response(output, &resp)?;
        if stop {
            return Ok(());
        }
    }
}

/// `--listen ADDR`: bind, announce, accept one connection, serve it.
fn serve_listener(addr: &str) -> Result<(), WorkerError> {
    let listener = TcpListener::bind(addr).map_err(WorkerError::Io)?;
    let local = listener.local_addr().map_err(WorkerError::Io)?;
    {
        let mut stdout = std::io::stdout().lock();
        writeln!(stdout, "{LISTEN_PREFIX}{local}").map_err(WorkerError::Io)?;
        stdout.flush().map_err(WorkerError::Io)?;
    }
    let (stream, _peer) = listener.accept().map_err(WorkerError::Io)?;
    stream.set_nodelay(true).map_err(WorkerError::Io)?;
    let mut reader = stream.try_clone().map_err(WorkerError::Io)?;
    let mut writer = stream;
    serve(&mut reader, &mut writer)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [] => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let mut stdin = stdin.lock();
            let mut stdout = stdout.lock();
            serve(&mut stdin, &mut stdout)
        }
        [flag, addr] if flag == "--listen" => serve_listener(addr),
        _ => Err(WorkerError::Corrupt {
            reason: format!("usage: usnae-worker [--listen ADDR], got {args:?}"),
        }),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            let _ = writeln!(std::io::stderr(), "usnae-worker: {e}");
            ExitCode::FAILURE
        }
    }
}
