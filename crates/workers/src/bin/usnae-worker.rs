//! The per-shard worker process: reads framed [`Request`]s from stdin,
//! answers framed [`Response`]s on stdout, and exits nonzero with a
//! diagnostic on stderr for any protocol violation — the driver's
//! teardown path turns that into a typed `WorkerExited` error.

use std::io::{StdinLock, StdoutLock, Write};
use std::process::ExitCode;

use usnae_workers::proto::{read_request, write_response, Request, Response};
use usnae_workers::{ShardWorker, WorkerError};

fn serve(stdin: &mut StdinLock<'_>, stdout: &mut StdoutLock<'_>) -> Result<(), WorkerError> {
    // First frame must be Init: it carries the shard layout this worker
    // owns for the rest of its life.
    let worker = match read_request(stdin)? {
        None => return Ok(()), // driver went away before initialising us
        Some(Request::Init(init)) => ShardWorker::new(init),
        Some(other) => {
            return Err(WorkerError::Corrupt {
                reason: format!("first request must be Init, got {other:?}"),
            })
        }
    };
    write_response(stdout, &Response::Ready)?;
    let mut worker = worker;
    loop {
        let req = match read_request(stdin)? {
            // Clean EOF at a frame boundary: driver closed our stdin
            // after (or instead of) a graceful shutdown.
            None => return Ok(()),
            Some(req) => req,
        };
        let stop = matches!(req, Request::Shutdown);
        let resp = worker.handle(req)?;
        write_response(stdout, &resp)?;
        if stop {
            return Ok(());
        }
    }
}

fn main() -> ExitCode {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut stdin = stdin.lock();
    let mut stdout = stdout.lock();
    match serve(&mut stdin, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            let _ = writeln!(std::io::stderr(), "usnae-worker: {e}");
            ExitCode::FAILURE
        }
    }
}
