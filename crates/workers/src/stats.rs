//! Transport selection and measured message statistics.

/// Which execution substrate runs the sharded exploration phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TransportKind {
    /// The in-process fan-out (`usnae_graph::par`) — the historical path;
    /// shard-to-shard traffic is routed reads, nothing is measured.
    #[default]
    Inproc,
    /// One OS thread per shard with bounded mpsc channels.
    Channel,
    /// One spawned `usnae-worker` child process per shard, speaking the
    /// length-prefixed binary protocol over stdin/stdout.
    Process,
    /// One TCP connection per shard, framing the same binary protocol
    /// over a socket: loopback-spawned `usnae-worker --listen` children
    /// by default, or pre-started remote workers via `USNAE_WORKERS_ADDR`.
    Socket,
}

impl TransportKind {
    /// All kinds, stable order (CLI help and test matrices iterate this).
    pub fn all() -> [TransportKind; 4] {
        [
            TransportKind::Inproc,
            TransportKind::Channel,
            TransportKind::Process,
            TransportKind::Socket,
        ]
    }

    /// Stable name (`"inproc"` / `"channel"` / `"process"` / `"socket"`).
    pub fn name(&self) -> &'static str {
        match self {
            TransportKind::Inproc => "inproc",
            TransportKind::Channel => "channel",
            TransportKind::Process => "process",
            TransportKind::Socket => "socket",
        }
    }

    /// Parses a [`name`](Self::name) back into the kind.
    pub fn parse(s: &str) -> Option<TransportKind> {
        TransportKind::all().into_iter().find(|k| k.name() == s)
    }

    /// Single-byte code for the snapshot codec.
    pub fn code(&self) -> u8 {
        match self {
            TransportKind::Inproc => 0,
            TransportKind::Channel => 1,
            TransportKind::Process => 2,
            TransportKind::Socket => 3,
        }
    }

    /// Inverse of [`code`](Self::code).
    pub fn from_code(b: u8) -> Option<TransportKind> {
        TransportKind::all().into_iter().find(|k| k.code() == b)
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Measured frontier traffic between one ordered shard pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PairStats {
    /// Source shard.
    pub src: usize,
    /// Destination shard.
    pub dst: usize,
    /// Frontier candidates routed `src → dst`.
    pub messages: u64,
    /// Wire bytes of those candidates.
    pub bytes: u64,
}

/// Measured message complexity of one worker-pool build: what the CONGEST
/// reproduction previously only *simulated*.
///
/// `messages`/`bytes` totals also include the rank-protocol traffic
/// (per-level key submissions and rank replies, which flow through the
/// driver rather than between worker pairs), so the totals are `>=` the
/// sum over `pairs`. Counts are computed by the driver from message counts
/// times fixed wire sizes — identical for every transport.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MessageStats {
    /// Exchange barriers driven (start / frontier / rank rounds).
    pub rounds: u64,
    /// Total messages (frontier candidates + rank keys + rank replies).
    pub messages: u64,
    /// Total wire bytes of those messages.
    pub bytes: u64,
    /// Worker-to-worker frontier traffic per ordered shard pair,
    /// ascending `(src, dst)`; pairs with no traffic are omitted.
    pub pairs: Vec<PairStats>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_and_codes_round_trip() {
        for k in TransportKind::all() {
            assert_eq!(TransportKind::parse(k.name()), Some(k));
            assert_eq!(TransportKind::from_code(k.code()), Some(k));
            assert_eq!(k.to_string(), k.name());
        }
        assert_eq!(TransportKind::parse("carrier-pigeon"), None);
        assert_eq!(TransportKind::from_code(9), None);
        assert_eq!(TransportKind::default(), TransportKind::Inproc);
    }
}
