//! Multi-worker shard runtime with explicit frontier-message exchange.
//!
//! PR 5's [`usnae_graph::partition::ShardedCsr`] gave every build a
//! per-worker CSR shard layout with cut-edge frontier lists, but the
//! exploration work still ran in one process through a shared in-process
//! fan-out, so shard-to-shard communication stayed *simulated*. This crate
//! moves each shard's exploration work to its **owning worker** and
//! exchanges cut-edge frontier data as explicit typed messages, making
//! round and message counts **measured** quantities.
//!
//! Three layers:
//!
//! * [`proto`] — the typed message vocabulary ([`Request`] / [`Response`] /
//!   [`Candidate`]) and the length-prefixed binary wire codec the process
//!   transport speaks (magic, version, per-frame FNV-64 checksum — the same
//!   framing conventions as the `usnae_core::cache` snapshot codec).
//! * [`worker`] — [`ShardWorker`]: the per-shard state machine that runs
//!   level-synchronous bounded BFS over its local CSR arrays, absorbing
//!   incoming frontier candidates and emitting outgoing ones each round.
//! * Three [`Transport`]s behind one trait, driven by the [`WorkerPool`]:
//!   [`channel::ChannelTransport`] (one OS thread per shard, bounded mpsc
//!   channels), [`process::ProcessTransport`] (spawned `usnae-worker`
//!   child processes over stdin/stdout pipes, kill-on-drop), and
//!   [`socket::SocketTransport`] (the same framed protocol over TCP —
//!   loopback-spawned `usnae-worker --listen` children by default,
//!   pre-started remote workers via `USNAE_WORKERS_ADDR`).
//!
//! Workers also hold **output partitions**: at round end the driver ships
//! each worker the output records it owns ([`Request::Retain`]) and
//! streams them back lazily ([`Request::FetchRetained`]), so a build's
//! output can stay sharded across the pool until a consumer merges it.
//!
//! # Determinism contract
//!
//! For every transport, shard count, and worker interleaving, the results
//! returned by [`WorkerPool::balls`] and [`WorkerPool::explorations`] are
//! **byte-identical** to the in-process references
//! ([`usnae_graph::par::balls`] and the FIFO-BFS `Exploration` in
//! `usnae_core`). The mechanisms:
//!
//! * BFS levels advance in lockstep (one exchange barrier per level), so
//!   distances are interleaving-independent by construction;
//! * BFS-tree parents are resolved by a *rank* protocol: each candidate
//!   carries its parent's position in the FIFO queue order of the previous
//!   level, the owner picks the minimum (first-in-queue wins, exactly the
//!   sequential FIFO rule), and a driver-assisted global sort assigns the
//!   next level's queue ranks;
//! * every merge (frontier batches, rank keys, collected balls) drains in
//!   ascending shard id, and workers never iterate hash maps when
//!   producing output.
//!
//! Message statistics ([`MessageStats`]) are computed by the driver from
//! message *counts* times fixed wire sizes, so the channel and process
//! transports report identical numbers for the same build.

pub mod channel;
pub mod error;
pub mod frame;
pub mod pool;
pub mod process;
pub mod proto;
pub mod socket;
pub mod stats;
pub mod worker;

pub use error::WorkerError;
pub use pool::{ExplorationOutcome, WorkerPool};
pub use proto::{Candidate, OutputRecord, Request, Response, ShardInit, Task};
pub use stats::{MessageStats, PairStats, TransportKind};
pub use worker::ShardWorker;

/// Star-topology message transport: the driver sends one [`Request`] per
/// shard and collects one [`Response`] per shard, in ascending shard id —
/// the round barrier every exchange shares.
pub trait Transport {
    /// Short transport tag (`"channel"` / `"process"` / `"socket"`).
    fn name(&self) -> &'static str;

    /// One round barrier: deliver `reqs[s]` to worker `s`, return the
    /// responses in ascending shard id.
    ///
    /// # Errors
    ///
    /// A typed [`WorkerError`] when any worker is unreachable, died, or
    /// spoke a corrupt frame; never hangs on a dead peer.
    fn exchange(&mut self, reqs: Vec<Request>) -> Result<Vec<Response>, WorkerError>;

    /// Graceful teardown: ask every worker to stop and reap it.
    ///
    /// # Errors
    ///
    /// [`WorkerError`] when a worker did not acknowledge the shutdown.
    fn shutdown(&mut self) -> Result<(), WorkerError>;
}
