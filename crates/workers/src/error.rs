//! Typed worker-runtime errors.
//!
//! Mirrors the `SnapshotError` taxonomy of the core snapshot codec: frame
//! corruption surfaces as the same kind of typed variant (bad magic,
//! unsupported version, truncation with an offset, checksum mismatch)
//! rather than a hang or a panic, plus worker-lifecycle variants for dead
//! or misbehaving peers.

use std::fmt;
use std::io;

/// Everything that can go wrong between the driver and its shard workers.
#[derive(Debug)]
pub enum WorkerError {
    /// An OS-level pipe / spawn failure.
    Io(io::Error),
    /// A frame did not start with the `USNAEWKR` magic.
    BadMagic,
    /// A frame advertised a protocol version this build does not speak.
    UnsupportedVersion {
        /// Version found in the frame header.
        found: u32,
        /// Version this build speaks.
        supported: u32,
    },
    /// A frame ended early (short read) at the given byte offset.
    Truncated {
        /// Offset into the frame where the data ran out.
        offset: usize,
    },
    /// The frame's FNV-64 trailer did not match its contents.
    ChecksumMismatch {
        /// Checksum stored in the frame trailer.
        stored: u64,
        /// Checksum recomputed over the received bytes.
        computed: u64,
    },
    /// A structurally invalid frame or an out-of-protocol reply.
    Corrupt {
        /// Human-readable description of the malformation.
        reason: String,
    },
    /// A worker peer is gone: a channel worker's thread exited (its
    /// channel disconnected) or a socket worker's connection dropped.
    Disconnected {
        /// Shard whose worker vanished.
        shard: usize,
    },
    /// A worker process died; carries its exit code and captured stderr.
    WorkerExited {
        /// Shard whose worker process exited.
        shard: usize,
        /// Process exit code, if the OS reported one.
        code: Option<i32>,
        /// Captured stderr of the dead worker (best effort).
        stderr: String,
    },
    /// A worker answered with the wrong response kind for the request.
    Protocol {
        /// Shard that broke protocol.
        shard: usize,
        /// What was expected vs what arrived.
        reason: String,
    },
}

impl fmt::Display for WorkerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerError::Io(e) => write!(f, "worker i/o error: {e}"),
            WorkerError::BadMagic => write!(f, "worker frame is missing the USNAEWKR magic"),
            WorkerError::UnsupportedVersion { found, supported } => write!(
                f,
                "worker protocol version {found} is unsupported (this build speaks {supported})"
            ),
            WorkerError::Truncated { offset } => {
                write!(f, "worker frame truncated at byte {offset}")
            }
            WorkerError::ChecksumMismatch { stored, computed } => write!(
                f,
                "worker frame checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            WorkerError::Corrupt { reason } => write!(f, "corrupt worker frame: {reason}"),
            WorkerError::Disconnected { shard } => {
                write!(f, "worker for shard {shard} disconnected")
            }
            WorkerError::WorkerExited {
                shard,
                code,
                stderr,
            } => {
                match code {
                    Some(c) => write!(f, "worker process for shard {shard} exited with code {c}")?,
                    None => write!(f, "worker process for shard {shard} was killed by a signal")?,
                }
                if !stderr.trim().is_empty() {
                    write!(f, "; stderr: {}", stderr.trim())?;
                }
                Ok(())
            }
            WorkerError::Protocol { shard, reason } => {
                write!(f, "worker for shard {shard} broke protocol: {reason}")
            }
        }
    }
}

impl std::error::Error for WorkerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkerError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WorkerError {
    fn from(e: io::Error) -> Self {
        WorkerError::Io(e)
    }
}

impl From<crate::frame::FrameError> for WorkerError {
    fn from(e: crate::frame::FrameError) -> Self {
        use crate::frame::FrameError;
        match e {
            FrameError::Io(e) => WorkerError::Io(e),
            FrameError::BadMagic => WorkerError::BadMagic,
            FrameError::UnsupportedVersion { found, supported } => {
                WorkerError::UnsupportedVersion { found, supported }
            }
            FrameError::Truncated { offset } => WorkerError::Truncated { offset },
            FrameError::ChecksumMismatch { stored, computed } => {
                WorkerError::ChecksumMismatch { stored, computed }
            }
            FrameError::Corrupt { reason } => WorkerError::Corrupt { reason },
        }
    }
}
