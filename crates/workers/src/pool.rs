//! The round-planning driver: owns a [`Transport`], routes frontier
//! candidates between shards, runs the rank protocol, merges collected
//! results, and records **measured** [`MessageStats`].
//!
//! Statistics are computed here, from message *counts* times the fixed
//! wire sizes in [`crate::proto`], so the channel and process transports
//! report identical numbers for the same build:
//!
//! * `rounds` counts exchange barriers that advance a task (Start /
//!   Round / Ranks); Init, Collect, and Shutdown are bookkeeping.
//! * per-pair traffic covers frontier candidates routed worker → worker;
//! * totals additionally include the rank-protocol keys and replies
//!   (driver-mediated), so totals ≥ the sum over pairs.

use std::collections::HashMap;

use usnae_graph::{Dist, VertexId};

use crate::channel::ChannelTransport;
use crate::error::WorkerError;
use crate::process::ProcessTransport;
use crate::proto::{
    Candidate, OutputRecord, Request, Response, ShardInit, Task, CANDIDATE_WIRE_BYTES,
    KEY_WIRE_BYTES, RANK_WIRE_BYTES, RECORD_WIRE_BYTES,
};
use crate::socket::SocketTransport;
use crate::stats::{MessageStats, PairStats, TransportKind};
use crate::Transport;

/// One ball's settled `(vertex, distance, parent + 1)` triples, ascending
/// by vertex id (`0` encodes "no parent", as on the wire).
type SettledBall = Vec<(VertexId, Dist, u64)>;

/// One shard's rank-protocol submission: the shard id plus, per ball, its
/// `(parent_rank, vertex)` keys in the shard's own submission order.
type ShardKeys = (usize, Vec<(u32, Vec<(u64, VertexId)>)>);

/// One merged exploration result: every settled vertex with its distance
/// and BFS-tree parent, sorted by vertex id. Semantically identical to
/// the dense `Exploration` arrays of `usnae_core` (which rebuilds them
/// from this sparse form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplorationOutcome {
    /// `(vertex, distance, parent)` ascending by vertex; the source has
    /// distance 0 and no parent.
    pub settled: Vec<(VertexId, Dist, Option<VertexId>)>,
}

#[derive(Default)]
struct StatsAccum {
    rounds: u64,
    messages: u64,
    bytes: u64,
    pairs: HashMap<(usize, usize), (u64, u64)>,
}

impl StatsAccum {
    fn candidate(&mut self, src: usize, dst: usize) {
        self.messages += 1;
        self.bytes += CANDIDATE_WIRE_BYTES;
        let e = self.pairs.entry((src, dst)).or_insert((0, 0));
        e.0 += 1;
        e.1 += CANDIDATE_WIRE_BYTES;
    }

    fn keys(&mut self, n: u64) {
        self.messages += n;
        self.bytes += n * KEY_WIRE_BYTES;
    }

    fn ranks(&mut self, n: u64) {
        self.messages += n;
        self.bytes += n * RANK_WIRE_BYTES;
    }

    fn records(&mut self, n: u64) {
        self.messages += n;
        self.bytes += n * RECORD_WIRE_BYTES;
    }

    fn snapshot(&self) -> MessageStats {
        let mut pairs: Vec<PairStats> = self
            .pairs
            .iter()
            .map(|(&(src, dst), &(messages, bytes))| PairStats {
                src,
                dst,
                messages,
                bytes,
            })
            .collect();
        pairs.sort_unstable_by_key(|p| (p.src, p.dst));
        MessageStats {
            rounds: self.rounds,
            messages: self.messages,
            bytes: self.bytes,
            pairs,
        }
    }
}

/// Drives per-shard workers through task rounds over a chosen transport.
pub struct WorkerPool {
    transport: Box<dyn Transport>,
    /// `num_shards + 1` ascending vertex boundaries; shard `s` owns
    /// `boundaries[s]..boundaries[s + 1]`.
    boundaries: Vec<VertexId>,
    stats: StatsAccum,
}

impl WorkerPool {
    /// Builds a pool over `kind`, spawning one worker per shard layout.
    ///
    /// # Errors
    ///
    /// [`WorkerError`] when workers cannot be spawned or initialised;
    /// [`TransportKind::Inproc`] is rejected (it has no workers to pool).
    pub fn new(kind: TransportKind, inits: Vec<ShardInit>) -> Result<Self, WorkerError> {
        let mut boundaries: Vec<VertexId> = inits.iter().map(|i| i.start).collect();
        boundaries.push(inits.last().map_or(0, |i| i.end));
        let transport: Box<dyn Transport> = match kind {
            TransportKind::Channel => Box::new(ChannelTransport::new(inits)),
            TransportKind::Process => Box::new(ProcessTransport::new(inits)?),
            TransportKind::Socket => Box::new(SocketTransport::new(inits)?),
            TransportKind::Inproc => {
                return Err(WorkerError::Corrupt {
                    reason: "the inproc transport runs without a worker pool".into(),
                })
            }
        };
        Ok(WorkerPool {
            transport,
            boundaries,
            stats: StatsAccum::default(),
        })
    }

    /// The transport's tag (`"channel"` / `"process"` / `"socket"`).
    pub fn transport_name(&self) -> &'static str {
        self.transport.name()
    }

    /// Shards in this pool.
    pub fn num_shards(&self) -> usize {
        self.boundaries.len() - 1
    }

    fn owner(&self, v: VertexId) -> usize {
        // boundaries is ascending; the owner is the last shard whose
        // start is <= v.
        self.boundaries.partition_point(|&b| b <= v) - 1
    }

    /// Statistics accumulated so far.
    pub fn message_stats(&self) -> MessageStats {
        self.stats.snapshot()
    }

    /// Gracefully stops every worker and returns the final statistics.
    ///
    /// # Errors
    ///
    /// [`WorkerError`] when a worker did not acknowledge the shutdown or
    /// (process transport) exited nonzero.
    pub fn shutdown(mut self) -> Result<MessageStats, WorkerError> {
        self.transport.shutdown()?;
        Ok(self.stats.snapshot())
    }

    /// Sorted distance balls of every source (the `par::balls` contract):
    /// per source, every `(v, dist)` with `dist <= depth`, ascending by
    /// vertex id, the source included at distance 0.
    ///
    /// # Errors
    ///
    /// Any [`WorkerError`] from the transport; the pool is unusable after
    /// an error (drop it and fall back).
    pub fn balls(
        &mut self,
        sources: &[VertexId],
        depth: Dist,
    ) -> Result<Vec<Vec<(VertexId, Dist)>>, WorkerError> {
        let results = self.run_task(Task::Balls, sources, depth)?;
        Ok(results
            .into_iter()
            .map(|ball| ball.into_iter().map(|(v, d, _)| (v, d)).collect())
            .collect())
    }

    /// Full explorations of every source (the `Exploration::run`
    /// contract): distances plus FIFO-exact BFS-tree parents.
    ///
    /// # Errors
    ///
    /// Any [`WorkerError`] from the transport.
    pub fn explorations(
        &mut self,
        sources: &[VertexId],
        depth: Dist,
    ) -> Result<Vec<ExplorationOutcome>, WorkerError> {
        let results = self.run_task(Task::Explorations, sources, depth)?;
        Ok(results
            .into_iter()
            .map(|ball| ExplorationOutcome {
                settled: ball
                    .into_iter()
                    .map(|(v, d, p)| (v, d, p.checked_sub(1).map(|p| p as VertexId)))
                    .collect(),
            })
            .collect())
    }

    /// Ships output records to their owning workers' retained partitions:
    /// each record lands at the shard owning its `u` endpoint, ascending
    /// stream order preserved within each shard. One exchange barrier;
    /// the record traffic is counted into the pool's [`MessageStats`].
    ///
    /// # Errors
    ///
    /// Any [`WorkerError`] from the transport, or a protocol error when a
    /// worker's acknowledged partition size disagrees with what was sent.
    pub fn retain_outputs(&mut self, records: &[OutputRecord]) -> Result<(), WorkerError> {
        let shards = self.num_shards();
        let mut parts: Vec<Vec<OutputRecord>> = vec![Vec::new(); shards];
        for rec in records {
            let u = usize::try_from(rec.u).map_err(|_| WorkerError::Corrupt {
                reason: format!("output record endpoint {} overflows", rec.u),
            })?;
            parts[self.owner(u)].push(*rec);
        }
        let expected: Vec<u64> = parts.iter().map(|p| p.len() as u64).collect();
        for part in &parts {
            self.stats.records(part.len() as u64);
        }
        let reqs = parts
            .into_iter()
            .map(|records| Request::Retain { records })
            .collect();
        self.stats.rounds += 1;
        let resps = self.transport.exchange(reqs)?;
        for (shard, resp) in resps.into_iter().enumerate() {
            let Response::Retained { held } = resp else {
                return Err(WorkerError::Protocol {
                    shard,
                    reason: format!("expected Retained, got {resp:?}"),
                });
            };
            if held < expected[shard] {
                return Err(WorkerError::Protocol {
                    shard,
                    reason: format!(
                        "worker holds {held} retained records after receiving {}",
                        expected[shard]
                    ),
                });
            }
        }
        Ok(())
    }

    /// Streams every worker's retained partition back in bounded slices
    /// of up to `chunk` records per worker per exchange, returning one
    /// record list per shard (partition order). The fetch is stateless on
    /// the worker side, so it can be repeated; the record traffic is
    /// counted into the pool's [`MessageStats`].
    ///
    /// # Errors
    ///
    /// Any [`WorkerError`] from the transport, or a protocol error when a
    /// worker's advertised partition total shifts between slices.
    pub fn fetch_retained(&mut self, chunk: usize) -> Result<Vec<Vec<OutputRecord>>, WorkerError> {
        let shards = self.num_shards();
        let chunk = chunk.max(1) as u64;
        let mut parts: Vec<Vec<OutputRecord>> = vec![Vec::new(); shards];
        let mut totals: Vec<Option<u64>> = vec![None; shards];
        loop {
            let mut reqs = Vec::with_capacity(shards);
            let mut any = false;
            for shard in 0..shards {
                let offset = parts[shard].len() as u64;
                let done = totals[shard].is_some_and(|t| offset >= t);
                let max = if done { 0 } else { chunk };
                any |= !done;
                reqs.push(Request::FetchRetained { offset, max });
            }
            if !any {
                return Ok(parts);
            }
            self.stats.rounds += 1;
            let resps = self.transport.exchange(reqs)?;
            for (shard, resp) in resps.into_iter().enumerate() {
                let Response::RetainedPart { records, total } = resp else {
                    return Err(WorkerError::Protocol {
                        shard,
                        reason: format!("expected RetainedPart, got {resp:?}"),
                    });
                };
                if let Some(t) = totals[shard] {
                    if t != total {
                        return Err(WorkerError::Protocol {
                            shard,
                            reason: format!("retained partition total moved: {t} -> {total}"),
                        });
                    }
                } else {
                    totals[shard] = Some(total);
                }
                self.stats.records(records.len() as u64);
                parts[shard].extend(records);
                if parts[shard].len() as u64 > total {
                    return Err(WorkerError::Protocol {
                        shard,
                        reason: format!(
                            "worker streamed {} records for an advertised total of {total}",
                            parts[shard].len()
                        ),
                    });
                }
            }
        }
    }

    /// Runs one task to quiescence and returns, per ball, the settled
    /// `(v, dist, parent + 1)` triples ascending by vertex id.
    fn run_task(
        &mut self,
        task: Task,
        sources: &[VertexId],
        depth: Dist,
    ) -> Result<Vec<SettledBall>, WorkerError> {
        let shards = self.num_shards();
        let num_balls = u32::try_from(sources.len()).expect("ball count fits in u32");

        // Start: seed each source at its owner.
        let mut seed_lists: Vec<Vec<(u32, VertexId)>> = vec![Vec::new(); shards];
        for (ball, &src) in sources.iter().enumerate() {
            seed_lists[self.owner(src)].push((ball as u32, src));
        }
        let reqs = seed_lists
            .into_iter()
            .map(|sources| Request::Start {
                task,
                depth,
                num_balls,
                sources,
            })
            .collect();
        self.stats.rounds += 1;
        let resps = self.transport.exchange(reqs)?;
        let (mut outgoing, mut any_pending) = self.absorb_expanded(resps)?;

        // Frontier rounds until quiescence.
        while !outgoing.is_empty() || any_pending {
            let reqs = self.route(std::mem::take(&mut outgoing));
            self.stats.rounds += 1;
            let resps = self.transport.exchange(reqs)?;
            match task {
                Task::Balls => {
                    (outgoing, any_pending) = self.absorb_expanded(resps)?;
                }
                Task::Explorations => {
                    let keys = self.absorb_settled(resps)?;
                    if keys
                        .iter()
                        .all(|(_, ks)| ks.iter().all(|(_, k)| k.is_empty()))
                    {
                        // Stale-only round: nothing settled anywhere, so
                        // there is no new frontier to rank or expand.
                        break;
                    }
                    let reqs = self.assign_ranks(keys, num_balls);
                    self.stats.rounds += 1;
                    let resps = self.transport.exchange(reqs)?;
                    (outgoing, any_pending) = self.absorb_expanded(resps)?;
                }
            }
        }

        // Collect: per ball, concatenate the shards' sorted owned ranges
        // in ascending shard id — ranges are contiguous ascending, so the
        // result is globally sorted by vertex id.
        let reqs = vec![Request::Collect; shards];
        let resps = self.transport.exchange(reqs)?;
        let mut merged: Vec<SettledBall> = vec![Vec::new(); num_balls as usize];
        for (shard, resp) in resps.into_iter().enumerate() {
            let Response::Results { balls } = resp else {
                return Err(WorkerError::Protocol {
                    shard,
                    reason: format!("expected Results, got {resp:?}"),
                });
            };
            if balls.len() != num_balls as usize {
                return Err(WorkerError::Protocol {
                    shard,
                    reason: format!("{} result balls for {num_balls} sources", balls.len()),
                });
            }
            for (ball, mut part) in balls.into_iter().enumerate() {
                merged[ball].append(&mut part);
            }
        }
        Ok(merged)
    }

    /// Validates a round of `Expanded` responses, records per-pair
    /// candidate traffic, and returns the pooled outgoing candidates
    /// (tagged with their origin) plus the pending flag.
    #[allow(clippy::type_complexity)]
    fn absorb_expanded(
        &mut self,
        resps: Vec<Response>,
    ) -> Result<(Vec<(usize, Candidate)>, bool), WorkerError> {
        let mut pooled = Vec::new();
        let mut any_pending = false;
        for (shard, resp) in resps.into_iter().enumerate() {
            let Response::Expanded { outgoing, pending } = resp else {
                return Err(WorkerError::Protocol {
                    shard,
                    reason: format!("expected Expanded, got {resp:?}"),
                });
            };
            any_pending |= pending;
            for c in outgoing {
                let dst = self.owner(c.v);
                self.stats.candidate(shard, dst);
                pooled.push((shard, c));
            }
        }
        Ok((pooled, any_pending))
    }

    /// Groups origin-tagged candidates into per-destination `Round`
    /// requests, batches ascending by origin shard within each.
    fn route(&self, pooled: Vec<(usize, Candidate)>) -> Vec<Request> {
        let shards = self.num_shards();
        // pooled is already ordered by origin (responses were drained in
        // ascending shard id), so pushing preserves ascending origins.
        let mut per_dst: Vec<Vec<(usize, Vec<Candidate>)>> = vec![Vec::new(); shards];
        for (origin, c) in pooled {
            let dst = self.owner(c.v);
            match per_dst[dst].last_mut() {
                Some((o, batch)) if *o == origin => batch.push(c),
                _ => per_dst[dst].push((origin, vec![c])),
            }
        }
        per_dst
            .into_iter()
            .map(|batches| Request::Round { batches })
            .collect()
    }

    /// Validates a round of `Settled` responses and records key traffic.
    fn absorb_settled(&mut self, resps: Vec<Response>) -> Result<Vec<ShardKeys>, WorkerError> {
        let mut all = Vec::with_capacity(resps.len());
        for (shard, resp) in resps.into_iter().enumerate() {
            let Response::Settled { keys } = resp else {
                return Err(WorkerError::Protocol {
                    shard,
                    reason: format!("expected Settled, got {resp:?}"),
                });
            };
            let n: u64 = keys.iter().map(|(_, ks)| ks.len() as u64).sum();
            self.stats.keys(n);
            all.push((shard, keys));
        }
        Ok(all)
    }

    /// The rank protocol's driver half: globally sort every ball's
    /// submitted `(parent_rank, v)` keys (unique — each vertex settles on
    /// exactly one shard), assign sequential FIFO ranks, and answer every
    /// shard in its own submission order.
    fn assign_ranks(&mut self, all: Vec<ShardKeys>, num_balls: u32) -> Vec<Request> {
        let mut per_ball: Vec<Vec<(u64, VertexId)>> = vec![Vec::new(); num_balls as usize];
        for (_, keys) in &all {
            for (ball, ks) in keys {
                per_ball[*ball as usize].extend_from_slice(ks);
            }
        }
        let mut rank_of: Vec<HashMap<(u64, VertexId), u64>> = Vec::with_capacity(per_ball.len());
        for mut ks in per_ball {
            ks.sort_unstable();
            rank_of.push(
                ks.into_iter()
                    .enumerate()
                    .map(|(i, k)| (k, i as u64))
                    .collect(),
            );
        }
        let mut reqs = vec![Request::Ranks { ranks: Vec::new() }; self.num_shards()];
        for (shard, keys) in all {
            let mut ranks = Vec::with_capacity(keys.len());
            for (ball, ks) in keys {
                let rs: Vec<u64> = ks.iter().map(|k| rank_of[ball as usize][k]).collect();
                self.stats.ranks(rs.len() as u64);
                ranks.push((ball, rs));
            }
            reqs[shard] = Request::Ranks { ranks };
        }
        reqs
    }
}
