//! The per-shard worker state machine.
//!
//! A [`ShardWorker`] owns one contiguous vertex range and its local CSR
//! arrays (shipped once via [`ShardInit`]). It runs level-synchronous
//! bounded BFS for every ball of the current task, settling only vertices
//! it owns; discoveries of foreign vertices leave as outgoing
//! [`Candidate`]s and arrive back (at the destination's worker) in the
//! next round's batches.
//!
//! Two task modes:
//!
//! * [`Task::Balls`] — distances only (the `par::balls` contract). Owned
//!   discoveries settle immediately during expansion; one exchange per
//!   BFS level.
//! * [`Task::Explorations`] — distances *and* FIFO-exact BFS-tree parents
//!   (the `Exploration::run` contract). Discoveries are buffered as
//!   candidates (a remote parent may have a smaller FIFO rank), settled at
//!   the next round's merge by the minimum-parent-rank rule, and queued in
//!   the exact sequential FIFO order via the driver-assisted rank
//!   protocol; two exchanges per level.
//!
//! Determinism does not depend on *when* this worker runs, only on the
//! per-round inputs: every merge sorts before it settles, outgoing
//! candidates are sorted and deduplicated per `(ball, v)` keeping the
//! minimum parent rank, and collected results never iterate a hash map.

use std::collections::HashMap;

use usnae_graph::{Dist, VertexId};

use crate::error::WorkerError;
use crate::proto::{Candidate, OutputRecord, Request, Response, ShardInit, Task};

/// A settled owned vertex: its distance, BFS-tree parent, and FIFO-queue
/// rank within its level (Explorations only; 0 for Balls).
struct Entry {
    dist: Dist,
    parent: Option<VertexId>,
    rank: u64,
}

/// Per-ball worker state.
#[derive(Default)]
struct BallState {
    /// Owned settled vertices.
    entries: HashMap<VertexId, Entry>,
    /// Settlement log (unsorted); sorted by vertex id at collect time.
    order: Vec<VertexId>,
    /// Balls task: owned vertices settled at the current level, expanded
    /// at the next round.
    next: Vec<VertexId>,
    /// Explorations task: locally-discovered candidates buffered for the
    /// next round's merge.
    pending: Vec<Candidate>,
    /// Explorations task: vertices settled this round, awaiting their
    /// driver-assigned ranks (in key-submission order).
    awaiting: Vec<VertexId>,
}

impl BallState {
    fn visited(&self, v: VertexId) -> bool {
        self.entries.contains_key(&v)
    }

    fn settle(&mut self, v: VertexId, dist: Dist, parent: Option<VertexId>, rank: u64) {
        self.entries.insert(v, Entry { dist, parent, rank });
        self.order.push(v);
    }
}

/// State of the task currently running rounds.
struct Active {
    task: Task,
    depth: Dist,
    balls: Vec<BallState>,
}

/// One shard's worker: local CSR arrays, the active task state, and the
/// retained output partition (records whose lower endpoint this shard
/// owns, held at the worker between rounds and streamed back lazily).
pub struct ShardWorker {
    init: ShardInit,
    active: Option<Active>,
    retained: Vec<OutputRecord>,
}

impl ShardWorker {
    /// Builds a worker from its shard layout.
    pub fn new(init: ShardInit) -> Self {
        ShardWorker {
            init,
            active: None,
            retained: Vec::new(),
        }
    }

    /// This worker's shard id.
    pub fn shard(&self) -> usize {
        self.init.shard
    }

    fn owns(&self, v: VertexId) -> bool {
        (self.init.start..self.init.end).contains(&v)
    }

    fn protocol(&self, reason: impl Into<String>) -> WorkerError {
        WorkerError::Protocol {
            shard: self.init.shard,
            reason: reason.into(),
        }
    }

    /// Handles one request, advancing the task state machine.
    ///
    /// # Errors
    ///
    /// [`WorkerError::Protocol`] on an out-of-sequence request or a
    /// structurally invalid one (unknown ball index, rank-count mismatch).
    pub fn handle(&mut self, req: Request) -> Result<Response, WorkerError> {
        match req {
            Request::Init(_) => Err(self.protocol("Init after initialisation")),
            Request::Start {
                task,
                depth,
                num_balls,
                sources,
            } => self.start(task, depth, num_balls, sources),
            Request::Round { batches } => self.round(batches),
            Request::Ranks { ranks } => self.ranks(ranks),
            Request::Collect => self.collect(),
            Request::Retain { records } => self.retain(records),
            Request::FetchRetained { offset, max } => Ok(self.fetch_retained(offset, max)),
            Request::Shutdown => Ok(Response::Stopping),
        }
    }

    fn retain(&mut self, records: Vec<OutputRecord>) -> Result<Response, WorkerError> {
        for rec in &records {
            let u = usize::try_from(rec.u).map_err(|_| {
                self.protocol(format!("retained record endpoint {} overflows", rec.u))
            })?;
            if !self.owns(u) {
                return Err(self.protocol(format!(
                    "retained record for vertex {u} is not owned by this shard"
                )));
            }
            if let Some(last) = self.retained.last() {
                if rec.index <= last.index {
                    return Err(self.protocol(format!(
                        "retained record index {} is not ascending (last {})",
                        rec.index, last.index
                    )));
                }
            }
            self.retained.push(*rec);
        }
        Ok(Response::Retained {
            held: self.retained.len() as u64,
        })
    }

    fn fetch_retained(&self, offset: u64, max: u64) -> Response {
        let total = self.retained.len() as u64;
        let start = offset.min(total) as usize;
        let end = offset.saturating_add(max).min(total) as usize;
        Response::RetainedPart {
            records: self.retained[start..end].to_vec(),
            total,
        }
    }

    fn start(
        &mut self,
        task: Task,
        depth: Dist,
        num_balls: u32,
        sources: Vec<(u32, VertexId)>,
    ) -> Result<Response, WorkerError> {
        if self.active.is_some() {
            return Err(self.protocol("Start while a task is active"));
        }
        let mut balls = Vec::with_capacity(num_balls as usize);
        balls.resize_with(num_balls as usize, BallState::default);
        let mut active = Active { task, depth, balls };
        let mut seeds = Vec::with_capacity(sources.len());
        for (ball, src) in sources {
            let b = ball as usize;
            if b >= active.balls.len() {
                return Err(self.protocol(format!("source ball {ball} out of range")));
            }
            if !self.owns(src) {
                return Err(self.protocol(format!("source {src} is not owned by this shard")));
            }
            // Sources settle at distance 0 with FIFO rank 0 (level 0 holds
            // exactly the source, so no driver round is needed for it).
            active.balls[b].settle(src, 0, None, 0);
            seeds.push((b, src));
        }
        let resp = match task {
            Task::Balls => {
                for &(b, src) in &seeds {
                    active.balls[b].next.push(src);
                }
                Self::expand_balls(&self.init, &mut active)
            }
            Task::Explorations => {
                let frontier: Vec<(usize, VertexId)> = seeds;
                Self::expand_explorations(&self.init, &mut active, &frontier)
            }
        };
        self.active = Some(active);
        Ok(resp)
    }

    fn round(&mut self, batches: Vec<(usize, Vec<Candidate>)>) -> Result<Response, WorkerError> {
        let shard = self.init.shard;
        let owned = self.init.start..self.init.end;
        let active = self.active.as_mut().ok_or_else(|| WorkerError::Protocol {
            shard,
            reason: "Round without an active task".into(),
        })?;
        let mut incoming = Vec::new();
        for (_, mut cs) in batches {
            incoming.append(&mut cs);
        }
        for c in &incoming {
            if c.ball as usize >= active.balls.len() {
                return Err(WorkerError::Protocol {
                    shard,
                    reason: format!("candidate ball {} out of range", c.ball),
                });
            }
            if !owned.contains(&c.v) {
                return Err(WorkerError::Protocol {
                    shard,
                    reason: format!("misrouted candidate for vertex {}", c.v),
                });
            }
        }
        match active.task {
            Task::Balls => {
                // Absorb: first-discovery settles (duplicates of already
                // settled vertices are stale — same level, same distance).
                for c in incoming {
                    let ball = &mut active.balls[c.ball as usize];
                    if !ball.visited(c.v) {
                        ball.settle(c.v, c.dist, Some(c.parent), 0);
                        ball.next.push(c.v);
                    }
                }
                Ok(Self::expand_balls(&self.init, active))
            }
            Task::Explorations => {
                // Merge buffered local candidates with the incoming ones,
                // settle each fresh (ball, v) by the minimum-parent-rank
                // rule (the sequential FIFO first-in-queue rule), and
                // submit the keys for global rank assignment.
                let mut merged = incoming;
                for ball in &mut active.balls {
                    merged.append(&mut ball.pending);
                }
                merged.sort_unstable_by_key(|c| (c.ball, c.v, c.parent_rank, c.parent));
                merged.dedup_by_key(|c| (c.ball, c.v));
                let mut keys: Vec<(u32, Vec<(u64, VertexId)>)> = Vec::new();
                for c in merged {
                    let ball = &mut active.balls[c.ball as usize];
                    if ball.visited(c.v) {
                        continue; // stale: settled at an earlier level
                    }
                    ball.settle(c.v, c.dist, Some(c.parent), 0);
                    ball.awaiting.push(c.v);
                    match keys.last_mut() {
                        Some((b, ks)) if *b == c.ball => ks.push((c.parent_rank, c.v)),
                        _ => keys.push((c.ball, vec![(c.parent_rank, c.v)])),
                    }
                }
                Ok(Response::Settled { keys })
            }
        }
    }

    fn ranks(&mut self, ranks: Vec<(u32, Vec<u64>)>) -> Result<Response, WorkerError> {
        let shard = self.init.shard;
        let active = self.active.as_mut().ok_or_else(|| WorkerError::Protocol {
            shard,
            reason: "Ranks without an active task".into(),
        })?;
        if active.task != Task::Explorations {
            return Err(self.protocol("Ranks during a Balls task"));
        }
        let mut frontier = Vec::new();
        for (ball, rs) in ranks {
            let b = ball as usize;
            if b >= active.balls.len() {
                return Err(self.protocol(format!("ranks ball {ball} out of range")));
            }
            let awaiting = std::mem::take(&mut active.balls[b].awaiting);
            if awaiting.len() != rs.len() {
                return Err(self.protocol(format!(
                    "ball {ball}: {} ranks for {} settled vertices",
                    rs.len(),
                    awaiting.len()
                )));
            }
            for (v, r) in awaiting.into_iter().zip(rs) {
                active.balls[b]
                    .entries
                    .get_mut(&v)
                    .expect("awaiting vertex is settled")
                    .rank = r;
                frontier.push((b, v));
            }
        }
        if let Some(b) = active
            .balls
            .iter()
            .position(|ball| !ball.awaiting.is_empty())
        {
            return Err(self.protocol(format!("ball {b} settled vertices but received no ranks")));
        }
        Ok(Self::expand_explorations(&self.init, active, &frontier))
    }

    /// Balls expansion: the current level's owned vertices each scan their
    /// adjacency; owned unvisited neighbors settle immediately (distance
    /// is parent-independent), foreign ones leave as candidates.
    fn expand_balls(init: &ShardInit, active: &mut Active) -> Response {
        let mut outgoing = Vec::new();
        for (b, ball) in active.balls.iter_mut().enumerate() {
            let level = std::mem::take(&mut ball.next);
            for v in level {
                let d = ball.entries[&v].dist;
                if d == active.depth {
                    continue; // at the bound: settled but not expanded
                }
                let local = v - init.start;
                for &u in &init.adjacency[init.offsets[local]..init.offsets[local + 1]] {
                    if (init.start..init.end).contains(&u) {
                        if !ball.visited(u) {
                            ball.settle(u, d + 1, Some(v), 0);
                            ball.next.push(u);
                        }
                    } else {
                        outgoing.push(Candidate {
                            ball: b as u32,
                            v: u,
                            dist: d + 1,
                            parent: v,
                            parent_rank: 0,
                        });
                    }
                }
            }
        }
        outgoing.sort_unstable_by_key(|c| (c.ball, c.v, c.parent_rank, c.parent));
        outgoing.dedup_by_key(|c| (c.ball, c.v));
        let pending = active.balls.iter().any(|ball| !ball.next.is_empty());
        Response::Expanded { outgoing, pending }
    }

    /// Explorations expansion: the just-ranked frontier scans its
    /// adjacency; every discovery becomes a candidate carrying the
    /// parent's rank — owned ones are buffered for the next merge (a
    /// remote parent may still beat them), foreign ones leave the shard.
    fn expand_explorations(
        init: &ShardInit,
        active: &mut Active,
        frontier: &[(usize, VertexId)],
    ) -> Response {
        let mut outgoing = Vec::new();
        for &(b, v) in frontier {
            let (d, r) = {
                let e = &active.balls[b].entries[&v];
                (e.dist, e.rank)
            };
            if d == active.depth {
                continue; // at the bound: settled but not expanded
            }
            let local = v - init.start;
            for &u in &init.adjacency[init.offsets[local]..init.offsets[local + 1]] {
                let cand = Candidate {
                    ball: b as u32,
                    v: u,
                    dist: d + 1,
                    parent: v,
                    parent_rank: r,
                };
                if (init.start..init.end).contains(&u) {
                    if !active.balls[b].visited(u) {
                        active.balls[b].pending.push(cand);
                    }
                } else {
                    outgoing.push(cand);
                }
            }
        }
        outgoing.sort_unstable_by_key(|c| (c.ball, c.v, c.parent_rank, c.parent));
        outgoing.dedup_by_key(|c| (c.ball, c.v));
        let pending = active.balls.iter().any(|ball| !ball.pending.is_empty());
        Response::Expanded { outgoing, pending }
    }

    fn collect(&mut self) -> Result<Response, WorkerError> {
        let active = self
            .active
            .take()
            .ok_or_else(|| self.protocol("Collect without an active task"))?;
        let mut balls = Vec::with_capacity(active.balls.len());
        for mut ball in active.balls {
            ball.order.sort_unstable();
            let mut out = Vec::with_capacity(ball.order.len());
            for v in ball.order {
                let e = &ball.entries[&v];
                let parent = e.parent.map_or(0, |p| p as u64 + 1);
                out.push((v, e.dist, parent));
            }
            balls.push(out);
        }
        Ok(Response::Results { balls })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 5-path 0-1-2-3-4 owned entirely by one shard: single-worker runs
    /// must reproduce plain sequential BFS with no routing at all.
    fn whole_path_init() -> ShardInit {
        ShardInit {
            shard: 0,
            num_shards: 1,
            num_vertices: 5,
            start: 0,
            end: 5,
            offsets: vec![0, 1, 3, 5, 7, 8],
            adjacency: vec![1, 0, 2, 1, 3, 2, 4, 3],
        }
    }

    #[test]
    fn single_shard_balls_settle_to_the_depth_bound() {
        let mut w = ShardWorker::new(whole_path_init());
        let r = w
            .handle(Request::Start {
                task: Task::Balls,
                depth: 2,
                num_balls: 1,
                sources: vec![(0, 1)],
            })
            .unwrap();
        let Response::Expanded { outgoing, pending } = r else {
            panic!("expected Expanded")
        };
        assert!(outgoing.is_empty());
        assert!(pending);
        // Drive empty rounds until quiescent.
        let mut rounds = 0;
        loop {
            let r = w.handle(Request::Round { batches: vec![] }).unwrap();
            let Response::Expanded { outgoing, pending } = r else {
                panic!("expected Expanded")
            };
            assert!(outgoing.is_empty());
            rounds += 1;
            if !pending {
                break;
            }
            assert!(rounds < 10, "runaway");
        }
        let Response::Results { balls } = w.handle(Request::Collect).unwrap() else {
            panic!("expected Results")
        };
        let got: Vec<(VertexId, Dist)> = balls[0].iter().map(|&(v, d, _)| (v, d)).collect();
        assert_eq!(got, vec![(0, 1), (1, 0), (2, 1), (3, 2)]);
    }

    #[test]
    fn retained_partition_accumulates_and_streams_in_slices() {
        let mut w = ShardWorker::new(whole_path_init());
        let rec = |index: u64, u: u64| OutputRecord {
            index,
            u,
            v: u + 1,
            weight: 1,
            phase: 0,
            kind: 0,
            charged_to: u,
        };
        let Response::Retained { held } = w
            .handle(Request::Retain {
                records: vec![rec(0, 1), rec(2, 3)],
            })
            .unwrap()
        else {
            panic!("expected Retained")
        };
        assert_eq!(held, 2);
        // A second Retain appends (indices keep ascending across calls).
        let Response::Retained { held } = w
            .handle(Request::Retain {
                records: vec![rec(5, 0)],
            })
            .unwrap()
        else {
            panic!("expected Retained")
        };
        assert_eq!(held, 3);
        // Stateless slicing: the same slice fetches twice identically,
        // and an out-of-range offset returns an empty slice.
        let fetch = |w: &mut ShardWorker, offset, max| match w
            .handle(Request::FetchRetained { offset, max })
            .unwrap()
        {
            Response::RetainedPart { records, total } => (records, total),
            other => panic!("expected RetainedPart, got {other:?}"),
        };
        let (first, total) = fetch(&mut w, 0, 2);
        assert_eq!(total, 3);
        assert_eq!(
            first.iter().map(|r| r.index).collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert_eq!(fetch(&mut w, 0, 2), (first, 3));
        let (rest, _) = fetch(&mut w, 2, 100);
        assert_eq!(rest, vec![rec(5, 0)]);
        assert_eq!(fetch(&mut w, 9, 4), (vec![], 3));
        // Foreign and non-ascending records are protocol errors.
        assert!(matches!(
            w.handle(Request::Retain {
                records: vec![rec(6, 99)]
            }),
            Err(WorkerError::Protocol { .. })
        ));
        assert!(matches!(
            w.handle(Request::Retain {
                records: vec![rec(5, 1)]
            }),
            Err(WorkerError::Protocol { .. })
        ));
    }

    #[test]
    fn out_of_sequence_requests_are_protocol_errors() {
        let mut w = ShardWorker::new(whole_path_init());
        assert!(matches!(
            w.handle(Request::Round { batches: vec![] }),
            Err(WorkerError::Protocol { .. })
        ));
        assert!(matches!(
            w.handle(Request::Collect),
            Err(WorkerError::Protocol { .. })
        ));
        assert!(matches!(
            w.handle(Request::Init(whole_path_init())),
            Err(WorkerError::Protocol { .. })
        ));
    }
}
