//! Socket workers: the same framed `USNAEWKR` protocol as the process
//! transport, carried over TCP instead of stdin/stdout pipes.
//!
//! Two deployment shapes behind one transport:
//!
//! * **Loopback (default)** — one `usnae-worker --listen 127.0.0.1:0`
//!   child is spawned per shard; each child binds an ephemeral port,
//!   announces it on stdout (`USNAE-WORKER LISTEN <addr>`), accepts one
//!   connection, and serves frames over it. Children are kill-on-drop,
//!   exactly like the process transport.
//! * **Remote** — when [`WORKERS_ADDR_ENV`] is set (comma-separated
//!   `host:port` list, one per shard, set by the CLI's `--workers-addr`),
//!   the driver connects to pre-started `usnae-worker --listen` processes
//!   instead of spawning its own.
//!
//! Liveness is part of the contract: connects use [`CONNECT_TIMEOUT`]
//! with bounded retry and exponential backoff (a remote worker may not be
//! listening yet), every stream carries read/write timeouts (default
//! [`DEFAULT_IO_TIMEOUT_MS`], override via [`SOCKET_TIMEOUT_ENV`]), and a
//! worker that dies mid-round closes its socket, so the driver's next
//! read fails immediately and surfaces as a typed [`WorkerError`]
//! (`WorkerExited` for spawned children, `Disconnected` for remote
//! peers) — never a hang.

use std::io::Read;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use crate::error::WorkerError;
use crate::process::worker_bin;
use crate::proto::{read_response, write_request, Request, Response, ShardInit};
use crate::Transport;

/// Environment variable naming pre-started remote workers: a
/// comma-separated `host:port` list with one address per shard, in shard
/// order. When unset, loopback children are spawned instead.
pub const WORKERS_ADDR_ENV: &str = "USNAE_WORKERS_ADDR";

/// Environment override (milliseconds) for the per-stream read/write
/// timeout; the backstop that turns a genuinely hung peer into a typed
/// I/O timeout error instead of a stuck build.
pub const SOCKET_TIMEOUT_ENV: &str = "USNAE_SOCKET_TIMEOUT_MS";

/// Default per-stream read/write timeout.
pub const DEFAULT_IO_TIMEOUT_MS: u64 = 30_000;

/// Per-attempt TCP connect timeout.
pub const CONNECT_TIMEOUT: Duration = Duration::from_secs(2);

/// Bounded connect retries (exponential backoff from 10 ms).
pub const CONNECT_RETRIES: u32 = 6;

/// The line a listening worker prints on stdout once it is bound, before
/// its actual address: the driver's port-discovery handshake for
/// loopback-spawned children with ephemeral ports.
pub const LISTEN_PREFIX: &str = "USNAE-WORKER LISTEN ";

/// How long the driver waits for a spawned child's `LISTEN` line.
const SPAWN_ANNOUNCE_TIMEOUT: Duration = Duration::from_secs(10);

fn io_timeout() -> Duration {
    let ms = std::env::var(SOCKET_TIMEOUT_ENV)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .unwrap_or(DEFAULT_IO_TIMEOUT_MS);
    Duration::from_millis(ms)
}

/// A loopback-spawned listening child (kill-on-drop, like the process
/// transport's children).
struct SpawnedChild {
    child: Child,
}

impl SpawnedChild {
    /// Kills and reaps the child, returning `(exit code, stderr)`.
    fn reap(&mut self) -> (Option<i32>, String) {
        let _ = self.child.kill();
        let status = self.child.wait().ok();
        let mut stderr = String::new();
        if let Some(mut err) = self.child.stderr.take() {
            let _ = err.read_to_string(&mut stderr);
        }
        (status.and_then(|s| s.code()), stderr)
    }
}

impl Drop for SpawnedChild {
    fn drop(&mut self) {
        // Kill-on-drop guard: never leak a listening worker, even on an
        // error path that skipped the graceful shutdown.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct SocketWorker {
    stream: Option<TcpStream>,
    /// `Some` for loopback-spawned children, `None` for remote peers.
    child: Option<SpawnedChild>,
}

/// One TCP connection per shard; frames flow over the socket, teardown
/// kills any spawned children.
pub struct SocketTransport {
    workers: Vec<SocketWorker>,
}

impl SocketTransport {
    /// Connects (or spawns-and-connects) one worker per shard layout and
    /// runs the `Init → Ready` handshake on each.
    ///
    /// # Errors
    ///
    /// [`WorkerError`] when an address list is malformed or short, a
    /// connect exhausts its retries, or a handshake fails or times out;
    /// children spawned so far are killed.
    pub fn new(inits: Vec<ShardInit>) -> Result<Self, WorkerError> {
        let remote = remote_addrs(inits.len())?;
        let timeout = io_timeout();
        let mut transport = SocketTransport {
            workers: Vec::with_capacity(inits.len()),
        };
        for (shard, init) in inits.into_iter().enumerate() {
            let (stream, child) = match &remote {
                Some(addrs) => (connect(shard, addrs[shard], timeout)?, None),
                None => {
                    let (mut child, addr) = spawn_listener(shard)?;
                    match connect(shard, addr, timeout) {
                        Ok(stream) => (stream, Some(child)),
                        Err(e) => {
                            let (code, stderr) = child.reap();
                            return Err(match e {
                                WorkerError::Io(_) => WorkerError::WorkerExited {
                                    shard,
                                    code,
                                    stderr,
                                },
                                other => other,
                            });
                        }
                    }
                }
            };
            transport.workers.push(SocketWorker {
                stream: Some(stream),
                child,
            });
            let ready = transport.round_trip(shard, &Request::Init(init))?;
            if !matches!(ready, Response::Ready) {
                return Err(WorkerError::Protocol {
                    shard,
                    reason: format!("expected Ready after Init, got {ready:?}"),
                });
            }
        }
        Ok(transport)
    }

    /// If `shard`'s worker is dead or its connection dropped, converts
    /// `err` into the lifecycle variant ([`WorkerError::WorkerExited`]
    /// for spawned children, [`WorkerError::Disconnected`] for remote
    /// peers); otherwise drops the now-unusable connection and keeps the
    /// frame error.
    fn enrich(&mut self, shard: usize, err: WorkerError) -> WorkerError {
        let worker = &mut self.workers[shard];
        worker.stream = None; // the stream is unusable after any error
        let dropped = matches!(err, WorkerError::Io(_) | WorkerError::Truncated { .. });
        match worker.child.as_mut() {
            Some(child) => {
                let died = !matches!(child.child.try_wait(), Ok(None));
                let (code, stderr) = child.reap();
                if died || dropped {
                    WorkerError::WorkerExited {
                        shard,
                        code,
                        stderr,
                    }
                } else {
                    err
                }
            }
            None if dropped => WorkerError::Disconnected { shard },
            None => err,
        }
    }

    fn send(&mut self, shard: usize, req: &Request) -> Result<(), WorkerError> {
        let r = match self.workers[shard].stream.as_mut() {
            Some(stream) => write_request(stream, req),
            None => Err(WorkerError::Disconnected { shard }),
        };
        r.map_err(|e| self.enrich(shard, e))
    }

    fn recv(&mut self, shard: usize) -> Result<Response, WorkerError> {
        let r = match self.workers[shard].stream.as_mut() {
            Some(stream) => read_response(stream),
            None => Err(WorkerError::Disconnected { shard }),
        };
        r.map_err(|e| self.enrich(shard, e))
    }

    fn round_trip(&mut self, shard: usize, req: &Request) -> Result<Response, WorkerError> {
        self.send(shard, req)?;
        self.recv(shard)
    }
}

impl Transport for SocketTransport {
    fn name(&self) -> &'static str {
        "socket"
    }

    fn exchange(&mut self, reqs: Vec<Request>) -> Result<Vec<Response>, WorkerError> {
        assert_eq!(reqs.len(), self.workers.len(), "one request per shard");
        // Send everything first (workers compute concurrently), then
        // drain responses in ascending shard id — the round barrier.
        for (shard, req) in reqs.iter().enumerate() {
            self.send(shard, req)?;
        }
        let mut resps = Vec::with_capacity(self.workers.len());
        for shard in 0..self.workers.len() {
            resps.push(self.recv(shard)?);
        }
        Ok(resps)
    }

    fn shutdown(&mut self) -> Result<(), WorkerError> {
        for shard in 0..self.workers.len() {
            let resp = self.round_trip(shard, &Request::Shutdown)?;
            if !matches!(resp, Response::Stopping) {
                return Err(WorkerError::Protocol {
                    shard,
                    reason: format!("expected Stopping, got {resp:?}"),
                });
            }
            let worker = &mut self.workers[shard];
            worker.stream = None; // closing the socket lets the peer exit
            if let Some(child) = worker.child.as_mut() {
                let status = child.child.wait().map_err(WorkerError::Io)?;
                if !status.success() {
                    let (_, stderr) = child.reap();
                    return Err(WorkerError::WorkerExited {
                        shard,
                        code: status.code(),
                        stderr,
                    });
                }
                worker.child = None; // already reaped; skip the drop kill
            }
        }
        Ok(())
    }
}

/// Parses [`WORKERS_ADDR_ENV`] when set: one resolved address per shard,
/// shard order.
fn remote_addrs(shards: usize) -> Result<Option<Vec<SocketAddr>>, WorkerError> {
    let Ok(spec) = std::env::var(WORKERS_ADDR_ENV) else {
        return Ok(None);
    };
    let spec = spec.trim();
    if spec.is_empty() {
        return Ok(None);
    }
    let mut addrs = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        let addr = part
            .to_socket_addrs()
            .map_err(WorkerError::Io)?
            .next()
            .ok_or_else(|| WorkerError::Corrupt {
                reason: format!("{WORKERS_ADDR_ENV}: address '{part}' did not resolve"),
            })?;
        addrs.push(addr);
    }
    if addrs.len() < shards {
        return Err(WorkerError::Corrupt {
            reason: format!(
                "{WORKERS_ADDR_ENV} lists {} worker address(es) for {shards} shard(s)",
                addrs.len()
            ),
        });
    }
    Ok(Some(addrs))
}

/// Connects to one worker with bounded retry and exponential backoff,
/// then arms the stream's read/write timeouts.
fn connect(shard: usize, addr: SocketAddr, timeout: Duration) -> Result<TcpStream, WorkerError> {
    let mut backoff = Duration::from_millis(10);
    let mut last: Option<std::io::Error> = None;
    for attempt in 0..CONNECT_RETRIES {
        if attempt > 0 {
            std::thread::sleep(backoff);
            backoff *= 2;
        }
        match TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT) {
            Ok(stream) => {
                stream.set_nodelay(true).map_err(WorkerError::Io)?;
                stream
                    .set_read_timeout(Some(timeout))
                    .map_err(WorkerError::Io)?;
                stream
                    .set_write_timeout(Some(timeout))
                    .map_err(WorkerError::Io)?;
                return Ok(stream);
            }
            Err(e) => last = Some(e),
        }
    }
    Err(WorkerError::Io(std::io::Error::new(
        last.as_ref()
            .map_or(std::io::ErrorKind::TimedOut, |e| e.kind()),
        format!(
            "shard {shard}: worker at {addr} unreachable after {CONNECT_RETRIES} attempts: {}",
            last.map_or_else(|| "timed out".to_string(), |e| e.to_string())
        ),
    )))
}

/// Spawns one `usnae-worker --listen 127.0.0.1:0` child and waits
/// (bounded) for its `LISTEN` announcement carrying the bound address.
fn spawn_listener(shard: usize) -> Result<(SpawnedChild, SocketAddr), WorkerError> {
    let bin = worker_bin();
    let mut child = Command::new(&bin)
        .arg("--listen")
        .arg("127.0.0.1:0")
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .map_err(WorkerError::Io)?;
    let stdout = child.stdout.take().expect("stdout piped");
    let mut child = SpawnedChild { child };

    // Read the announcement on a helper thread so a child that never
    // prints (or dies before binding) cannot block the driver: the
    // bounded recv turns it into a typed timeout error.
    let (tx, rx) = std::sync::mpsc::channel::<std::io::Result<String>>();
    std::thread::spawn(move || {
        let mut line = String::new();
        let mut byte = [0u8; 1];
        let mut stdout = stdout;
        let result = loop {
            match stdout.read(&mut byte) {
                Ok(0) => {
                    break Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "worker exited before announcing its listen address",
                    ))
                }
                Ok(_) if byte[0] == b'\n' => break Ok(line),
                Ok(_) => line.push(byte[0] as char),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => break Err(e),
            }
        };
        let _ = tx.send(result);
    });
    let line = match rx.recv_timeout(SPAWN_ANNOUNCE_TIMEOUT) {
        Ok(Ok(line)) => line,
        Ok(Err(_)) | Err(_) => {
            let (code, stderr) = child.reap();
            return Err(WorkerError::WorkerExited {
                shard,
                code,
                stderr,
            });
        }
    };
    let addr = line
        .strip_prefix(LISTEN_PREFIX)
        .and_then(|a| a.trim().parse::<SocketAddr>().ok())
        .ok_or_else(|| WorkerError::Protocol {
            shard,
            reason: format!("malformed listen announcement: {line:?}"),
        })?;
    Ok((child, addr))
}
