//! Robust-teardown coverage for the process transport: a worker that dies,
//! exits nonzero, or writes garbage must surface a **typed** error without
//! ever hanging the driver on a blocked pipe read, and dropped transports
//! must reap their children.
//!
//! These tests point `USNAE_WORKER_BIN` at deliberately broken
//! executables; the env var is process-global, so the cases share a mutex
//! (and live in their own integration binary, away from the happy-path
//! suite).

use std::sync::Mutex;

use usnae_workers::proto::ShardInit;
use usnae_workers::{TransportKind, WorkerError, WorkerPool};

static BIN_LOCK: Mutex<()> = Mutex::new(());

fn tiny_inits(shards: usize) -> Vec<ShardInit> {
    // A path graph split evenly; enough to drive a real round if the
    // worker were healthy.
    let n = 8;
    let per = n / shards;
    (0..shards)
        .map(|s| {
            let start = s * per;
            let end = if s == shards - 1 { n } else { start + per };
            let mut offsets = vec![0usize];
            let mut adjacency = Vec::new();
            for v in start..end {
                if v > 0 {
                    adjacency.push(v - 1);
                }
                if v + 1 < n {
                    adjacency.push(v + 1);
                }
                offsets.push(adjacency.len());
            }
            ShardInit {
                shard: s,
                num_shards: shards,
                num_vertices: n,
                start,
                end,
                offsets,
                adjacency,
            }
        })
        .collect()
}

fn with_bin<T>(bin: &str, f: impl FnOnce() -> T) -> T {
    let _guard = BIN_LOCK.lock().expect("bin lock");
    std::env::set_var("USNAE_WORKER_BIN", bin);
    let out = f();
    std::env::remove_var("USNAE_WORKER_BIN");
    out
}

#[test]
fn a_worker_that_exits_immediately_is_a_typed_error_not_a_hang() {
    // `/bin/false` exits 1 without speaking the protocol: the Init
    // handshake must fail with the exit status attached.
    let err = with_bin("/bin/false", || {
        WorkerPool::new(TransportKind::Process, tiny_inits(2)).err()
    })
    .expect("handshake must fail");
    match err {
        WorkerError::WorkerExited { shard: 0, code, .. } => {
            assert_eq!(code, Some(1), "exit code must be captured");
        }
        other => panic!("expected WorkerExited, got {other}"),
    }
}

#[test]
fn a_worker_that_speaks_garbage_is_a_typed_error_not_a_hang() {
    // `echo` prints a newline and exits 0: the driver sees a malformed
    // short frame from an already-dead child.
    let err = with_bin("/bin/echo", || {
        WorkerPool::new(TransportKind::Process, tiny_inits(2)).err()
    })
    .expect("handshake must fail");
    match err {
        WorkerError::WorkerExited { shard: 0, .. } => {}
        WorkerError::BadMagic | WorkerError::Truncated { .. } => {}
        other => panic!("expected a frame/exit error, got {other}"),
    }
}

#[test]
fn a_missing_worker_binary_is_an_io_error() {
    let err = with_bin("/nonexistent/usnae-worker", || {
        WorkerPool::new(TransportKind::Process, tiny_inits(2)).err()
    })
    .expect("spawn must fail");
    assert!(matches!(err, WorkerError::Io(_)), "got {err}");
}

#[test]
fn dropping_a_healthy_pool_reaps_its_children() {
    // Kill-on-drop guard: skipping the graceful shutdown must not leak
    // worker processes (drop blocks until every child is reaped).
    let _guard = BIN_LOCK.lock().expect("bin lock");
    std::env::set_var("USNAE_WORKER_BIN", env!("CARGO_BIN_EXE_usnae-worker"));
    let mut pool =
        WorkerPool::new(TransportKind::Process, tiny_inits(2)).expect("healthy pool spawns");
    pool.balls(&[0, 7], 3).expect("balls run");
    drop(pool); // no shutdown: Drop must kill + wait
    std::env::remove_var("USNAE_WORKER_BIN");
}
