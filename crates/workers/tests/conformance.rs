//! Pool-level conformance: for both transports, every shard count, and
//! adversarial interleavings, [`WorkerPool`] results are identical to the
//! in-process references — `usnae_graph::par::balls` for distance balls,
//! and a sequential FIFO BFS (the `Exploration::run` contract) for full
//! explorations.
//!
//! Living in the workers crate's own integration tests means
//! `CARGO_BIN_EXE_usnae-worker` is available, so the process transport is
//! pinned to the freshly-built worker binary.

use std::collections::VecDeque;
use std::sync::Once;

use usnae_graph::partition::{boundaries, PartitionPolicy};
use usnae_graph::{generators, par, Dist, Graph, VertexId};
use usnae_workers::proto::ShardInit;
use usnae_workers::{TransportKind, WorkerPool};

/// Pins the process transport to the binary cargo just built.
fn pin_worker_bin() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        std::env::set_var("USNAE_WORKER_BIN", env!("CARGO_BIN_EXE_usnae-worker"));
    });
}

/// Shard layouts straight from the graph's adjacency (what
/// `usnae_core`'s engine ships from `ShardedCsr`).
fn shard_inits(g: &Graph, bounds: &[VertexId]) -> Vec<ShardInit> {
    let num_shards = bounds.len() - 1;
    (0..num_shards)
        .map(|s| {
            let (start, end) = (bounds[s], bounds[s + 1]);
            let mut offsets = vec![0usize];
            let mut adjacency = Vec::new();
            for v in start..end {
                adjacency.extend_from_slice(g.neighbors(v));
                offsets.push(adjacency.len());
            }
            ShardInit {
                shard: s,
                num_shards,
                num_vertices: g.num_vertices(),
                start,
                end,
                offsets,
                adjacency,
            }
        })
        .collect()
}

fn pool(g: &Graph, kind: TransportKind, shards: usize) -> WorkerPool {
    let bounds = boundaries(g, PartitionPolicy::DegreeBalanced, shards);
    WorkerPool::new(kind, shard_inits(g, &bounds)).expect("pool spawns")
}

/// The sequential oracle for explorations: FIFO BFS with first-discovery
/// parents and the `dist == depth` expansion cutoff, reported as sorted
/// `(v, dist, parent)` triples — exactly `Exploration::run`'s semantics.
fn reference_exploration(
    g: &Graph,
    source: VertexId,
    depth: Dist,
) -> Vec<(VertexId, Dist, Option<VertexId>)> {
    let n = g.num_vertices();
    let mut dist: Vec<Option<Dist>> = vec![None; n];
    let mut parent: Vec<Option<VertexId>> = vec![None; n];
    let mut queue = VecDeque::new();
    dist[source] = Some(0);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u].expect("queued implies settled");
        if du == depth {
            continue;
        }
        for &v in g.neighbors(u) {
            if dist[v].is_none() {
                dist[v] = Some(du + 1);
                parent[v] = Some(u);
                queue.push_back(v);
            }
        }
    }
    (0..n)
        .filter_map(|v| dist[v].map(|d| (v, d, parent[v])))
        .collect()
}

fn graphs() -> Vec<Graph> {
    vec![
        generators::gnp_connected(60, 0.08, 7).expect("valid gnp"),
        generators::gnp_connected(90, 0.05, 23).expect("valid gnp"),
    ]
}

fn sources(g: &Graph) -> Vec<VertexId> {
    // A spread of sources across all shards, including the extremes.
    let n = g.num_vertices();
    vec![0, n / 3, n / 2, 2 * n / 3, n - 1]
}

fn check_transport(kind: TransportKind) {
    for g in graphs() {
        let srcs = sources(&g);
        for shards in [2usize, 4] {
            for depth in [0u64, 1, 3, u64::MAX / 2] {
                let mut p = pool(&g, kind, shards);
                let got = p.balls(&srcs, depth).expect("balls run");
                let want = par::balls(&g, &srcs, depth, 1);
                assert_eq!(got, want, "{kind} x{shards} depth={depth}: balls diverged");

                let got = p.explorations(&srcs, depth).expect("explorations run");
                for (i, &s) in srcs.iter().enumerate() {
                    assert_eq!(
                        got[i].settled,
                        reference_exploration(&g, s, depth),
                        "{kind} x{shards} depth={depth} source={s}: exploration diverged"
                    );
                }

                let stats = p.shutdown().expect("clean shutdown");
                if depth > 0 && shards > 1 {
                    assert!(stats.rounds > 0, "{kind}: no rounds measured");
                    assert!(stats.messages > 0, "{kind}: no messages measured");
                    assert!(stats.bytes > 0, "{kind}: no bytes measured");
                    assert!(!stats.pairs.is_empty(), "{kind}: no pair traffic");
                }
            }
        }
    }
}

#[test]
fn channel_pool_matches_the_in_process_references() {
    check_transport(TransportKind::Channel);
}

#[test]
fn process_pool_matches_the_in_process_references() {
    pin_worker_bin();
    check_transport(TransportKind::Process);
}

#[test]
fn both_transports_report_identical_message_stats() {
    pin_worker_bin();
    let g = generators::gnp_connected(60, 0.08, 7).expect("valid gnp");
    let srcs = sources(&g);
    let run = |kind| {
        let mut p = pool(&g, kind, 4);
        p.balls(&srcs, 4).expect("balls run");
        p.explorations(&srcs, 4).expect("explorations run");
        p.shutdown().expect("clean shutdown")
    };
    assert_eq!(run(TransportKind::Channel), run(TransportKind::Process));
}

#[test]
fn seeded_worker_delays_never_change_the_output() {
    // Adversarial scheduling: per-worker pseudo-random delays scramble
    // thread interleavings; results and stats must not move.
    let g = generators::gnp_connected(90, 0.05, 23).expect("valid gnp");
    let srcs = sources(&g);
    let baseline = {
        let mut p = pool(&g, TransportKind::Channel, 4);
        let out = (
            p.balls(&srcs, 5).expect("balls run"),
            p.explorations(&srcs, 5).expect("explorations run"),
        );
        (out, p.shutdown().expect("clean shutdown"))
    };
    for seed in [1u64, 99] {
        std::env::set_var("USNAE_WORKER_DELAY_SEED", seed.to_string());
        let mut p = pool(&g, TransportKind::Channel, 4);
        let out = (
            p.balls(&srcs, 5).expect("balls run"),
            p.explorations(&srcs, 5).expect("explorations run"),
        );
        let stats = p.shutdown().expect("clean shutdown");
        std::env::remove_var("USNAE_WORKER_DELAY_SEED");
        assert_eq!((out, stats), baseline, "delay seed {seed} changed output");
    }
}

#[test]
fn single_shard_pools_also_conform() {
    // Degenerate layout: everything owned by one worker, no routing.
    let g = generators::gnp_connected(40, 0.1, 3).expect("valid gnp");
    let srcs = sources(&g);
    let mut p = pool(&g, TransportKind::Channel, 1);
    assert_eq!(
        p.balls(&srcs, 3).expect("balls run"),
        par::balls(&g, &srcs, 3, 1)
    );
    let got = p.explorations(&srcs, 3).expect("explorations run");
    for (i, &s) in srcs.iter().enumerate() {
        assert_eq!(got[i].settled, reference_exploration(&g, s, 3));
    }
    p.shutdown().expect("clean shutdown");
}
