//! The synchronous round engine.
//!
//! # Determinism
//!
//! The engine is fully deterministic: given the same graph and the same
//! [`NodeAlgorithm`] behavior, every run produces the identical message
//! schedule. Three properties guarantee it — audited because the
//! distributed drivers' output streams depend on them:
//!
//! * **Send order.** Messages queue onto per-directed-edge FIFO queues in
//!   the order `Ctx::send` was called; nodes execute `init`/`round` in
//!   ascending node id, so the global enqueue order is defined.
//! * **Delivery order.** Each round, a node's inbox is assembled by
//!   scanning its neighbors in adjacency order (fixed by the graph) and
//!   popping one message per edge — no map iteration anywhere.
//! * **Fast-forward.** Quiet-stretch skipping only advances the round
//!   counter; the simulated execution is unchanged.
//!
//! Algorithms that keep per-node state must uphold the same standard
//! (index-keyed `Vec`s or `BTreeMap`s, never `HashMap` iteration) for the
//! end-to-end build to be run-to-run reproducible.

use crate::error::CongestError;
use crate::metrics::Metrics;
use crate::{Words, MAX_WORDS};
use std::collections::VecDeque;
use usnae_graph::Graph;

/// Per-node, per-round interface handed to [`NodeAlgorithm`] callbacks.
///
/// Sends are validated against the CONGEST contract (recipient must be a
/// graph neighbor; payload within [`MAX_WORDS`]); the first violation aborts
/// the run with the corresponding [`CongestError`].
pub struct Ctx<'a, M> {
    node: usize,
    round: u64,
    graph: &'a Graph,
    out: &'a mut Vec<(usize, usize, M)>,
    error: &'a mut Option<CongestError>,
}

impl<'a, M: Words> Ctx<'a, M> {
    /// Vertex this callback is executing at.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Current round number (1-based; `init` runs at round 0).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Number of vertices in the network.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Neighbors of the current vertex.
    pub fn neighbors(&self) -> &'a [usize] {
        self.graph.neighbors(self.node)
    }

    /// Queues `msg` for delivery to neighbor `to`. Messages sent in round
    /// `r` are delivered no earlier than round `r + 1`; when several are
    /// queued on one edge they pipeline, one per round.
    pub fn send(&mut self, to: usize, msg: M) {
        if self.error.is_some() {
            return;
        }
        let words = msg.words();
        if words > MAX_WORDS {
            *self.error = Some(CongestError::MessageTooLarge {
                words,
                limit: MAX_WORDS,
            });
            return;
        }
        if self.graph.directed_edge_index(self.node, to).is_none() {
            *self.error = Some(CongestError::NotNeighbor {
                from: self.node,
                to,
            });
            return;
        }
        self.out.push((self.node, to, msg));
    }

    /// Sends `msg` to every neighbor.
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        for &v in self.graph.neighbors(self.node) {
            self.send(v, msg.clone());
        }
    }
}

/// A distributed algorithm: one object owns all `n` processors' state.
///
/// The engine calls [`init`](Self::init) once per node before the first
/// round, then [`round`](Self::round) for every node in every round. The run
/// ends when all edge queues are empty and every node reports
/// [`is_idle`](Self::is_idle).
pub trait NodeAlgorithm {
    /// Message payload; must declare its wire size.
    type Msg: Words + Clone;

    /// One-time setup at `node`; may send initial messages.
    fn init(&mut self, node: usize, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = (node, ctx);
    }

    /// Executes one synchronous round at `node`. `inbox` holds the messages
    /// delivered this round as `(sender, payload)` pairs.
    fn round(&mut self, node: usize, inbox: &[(usize, Self::Msg)], ctx: &mut Ctx<'_, Self::Msg>);

    /// Whether `node` has no pending local work. A node waiting for a
    /// future round boundary (stride synchronization) must return `false`,
    /// otherwise the engine may stop early.
    fn is_idle(&self, node: usize) -> bool {
        let _ = node;
        true
    }

    /// The next round at which this (non-idle) node will act even without
    /// incoming messages, or `None` if it only reacts to messages.
    ///
    /// When **no** message is in flight, the engine fast-forwards to the
    /// earliest declared wake-up instead of executing empty rounds one by
    /// one. Skipped rounds still count toward [`Metrics::rounds`] — the
    /// simulated execution is identical, just cheaper to simulate. Nodes
    /// whose wake-up schedule is known (stride synchronization) should
    /// implement this.
    fn next_wakeup(&self, node: usize, now: u64) -> Option<u64> {
        let _ = (node, now);
        None
    }
}

/// Synchronous CONGEST engine over a fixed graph.
///
/// Metrics accumulate across successive [`run`](Self::run) calls so a
/// multi-stage construction is accounted as one distributed execution.
#[derive(Debug)]
pub struct Simulator<'g> {
    graph: &'g Graph,
    metrics: Metrics,
}

impl<'g> Simulator<'g> {
    /// Creates an engine over `graph`.
    pub fn new(graph: &'g Graph) -> Self {
        Simulator {
            graph,
            metrics: Metrics::new(),
        }
    }

    /// The underlying communication graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Cumulative metrics of all runs so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Explicitly charges `k` rounds to the execution without simulating
    /// them (see substitution S2 in `DESIGN.md`: broadcasts inside clusters
    /// whose round cost the paper folds into the radius recursion).
    pub fn charge_rounds(&mut self, k: u64) {
        self.metrics.rounds += k;
        self.metrics.charged_rounds += k;
    }

    /// Runs `algo` until quiescence (no queued messages, all nodes idle).
    ///
    /// Returns the number of rounds this run consumed.
    ///
    /// # Errors
    ///
    /// [`CongestError::RoundLimitExceeded`] if quiescence is not reached
    /// within `max_rounds`; [`CongestError::NotNeighbor`] /
    /// [`CongestError::MessageTooLarge`] on contract violations.
    pub fn run<A: NodeAlgorithm>(
        &mut self,
        algo: &mut A,
        max_rounds: u64,
    ) -> Result<u64, CongestError> {
        let n = self.graph.num_vertices();
        let mut queues: Vec<VecDeque<A::Msg>> = (0..self.graph.num_directed_edges())
            .map(|_| VecDeque::new())
            .collect();
        let mut out: Vec<(usize, usize, A::Msg)> = Vec::new();
        let mut error: Option<CongestError> = None;

        // Init phase (round 0): nodes set up and may seed messages.
        for node in 0..n {
            let mut ctx = Ctx {
                node,
                round: 0,
                graph: self.graph,
                out: &mut out,
                error: &mut error,
            };
            algo.init(node, &mut ctx);
        }
        if let Some(e) = error {
            return Err(e);
        }
        let mut in_flight: u64 = 0;
        for (from, to, msg) in out.drain(..) {
            let idx = self
                .graph
                .directed_edge_index(from, to)
                .expect("validated by ctx");
            queues[idx].push_back(msg);
            in_flight += 1;
        }
        self.metrics.peak_in_flight = self.metrics.peak_in_flight.max(in_flight);

        let mut inboxes: Vec<Vec<(usize, A::Msg)>> = vec![Vec::new(); n];
        let mut rounds_this_run: u64 = 0;
        loop {
            let quiescent = in_flight == 0 && (0..n).all(|v| algo.is_idle(v));
            if quiescent {
                return Ok(rounds_this_run);
            }
            if in_flight == 0 {
                // Nothing in transit: fast-forward to the earliest declared
                // wake-up if every busy node declares one. Skipped rounds
                // still count — the execution is identical.
                let mut earliest: Option<u64> = None;
                let mut all_declared = true;
                for v in 0..n {
                    if algo.is_idle(v) {
                        continue;
                    }
                    match algo.next_wakeup(v, rounds_this_run) {
                        Some(w) => earliest = Some(earliest.map_or(w, |e: u64| e.min(w))),
                        None => {
                            all_declared = false;
                            break;
                        }
                    }
                }
                if all_declared {
                    if let Some(w) = earliest {
                        if w > rounds_this_run + 1 {
                            let skipped =
                                (w - 1 - rounds_this_run).min(max_rounds - rounds_this_run);
                            rounds_this_run += skipped;
                            self.metrics.rounds += skipped;
                        }
                    }
                }
            }
            if rounds_this_run >= max_rounds {
                return Err(CongestError::RoundLimitExceeded { limit: max_rounds });
            }
            // Deliver one message per directed edge.
            for (v, inbox) in inboxes.iter_mut().enumerate() {
                inbox.clear();
                for &u in self.graph.neighbors(v) {
                    let idx = self
                        .graph
                        .directed_edge_index(u, v)
                        .expect("neighbor edge exists");
                    if let Some(msg) = queues[idx].pop_front() {
                        self.metrics.messages += 1;
                        self.metrics.words += msg.words() as u64;
                        in_flight -= 1;
                        inbox.push((u, msg));
                    }
                }
            }
            // Execute the round at every processor.
            rounds_this_run += 1;
            self.metrics.rounds += 1;
            for (node, inbox) in inboxes.iter().enumerate() {
                let mut ctx = Ctx {
                    node,
                    round: rounds_this_run,
                    graph: self.graph,
                    out: &mut out,
                    error: &mut error,
                };
                algo.round(node, inbox, &mut ctx);
            }
            if let Some(e) = error {
                return Err(e);
            }
            for (from, to, msg) in out.drain(..) {
                let idx = self
                    .graph
                    .directed_edge_index(from, to)
                    .expect("validated by ctx");
                queues[idx].push_back(msg);
                in_flight += 1;
            }
            self.metrics.peak_in_flight = self.metrics.peak_in_flight.max(in_flight);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usnae_graph::generators;

    /// Floods the minimum vertex id; classic leader election.
    struct MinFlood {
        best: Vec<u64>,
        dirty: Vec<bool>,
    }

    impl MinFlood {
        fn new(n: usize) -> Self {
            MinFlood {
                best: (0..n as u64).collect(),
                dirty: vec![false; n],
            }
        }
    }

    impl NodeAlgorithm for MinFlood {
        type Msg = u64;

        fn init(&mut self, node: usize, ctx: &mut Ctx<'_, u64>) {
            ctx.broadcast(self.best[node]);
        }

        fn round(&mut self, node: usize, inbox: &[(usize, u64)], ctx: &mut Ctx<'_, u64>) {
            for &(_, id) in inbox {
                if id < self.best[node] {
                    self.best[node] = id;
                    self.dirty[node] = true;
                }
            }
            if self.dirty[node] {
                self.dirty[node] = false;
                ctx.broadcast(self.best[node]);
            }
        }
    }

    #[test]
    fn min_flood_converges_in_diameter_rounds() {
        let g = generators::path(10).unwrap();
        let mut sim = Simulator::new(&g);
        let mut algo = MinFlood::new(10);
        let rounds = sim.run(&mut algo, 100).unwrap();
        assert!(algo.best.iter().all(|&b| b == 0));
        // Quiescence detection costs at most a couple of trailing rounds.
        assert!((9..=12).contains(&rounds), "rounds = {rounds}");
        assert!(sim.metrics().messages > 0);
    }

    #[test]
    fn round_limit_enforced() {
        let g = generators::path(50).unwrap();
        let mut sim = Simulator::new(&g);
        let mut algo = MinFlood::new(50);
        assert_eq!(
            sim.run(&mut algo, 3),
            Err(CongestError::RoundLimitExceeded { limit: 3 })
        );
    }

    /// Sends to a non-neighbor to exercise validation.
    struct BadSender;
    impl NodeAlgorithm for BadSender {
        type Msg = u64;
        fn init(&mut self, node: usize, ctx: &mut Ctx<'_, u64>) {
            if node == 0 {
                ctx.send(2, 7); // 0 and 2 are not adjacent on a path
            }
        }
        fn round(&mut self, _: usize, _: &[(usize, u64)], _: &mut Ctx<'_, u64>) {}
    }

    #[test]
    fn non_neighbor_send_rejected() {
        let g = generators::path(3).unwrap();
        let mut sim = Simulator::new(&g);
        assert_eq!(
            sim.run(&mut BadSender, 10),
            Err(CongestError::NotNeighbor { from: 0, to: 2 })
        );
    }

    /// Message that lies about being huge.
    #[derive(Clone, Debug)]
    struct Huge;
    impl Words for Huge {
        fn words(&self) -> usize {
            99
        }
    }
    struct HugeSender;
    impl NodeAlgorithm for HugeSender {
        type Msg = Huge;
        fn init(&mut self, node: usize, ctx: &mut Ctx<'_, Huge>) {
            if node == 0 {
                ctx.send(1, Huge);
            }
        }
        fn round(&mut self, _: usize, _: &[(usize, Huge)], _: &mut Ctx<'_, Huge>) {}
    }

    #[test]
    fn oversized_message_rejected() {
        let g = generators::path(2).unwrap();
        let mut sim = Simulator::new(&g);
        assert_eq!(
            sim.run(&mut HugeSender, 10),
            Err(CongestError::MessageTooLarge {
                words: 99,
                limit: MAX_WORDS
            })
        );
    }

    /// Sends k messages at once over one edge; they must pipeline one per
    /// round — the mechanism behind the paper's O(deg_i) stride costs.
    struct Burst {
        k: usize,
        received_rounds: Vec<u64>,
    }
    impl NodeAlgorithm for Burst {
        type Msg = u64;
        fn init(&mut self, node: usize, ctx: &mut Ctx<'_, u64>) {
            if node == 0 {
                for i in 0..self.k {
                    ctx.send(1, i as u64);
                }
            }
        }
        fn round(&mut self, node: usize, inbox: &[(usize, u64)], ctx: &mut Ctx<'_, u64>) {
            if node == 1 {
                for _ in inbox {
                    self.received_rounds.push(ctx.round());
                }
            }
        }
    }

    #[test]
    fn bursts_pipeline_one_message_per_round() {
        let g = generators::path(2).unwrap();
        let mut sim = Simulator::new(&g);
        let mut algo = Burst {
            k: 5,
            received_rounds: Vec::new(),
        };
        sim.run(&mut algo, 100).unwrap();
        assert_eq!(algo.received_rounds, vec![1, 2, 3, 4, 5]);
        assert_eq!(sim.metrics().peak_in_flight, 5);
        assert_eq!(sim.metrics().messages, 5);
    }

    #[test]
    fn metrics_accumulate_across_runs() {
        let g = generators::cycle(8).unwrap();
        let mut sim = Simulator::new(&g);
        sim.run(&mut MinFlood::new(8), 100).unwrap();
        let after_first = sim.metrics().rounds;
        sim.run(&mut MinFlood::new(8), 100).unwrap();
        assert!(sim.metrics().rounds > after_first);
        sim.charge_rounds(17);
        assert_eq!(sim.metrics().charged_rounds, 17);
    }

    /// Broadcasts everything it hears (bounded by a TTL) and logs every
    /// delivery `(round, receiver, sender, payload)` — a full observable
    /// schedule of the execution.
    struct DeliveryLogger {
        ttl: u64,
        log: Vec<(u64, usize, usize, u64)>,
    }
    impl NodeAlgorithm for DeliveryLogger {
        type Msg = u64;
        fn init(&mut self, node: usize, ctx: &mut Ctx<'_, u64>) {
            ctx.broadcast(node as u64 * 1000 + self.ttl);
        }
        fn round(&mut self, node: usize, inbox: &[(usize, u64)], ctx: &mut Ctx<'_, u64>) {
            for &(from, msg) in inbox {
                self.log.push((ctx.round(), node, from, msg));
                if msg % 1000 > 0 {
                    ctx.broadcast(msg - 1);
                }
            }
        }
    }

    #[test]
    fn delivery_schedule_is_identical_across_runs() {
        // The engine's determinism contract (module docs): two runs of the
        // same algorithm on the same graph produce the exact same delivery
        // schedule — round, receiver, sender, and payload of every message.
        let g = generators::gnp_connected(40, 0.15, 3).unwrap();
        let mut reference: Option<Vec<(u64, usize, usize, u64)>> = None;
        for _ in 0..3 {
            let mut sim = Simulator::new(&g);
            let mut algo = DeliveryLogger {
                ttl: 3,
                log: Vec::new(),
            };
            sim.run(&mut algo, 100_000).unwrap();
            assert!(!algo.log.is_empty());
            match &reference {
                None => reference = Some(algo.log),
                Some(r) => assert_eq!(r, &algo.log, "delivery schedule diverged"),
            }
        }
    }

    #[test]
    fn immediate_quiescence_costs_zero_rounds() {
        struct Noop;
        impl NodeAlgorithm for Noop {
            type Msg = u64;
            fn round(&mut self, _: usize, _: &[(usize, u64)], _: &mut Ctx<'_, u64>) {}
        }
        let g = generators::path(4).unwrap();
        let mut sim = Simulator::new(&g);
        assert_eq!(sim.run(&mut Noop, 10).unwrap(), 0);
        assert_eq!(sim.metrics().rounds, 0);
    }

    #[test]
    fn non_idle_node_keeps_engine_alive_until_boundary() {
        /// Waits silently until round 5, then broadcasts once.
        struct Waiter {
            fired: bool,
            heard: std::collections::HashSet<usize>,
        }
        impl NodeAlgorithm for Waiter {
            type Msg = u64;
            fn round(&mut self, node: usize, inbox: &[(usize, u64)], ctx: &mut Ctx<'_, u64>) {
                if node == 0 && !self.fired && ctx.round() == 5 {
                    self.fired = true;
                    ctx.broadcast(42);
                }
                if !inbox.is_empty() {
                    self.heard.insert(node);
                }
            }
            fn is_idle(&self, node: usize) -> bool {
                node != 0 || self.fired
            }
        }
        let g = generators::star(5).unwrap();
        let mut sim = Simulator::new(&g);
        let mut algo = Waiter {
            fired: false,
            heard: Default::default(),
        };
        let rounds = sim.run(&mut algo, 100).unwrap();
        assert_eq!(rounds, 6); // 5 waiting rounds + 1 delivery round
        assert_eq!(algo.heard.len(), 4);
    }
}
