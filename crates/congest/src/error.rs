//! Errors raised by the CONGEST simulator.

use std::error::Error;
use std::fmt;

/// Violations of the CONGEST contract or resource limits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CongestError {
    /// A node attempted to send to a vertex that is not its graph neighbor.
    NotNeighbor {
        /// Sending vertex.
        from: usize,
        /// Intended recipient.
        to: usize,
    },
    /// A message exceeded [`MAX_WORDS`](crate::MAX_WORDS).
    MessageTooLarge {
        /// Measured size in words.
        words: usize,
        /// The enforced cap.
        limit: usize,
    },
    /// The run exceeded its round budget without quiescing.
    RoundLimitExceeded {
        /// The budget that was exhausted.
        limit: u64,
    },
}

impl fmt::Display for CongestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CongestError::NotNeighbor { from, to } => {
                write!(f, "vertex {from} attempted to message non-neighbor {to}")
            }
            CongestError::MessageTooLarge { words, limit } => {
                write!(
                    f,
                    "message of {words} words exceeds the {limit}-word congest limit"
                )
            }
            CongestError::RoundLimitExceeded { limit } => {
                write!(f, "algorithm did not quiesce within {limit} rounds")
            }
        }
    }
}

impl Error for CongestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CongestError::NotNeighbor { from: 1, to: 2 }
            .to_string()
            .contains("non-neighbor 2"));
        assert!(CongestError::MessageTooLarge { words: 9, limit: 4 }
            .to_string()
            .contains("9 words"));
        assert!(CongestError::RoundLimitExceeded { limit: 10 }
            .to_string()
            .contains("10 rounds"));
    }
}
