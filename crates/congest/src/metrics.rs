//! Round/message accounting for CONGEST runs.

/// Cumulative execution metrics for a [`Simulator`](crate::Simulator).
///
/// Metrics accumulate across successive `run` calls (a multi-stage algorithm
/// is a single distributed execution) plus any explicitly charged rounds
/// (substitution S2 in `DESIGN.md`: intra-cluster broadcasts whose depth the
/// paper folds into the radius recursion).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Total synchronous rounds executed.
    pub rounds: u64,
    /// Rounds charged explicitly (subset of `rounds`).
    pub charged_rounds: u64,
    /// Total messages delivered over edges.
    pub messages: u64,
    /// Total payload volume in words.
    pub words: u64,
    /// Peak number of queued (in-flight) messages across all edges; a
    /// congestion indicator for the pipelining analysis.
    pub peak_in_flight: u64,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Average messages per executed round (0.0 for an empty run).
    pub fn messages_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.messages as f64 / self.rounds as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero() {
        let m = Metrics::new();
        assert_eq!(m.rounds, 0);
        assert_eq!(m.messages, 0);
        assert_eq!(m.messages_per_round(), 0.0);
    }

    #[test]
    fn messages_per_round_divides() {
        let m = Metrics {
            rounds: 4,
            messages: 10,
            ..Metrics::new()
        };
        assert!((m.messages_per_round() - 2.5).abs() < 1e-12);
    }
}
