//! Deterministic synchronous CONGEST-model simulator.
//!
//! The distributed model of the paper (§1.5.1, after \[Pel00\]): processors
//! sit at the vertices of the input graph and communicate with their
//! neighbors in synchronous rounds; each round, **at most one message of
//! `O(1)` words** crosses each edge *in each direction*. The running time of
//! an algorithm is the number of rounds it takes.
//!
//! This crate enforces that contract mechanically:
//!
//! * every directed edge owns a FIFO queue; the engine delivers **exactly one
//!   queued message per direction per round** (excess sends pipeline into
//!   later rounds, exactly like a real CONGEST broadcast);
//! * payloads declare their size in words via [`Words::words`] and the
//!   engine rejects oversized messages;
//! * [`Metrics`] accrue rounds, delivered messages, and peak in-flight
//!   queue length, so experiment E4 can compare measured rounds against the
//!   paper's `O(β·n^ρ)` budget.
//!
//! Algorithms implement [`NodeAlgorithm`]: one object owns the state of all
//! `n` processors (indexed by vertex), and the engine drives it one round at
//! a time. Multi-stage constructions run several algorithms back to back on
//! the same [`Simulator`], accumulating a single round count.
//!
//! # Example: flooding the minimum id
//!
//! ```
//! use usnae_congest::{NodeAlgorithm, Ctx, Simulator, Words};
//! use usnae_graph::generators;
//!
//! struct MinFlood { best: Vec<u64>, dirty: Vec<bool> }
//!
//! impl NodeAlgorithm for MinFlood {
//!     type Msg = u64;
//!     fn init(&mut self, node: usize, ctx: &mut Ctx<'_, u64>) {
//!         ctx.broadcast(self.best[node]);
//!     }
//!     fn round(&mut self, node: usize, inbox: &[(usize, u64)], ctx: &mut Ctx<'_, u64>) {
//!         for &(_, id) in inbox {
//!             if id < self.best[node] {
//!                 self.best[node] = id;
//!                 self.dirty[node] = true;
//!             }
//!         }
//!         if self.dirty[node] {
//!             self.dirty[node] = false;
//!             ctx.broadcast(self.best[node]);
//!         }
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = generators::cycle(16)?;
//! let mut sim = Simulator::new(&g);
//! let mut algo = MinFlood { best: (0..16u64).collect(), dirty: vec![false; 16] };
//! sim.run(&mut algo, 1_000)?;
//! assert!(algo.best.iter().all(|&b| b == 0));
//! assert!(sim.metrics().rounds >= 8); // information travelled the cycle
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod metrics;
pub mod simulator;

pub use error::CongestError;
pub use metrics::Metrics;
pub use simulator::{Ctx, NodeAlgorithm, Simulator};

/// Maximum payload size in machine words per message, the model's `O(1)`.
///
/// The paper's messages carry at most a couple of ids/distances; 4 words is a
/// generous constant and every algorithm in this reproduction fits in it.
pub const MAX_WORDS: usize = 4;

/// Declares how many machine words a payload occupies on the wire.
///
/// The simulator enforces [`MAX_WORDS`] per message.
pub trait Words {
    /// Number of `O(log n)`-bit words this value occupies.
    fn words(&self) -> usize;
}

impl Words for u64 {
    fn words(&self) -> usize {
        1
    }
}

impl Words for (u64, u64) {
    fn words(&self) -> usize {
        2
    }
}

impl Words for () {
    fn words(&self) -> usize {
        0
    }
}
