//! Integration tests for the CONGEST engine's contract: pipelining,
//! fast-forward round accounting, and multi-run metric accumulation.

use usnae_congest::{Ctx, NodeAlgorithm, Simulator};
use usnae_graph::generators;

/// Silent until a declared wake-up round, then bursts.
struct ScheduledBurst {
    wake: u64,
    fired: bool,
    received: Vec<u64>,
}

impl NodeAlgorithm for ScheduledBurst {
    type Msg = u64;

    fn round(&mut self, node: usize, inbox: &[(usize, u64)], ctx: &mut Ctx<'_, u64>) {
        if node == 0 && !self.fired && ctx.round() == self.wake {
            self.fired = true;
            for i in 0..3 {
                ctx.send(1, i);
            }
        }
        if node == 1 {
            for &(_, m) in inbox {
                self.received.push(ctx.round() * 1000 + m);
            }
        }
    }

    fn is_idle(&self, node: usize) -> bool {
        node != 0 || self.fired
    }

    fn next_wakeup(&self, node: usize, _now: u64) -> Option<u64> {
        if node == 0 && !self.fired {
            Some(self.wake)
        } else {
            None
        }
    }
}

#[test]
fn fast_forward_counts_skipped_rounds() {
    let g = generators::path(2).unwrap();
    let mut sim = Simulator::new(&g);
    let mut algo = ScheduledBurst {
        wake: 500,
        fired: false,
        received: Vec::new(),
    };
    let rounds = sim.run(&mut algo, 10_000).unwrap();
    // The engine must skip the quiet prefix but still count it, then
    // deliver the 3-message burst pipelined over rounds 501..=503.
    assert_eq!(rounds, 503);
    assert_eq!(sim.metrics().rounds, 503);
    assert_eq!(algo.received, vec![501_000, 502_001, 503_002]);
}

/// Ping-pong across a path: message latency equals distance.
struct PingPong {
    hops: Vec<u64>,
}

impl NodeAlgorithm for PingPong {
    type Msg = u64;

    fn init(&mut self, node: usize, ctx: &mut Ctx<'_, u64>) {
        if node == 0 {
            ctx.send(1, 0);
        }
    }

    fn round(&mut self, node: usize, inbox: &[(usize, u64)], ctx: &mut Ctx<'_, u64>) {
        for &(from, hops) in inbox {
            self.hops[node] = hops + 1;
            // Forward away from the sender if possible.
            if let Some(&next) = ctx.neighbors().iter().find(|&&v| v != from) {
                ctx.send(next, hops + 1);
            }
        }
    }
}

#[test]
fn message_latency_equals_hop_distance() {
    let n = 12;
    let g = generators::path(n).unwrap();
    let mut sim = Simulator::new(&g);
    let mut algo = PingPong { hops: vec![0; n] };
    let rounds = sim.run(&mut algo, 1000).unwrap();
    assert_eq!(algo.hops[n - 1], (n - 1) as u64);
    assert_eq!(rounds, (n - 1) as u64);
}

#[test]
fn words_accounted() {
    let g = generators::path(2).unwrap();
    let mut sim = Simulator::new(&g);
    let mut algo = PingPong { hops: vec![0; 2] };
    sim.run(&mut algo, 100).unwrap();
    assert_eq!(sim.metrics().messages, 1);
    assert_eq!(sim.metrics().words, 1); // u64 payload = 1 word
}
