//! Library half of the `usnae` command-line tool: argument parsing and the
//! build pipeline, separated from `main` so they are unit-testable.
//!
//! ```text
//! usnae run --algo <name> --input graph.txt [--output emulator.txt]
//!       [--eps 0.5] [--kappa 4] [--rho 0.5] [--seed 0] [--threads 1]
//!       [--order by-id|by-id-desc|by-degree-desc|by-degree-asc]
//!       [--raw-eps] [--report]
//! usnae list
//! usnae build ...            # legacy alias: --mode centralized|fast|spanner
//! ```
//!
//! `run` dispatches through the unified algorithm registry
//! ([`usnae_baselines::registry`]), so every paper construction *and* every
//! baseline is reachable by name; `list` prints the catalogue. The older
//! `build` subcommand with its three-valued `--mode` remains as an alias
//! for the three original algorithms.
//!
//! Input is a whitespace edge list (`u v` per line, `#` comments); output is
//! a weighted edge list (`u v w`) — the emulator `H` — plus an optional
//! stretch/size report.

use std::fmt;
use std::io::BufReader;

use usnae_baselines::registry;
use usnae_core::api::{BuildConfig, BuildOutput, ProcessingOrder};
use usnae_graph::{io as gio, Graph};

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Registry name of the construction to run.
    pub algo: String,
    /// Input edge-list path.
    pub input: String,
    /// Output weighted-edge-list path.
    pub output: Option<String>,
    /// The unified construction configuration.
    pub config: BuildConfig,
    /// Print the size/stretch report.
    pub report: bool,
}

/// The commands the binary understands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Build one structure (the `run` and legacy `build` subcommands).
    Run(Options),
    /// Print the algorithm catalogue.
    List,
}

/// A user-facing CLI error with a message and the usage string.
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// The usage banner.
pub const USAGE: &str = "usage: usnae run --algo <name> --input <edge-list> [--output <path>] \
[--eps <0..1>] [--kappa <k>=4] [--rho <r>=0.5] [--seed <s>=0] [--threads <t>=1] \
[--order by-id|by-id-desc|by-degree-desc|by-degree-asc] [--raw-eps] [--report]\n\
       usnae list\n\
       usnae build --input <edge-list> [--mode centralized|fast|spanner] [...]\n\
run `usnae list` for the algorithm catalogue";

fn parse_order(s: &str) -> Option<ProcessingOrder> {
    match s {
        "by-id" => Some(ProcessingOrder::ById),
        "by-id-desc" => Some(ProcessingOrder::ByIdDesc),
        "by-degree-desc" => Some(ProcessingOrder::ByDegreeDesc),
        "by-degree-asc" => Some(ProcessingOrder::ByDegreeAsc),
        _ => None,
    }
}

/// Parses argv (excluding the program name).
///
/// # Errors
///
/// [`CliError`] with a human-readable message on any malformed input.
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let legacy_mode = match it.next().map(String::as_str) {
        Some("run") => false,
        Some("build") => true,
        Some("list") => {
            if let Some(extra) = it.next() {
                return Err(CliError(format!(
                    "list takes no arguments (got {extra:?})\n{USAGE}"
                )));
            }
            return Ok(Command::List);
        }
        Some(other) => return Err(CliError(format!("unknown subcommand {other:?}\n{USAGE}"))),
        None => return Err(CliError(USAGE.to_string())),
    };
    let mut opts = Options {
        algo: "centralized".to_string(),
        input: String::new(),
        output: None,
        config: BuildConfig::default(),
        report: false,
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError(format!("{name} needs a value\n{USAGE}")))
        };
        match flag.as_str() {
            "--algo" if !legacy_mode => {
                let v = value("--algo")?;
                if registry::find(&v).is_none() {
                    return Err(CliError(format!(
                        "unknown algorithm {v:?}; known: {}\n{USAGE}",
                        registry::names().join(", ")
                    )));
                }
                opts.algo = v;
            }
            "--mode" if legacy_mode => {
                let v = value("--mode")?;
                opts.algo = match v.as_str() {
                    "centralized" => "centralized".to_string(),
                    "fast" => "fast-centralized".to_string(),
                    "spanner" => "spanner".to_string(),
                    _ => return Err(CliError(format!("unknown mode {v:?}\n{USAGE}"))),
                };
            }
            "--input" => opts.input = value("--input")?,
            "--output" => opts.output = Some(value("--output")?),
            "--eps" => {
                opts.config.epsilon = value("--eps")?
                    .parse()
                    .map_err(|_| CliError("--eps must be a float".into()))?;
            }
            "--kappa" => {
                opts.config.kappa = value("--kappa")?
                    .parse()
                    .map_err(|_| CliError("--kappa must be an integer".into()))?;
            }
            "--rho" => {
                opts.config.rho = value("--rho")?
                    .parse()
                    .map_err(|_| CliError("--rho must be a float".into()))?;
            }
            "--seed" => {
                opts.config.seed = value("--seed")?
                    .parse()
                    .map_err(|_| CliError("--seed must be an integer".into()))?;
            }
            "--threads" => {
                opts.config.threads = value("--threads")?
                    .parse()
                    .map_err(|_| CliError("--threads must be a positive integer".into()))?;
                if opts.config.threads == 0 {
                    return Err(CliError(format!(
                        "--threads must be at least 1 (1 = sequential)\n{USAGE}"
                    )));
                }
            }
            "--order" => {
                let v = value("--order")?;
                opts.config.order = parse_order(&v)
                    .ok_or_else(|| CliError(format!("unknown order {v:?}\n{USAGE}")))?;
            }
            "--raw-eps" => opts.config.raw_epsilon = true,
            "--report" => opts.report = true,
            other => return Err(CliError(format!("unknown flag {other:?}\n{USAGE}"))),
        }
    }
    if opts.input.is_empty() {
        return Err(CliError(format!("--input is required\n{USAGE}")));
    }
    Ok(Command::Run(opts))
}

/// Builds the requested structure through the registry.
///
/// # Errors
///
/// [`CliError`] wrapping parameter or construction problems.
pub fn run_build(g: &Graph, opts: &Options) -> Result<BuildOutput, CliError> {
    let construction = registry::find(&opts.algo)
        .ok_or_else(|| CliError(format!("unknown algorithm {:?}", opts.algo)))?;
    construction
        .build(g, &opts.config)
        .map_err(|e| CliError(e.to_string()))
}

/// The `usnae list` output: one line per registry entry.
pub fn list_lines() -> Vec<String> {
    registry::all()
        .iter()
        .map(|c| {
            let s = c.supports();
            let mut tags = Vec::new();
            if s.subgraph {
                tags.push("spanner");
            } else {
                tags.push("emulator");
            }
            if s.congest {
                tags.push("congest");
            }
            if s.uses_seed {
                tags.push("randomized");
            }
            if s.certified {
                tags.push("certified");
            }
            format!("{:<20} [{}] {}", c.name(), tags.join(", "), c.description())
        })
        .collect()
}

/// Full pipeline: read, build, optionally write and report. Returns the
/// report lines printed.
///
/// # Errors
///
/// [`CliError`] on any I/O, parse, or parameter failure.
pub fn execute(opts: &Options) -> Result<Vec<String>, CliError> {
    let file = std::fs::File::open(&opts.input)
        .map_err(|e| CliError(format!("cannot open {}: {e}", opts.input)))?;
    let g = gio::read_edge_list(BufReader::new(file), 0)
        .map_err(|e| CliError(format!("cannot parse {}: {e}", opts.input)))?;
    let out = run_build(&g, opts)?;
    if let Some(path) = &opts.output {
        let file = std::fs::File::create(path)
            .map_err(|e| CliError(format!("cannot create {path}: {e}")))?;
        gio::write_weighted_edge_list(out.emulator.graph(), std::io::BufWriter::new(file))
            .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
    }
    let mut lines = vec![format!(
        "input: {} vertices, {} edges; output ({}): {} edges",
        g.num_vertices(),
        g.num_edges(),
        out.algorithm,
        out.num_edges()
    )];
    if opts.report {
        if let Some(bound) = out.size_bound {
            lines.push(format!(
                "size bound = {bound:.1}; ratio = {:.4}",
                out.num_edges() as f64 / bound
            ));
        }
        match out.certified {
            Some((alpha, beta)) => lines.push(format!(
                "certified stretch: d_H <= {alpha:.4} * d_G + {beta:.1}"
            )),
            None => lines.push("certified stretch: none (baseline construction)".to_string()),
        }
        if let Some(stats) = &out.congest {
            lines.push(format!(
                "congest: {} rounds, {} messages, knowledge violations {}",
                stats.metrics.rounds, stats.metrics.messages, stats.knowledge_violations
            ));
        }
        let mut timing = format!(
            "build: {:.3?} on {} thread(s)",
            out.stats.total, out.stats.threads
        );
        if let Some(p0) = out.stats.phase0() {
            timing.push_str(&format!(
                "; phase 0: {p0:.3?} ({} explorations)",
                out.stats.phases[0].explorations
            ));
        }
        lines.push(timing);
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn run_opts(cmd: Command) -> Options {
        match cmd {
            Command::Run(o) => o,
            Command::List => panic!("expected run command"),
        }
    }

    #[test]
    fn parses_full_run_command() {
        let o = run_opts(
            parse_args(&args(
                "run --algo spanner --input g.txt --output h.txt --eps 0.25 --kappa 8 \
                 --rho 0.4 --seed 9 --threads 4 --order by-degree-desc --raw-eps --report",
            ))
            .unwrap(),
        );
        assert_eq!(o.algo, "spanner");
        assert_eq!(o.config.kappa, 8);
        assert_eq!(o.config.epsilon, 0.25);
        assert_eq!(o.config.rho, 0.4);
        assert_eq!(o.config.seed, 9);
        assert_eq!(o.config.threads, 4);
        assert_eq!(o.config.order, ProcessingOrder::ByDegreeDesc);
        assert!(o.config.raw_epsilon && o.report);
        assert_eq!(o.output.as_deref(), Some("h.txt"));
    }

    #[test]
    fn threads_flag_validated_at_parse_time() {
        assert!(parse_args(&args("run --input g.txt --threads 0")).is_err());
        assert!(parse_args(&args("run --input g.txt --threads banana")).is_err());
        let o = run_opts(parse_args(&args("run --input g.txt --threads 8")).unwrap());
        assert_eq!(o.config.threads, 8);
    }

    #[test]
    fn threads_produce_identical_structures_through_the_cli_path() {
        let g = usnae_graph::generators::gnp_connected(100, 0.06, 17).unwrap();
        for name in registry::names() {
            let mk = |threads: usize| Options {
                algo: name.to_string(),
                input: String::new(),
                output: None,
                config: BuildConfig {
                    threads,
                    ..BuildConfig::default()
                },
                report: false,
            };
            let canonical = |out: &BuildOutput| {
                let mut edges: Vec<(usize, usize, u64)> = out
                    .emulator
                    .graph()
                    .edges()
                    .map(|e| (e.u, e.v, e.weight))
                    .collect();
                edges.sort_unstable();
                edges
            };
            let seq = run_build(&g, &mk(1)).unwrap();
            let par = run_build(&g, &mk(4)).unwrap();
            assert_eq!(
                canonical(&seq),
                canonical(&par),
                "{name}: CLI build diverged at 4 threads"
            );
        }
    }

    #[test]
    fn legacy_build_modes_map_to_registry_names() {
        for (mode, algo) in [
            ("centralized", "centralized"),
            ("fast", "fast-centralized"),
            ("spanner", "spanner"),
        ] {
            let o =
                run_opts(parse_args(&args(&format!("build --input g.txt --mode {mode}"))).unwrap());
            assert_eq!(o.algo, algo);
        }
    }

    #[test]
    fn defaults_applied() {
        let o = run_opts(parse_args(&args("run --input g.txt")).unwrap());
        assert_eq!(o.algo, "centralized");
        assert_eq!(o.config, BuildConfig::default());
    }

    #[test]
    fn rejects_bad_invocations() {
        assert!(parse_args(&args("")).is_err());
        assert!(parse_args(&args("frobnicate")).is_err());
        assert!(parse_args(&args("run")).is_err()); // missing --input
        assert!(parse_args(&args("run --input g.txt --algo nope")).is_err());
        assert!(parse_args(&args("build --input g.txt --mode nope")).is_err());
        assert!(parse_args(&args("run --input g.txt --kappa banana")).is_err());
        assert!(parse_args(&args("run --input g.txt --order sideways")).is_err());
        assert!(parse_args(&args("run --input")).is_err()); // dangling value
        assert!(parse_args(&args("build --input g.txt --algo tz06")).is_err()); // legacy has no --algo
    }

    #[test]
    fn list_command_and_catalogue() {
        assert_eq!(parse_args(&args("list")).unwrap(), Command::List);
        assert!(parse_args(&args("list --algo tz06")).is_err());
        let lines = list_lines();
        assert_eq!(lines.len(), 9);
        assert!(lines.iter().any(|l| l.starts_with("centralized")));
        assert!(lines.iter().any(|l| l.starts_with("em19")));
    }

    #[test]
    fn end_to_end_roundtrip_through_files() {
        let dir = std::env::temp_dir().join("usnae-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("g.txt");
        let output = dir.join("h.txt");
        // A small cycle graph.
        let mut text = String::from("# cycle\n");
        for i in 0..12 {
            text.push_str(&format!("{} {}\n", i, (i + 1) % 12));
        }
        std::fs::write(&input, text).unwrap();
        let opts = run_opts(
            parse_args(&args(&format!(
                "run --input {} --output {} --report",
                input.display(),
                output.display()
            )))
            .unwrap(),
        );
        let lines = execute(&opts).unwrap();
        assert!(lines[0].contains("12 vertices"));
        assert!(lines.iter().any(|l| l.contains("certified stretch")));
        // Output parses back as a weighted graph.
        let file = std::fs::File::open(&output).unwrap();
        let h =
            usnae_graph::io::read_weighted_edge_list(std::io::BufReader::new(file), 12).unwrap();
        assert!(h.num_edges() > 0);
    }

    #[test]
    fn every_registry_algorithm_runs_through_the_cli_path() {
        let g = usnae_graph::generators::gnp_connected(60, 0.1, 3).unwrap();
        for name in registry::names() {
            let opts = Options {
                algo: name.to_string(),
                input: String::new(),
                output: None,
                config: BuildConfig::default(),
                report: false,
            };
            let out = run_build(&g, &opts).unwrap();
            assert!(out.num_edges() > 0, "{name}");
            assert_eq!(out.algorithm, name);
        }
    }

    #[test]
    fn invalid_params_surface_as_cli_errors() {
        let g = usnae_graph::generators::path(5).unwrap();
        let opts = Options {
            algo: "centralized".to_string(),
            input: String::new(),
            output: None,
            config: BuildConfig {
                epsilon: 2.0, // invalid
                ..BuildConfig::default()
            },
            report: false,
        };
        assert!(run_build(&g, &opts).is_err());
    }
}
