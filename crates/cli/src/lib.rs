//! Library half of the `usnae` command-line tool: argument parsing and the
//! build pipeline, separated from `main` so they are unit-testable.
//!
//! ```text
//! usnae build --input graph.txt --output emulator.txt \
//!       [--mode centralized|fast|spanner] [--eps 0.5] [--kappa 4] [--rho 0.5]
//!       [--raw-eps] [--report]
//! ```
//!
//! Input is a whitespace edge list (`u v` per line, `#` comments); output is
//! a weighted edge list (`u v w`) — the emulator `H` — plus an optional
//! stretch/size report on stderr-friendly stdout lines.

use std::fmt;
use std::io::BufReader;

use usnae_core::centralized::build_emulator;
use usnae_core::fast_centralized::build_emulator_fast;
use usnae_core::params::{CentralizedParams, DistributedParams, SpannerParams};
use usnae_core::spanner::build_spanner;
use usnae_core::Emulator;
use usnae_graph::{io as gio, Graph};

/// Which construction to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Algorithm 1 (§2).
    #[default]
    Centralized,
    /// The fast centralized simulation (§3.3).
    Fast,
    /// The §4 subgraph spanner.
    Spanner,
}

impl Mode {
    fn parse(s: &str) -> Option<Mode> {
        match s {
            "centralized" => Some(Mode::Centralized),
            "fast" => Some(Mode::Fast),
            "spanner" => Some(Mode::Spanner),
            _ => None,
        }
    }
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Input edge-list path.
    pub input: String,
    /// Output weighted-edge-list path.
    pub output: Option<String>,
    /// Construction to run.
    pub mode: Mode,
    /// ε (public, unless `raw_eps`).
    pub epsilon: f64,
    /// κ.
    pub kappa: u32,
    /// ρ (fast/spanner modes).
    pub rho: f64,
    /// Skip the paper's rescaling.
    pub raw_eps: bool,
    /// Print the size/stretch report.
    pub report: bool,
}

/// A user-facing CLI error with a message and the usage string.
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// The usage banner.
pub const USAGE: &str = "usage: usnae build --input <edge-list> [--output <path>] \
[--mode centralized|fast|spanner] [--eps <0..1>] [--kappa <k>=4] [--rho <r>=0.5] \
[--raw-eps] [--report]";

/// Parses argv (excluding the program name).
///
/// # Errors
///
/// [`CliError`] with a human-readable message on any malformed input.
pub fn parse_args(args: &[String]) -> Result<Options, CliError> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("build") => {}
        Some(other) => return Err(CliError(format!("unknown subcommand {other:?}\n{USAGE}"))),
        None => return Err(CliError(USAGE.to_string())),
    }
    let mut opts = Options {
        input: String::new(),
        output: None,
        mode: Mode::Centralized,
        epsilon: 0.5,
        kappa: 4,
        rho: 0.5,
        raw_eps: false,
        report: false,
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError(format!("{name} needs a value\n{USAGE}")))
        };
        match flag.as_str() {
            "--input" => opts.input = value("--input")?,
            "--output" => opts.output = Some(value("--output")?),
            "--mode" => {
                let v = value("--mode")?;
                opts.mode = Mode::parse(&v)
                    .ok_or_else(|| CliError(format!("unknown mode {v:?}\n{USAGE}")))?;
            }
            "--eps" => {
                opts.epsilon = value("--eps")?
                    .parse()
                    .map_err(|_| CliError("--eps must be a float".into()))?;
            }
            "--kappa" => {
                opts.kappa = value("--kappa")?
                    .parse()
                    .map_err(|_| CliError("--kappa must be an integer".into()))?;
            }
            "--rho" => {
                opts.rho = value("--rho")?
                    .parse()
                    .map_err(|_| CliError("--rho must be a float".into()))?;
            }
            "--raw-eps" => opts.raw_eps = true,
            "--report" => opts.report = true,
            other => return Err(CliError(format!("unknown flag {other:?}\n{USAGE}"))),
        }
    }
    if opts.input.is_empty() {
        return Err(CliError(format!("--input is required\n{USAGE}")));
    }
    Ok(opts)
}

/// Builds the requested structure, returning it plus the certified stretch.
///
/// # Errors
///
/// [`CliError`] wrapping parameter or construction problems.
pub fn run_build(g: &Graph, opts: &Options) -> Result<(Emulator, f64, f64), CliError> {
    let wrap = |e: usnae_core::ParamError| CliError(e.to_string());
    match opts.mode {
        Mode::Centralized => {
            let p = if opts.raw_eps {
                CentralizedParams::with_raw_epsilon(opts.epsilon, opts.kappa)
            } else {
                CentralizedParams::new(opts.epsilon, opts.kappa)
            }
            .map_err(wrap)?;
            let (a, b) = p.certified_stretch();
            Ok((build_emulator(g, &p), a, b))
        }
        Mode::Fast => {
            let p = if opts.raw_eps {
                DistributedParams::with_raw_epsilon(opts.epsilon, opts.kappa, opts.rho)
            } else {
                DistributedParams::new(opts.epsilon, opts.kappa, opts.rho)
            }
            .map_err(wrap)?;
            let (a, b) = p.certified_stretch();
            Ok((build_emulator_fast(g, &p), a, b))
        }
        Mode::Spanner => {
            let p = if opts.raw_eps {
                SpannerParams::with_raw_epsilon(opts.epsilon, opts.kappa, opts.rho)
            } else {
                SpannerParams::new(opts.epsilon, opts.kappa, opts.rho)
            }
            .map_err(wrap)?;
            let (a, b) = p.certified_stretch();
            Ok((build_spanner(g, &p), a, b))
        }
    }
}

/// Full pipeline: read, build, optionally write and report. Returns the
/// report lines printed.
///
/// # Errors
///
/// [`CliError`] on any I/O, parse, or parameter failure.
pub fn execute(opts: &Options) -> Result<Vec<String>, CliError> {
    let file = std::fs::File::open(&opts.input)
        .map_err(|e| CliError(format!("cannot open {}: {e}", opts.input)))?;
    let g = gio::read_edge_list(BufReader::new(file), 0)
        .map_err(|e| CliError(format!("cannot parse {}: {e}", opts.input)))?;
    let (h, alpha, beta) = run_build(&g, opts)?;
    if let Some(out) = &opts.output {
        let file = std::fs::File::create(out)
            .map_err(|e| CliError(format!("cannot create {out}: {e}")))?;
        gio::write_weighted_edge_list(h.graph(), std::io::BufWriter::new(file))
            .map_err(|e| CliError(format!("cannot write {out}: {e}")))?;
    }
    let mut lines = vec![format!(
        "input: {} vertices, {} edges; output ({:?}): {} edges",
        g.num_vertices(),
        g.num_edges(),
        opts.mode,
        h.num_edges()
    )];
    if opts.report {
        let bound = (g.num_vertices() as f64).powf(1.0 + 1.0 / opts.kappa as f64);
        lines.push(format!(
            "size bound n^(1+1/kappa) = {bound:.1}; ratio = {:.4}",
            h.num_edges() as f64 / bound
        ));
        lines.push(format!(
            "certified stretch: d_H <= {alpha:.4} * d_G + {beta:.1}"
        ));
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_full_command() {
        let o = parse_args(&args(
            "build --input g.txt --output h.txt --mode spanner --eps 0.25 --kappa 8 --rho 0.4 --raw-eps --report",
        ))
        .unwrap();
        assert_eq!(o.mode, Mode::Spanner);
        assert_eq!(o.kappa, 8);
        assert_eq!(o.epsilon, 0.25);
        assert_eq!(o.rho, 0.4);
        assert!(o.raw_eps && o.report);
        assert_eq!(o.output.as_deref(), Some("h.txt"));
    }

    #[test]
    fn defaults_applied() {
        let o = parse_args(&args("build --input g.txt")).unwrap();
        assert_eq!(o.mode, Mode::Centralized);
        assert_eq!(o.kappa, 4);
        assert_eq!(o.epsilon, 0.5);
        assert!(!o.raw_eps);
    }

    #[test]
    fn rejects_bad_invocations() {
        assert!(parse_args(&args("")).is_err());
        assert!(parse_args(&args("frobnicate")).is_err());
        assert!(parse_args(&args("build")).is_err()); // missing --input
        assert!(parse_args(&args("build --input g.txt --mode nope")).is_err());
        assert!(parse_args(&args("build --input g.txt --kappa banana")).is_err());
        assert!(parse_args(&args("build --input")).is_err()); // dangling value
    }

    #[test]
    fn end_to_end_roundtrip_through_files() {
        let dir = std::env::temp_dir().join("usnae-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("g.txt");
        let output = dir.join("h.txt");
        // A small cycle graph.
        let mut text = String::from("# cycle\n");
        for i in 0..12 {
            text.push_str(&format!("{} {}\n", i, (i + 1) % 12));
        }
        std::fs::write(&input, text).unwrap();
        let opts = parse_args(&args(&format!(
            "build --input {} --output {} --report",
            input.display(),
            output.display()
        )))
        .unwrap();
        let lines = execute(&opts).unwrap();
        assert!(lines[0].contains("12 vertices"));
        assert!(lines.iter().any(|l| l.contains("certified stretch")));
        // Output parses back as a weighted graph.
        let file = std::fs::File::open(&output).unwrap();
        let h =
            usnae_graph::io::read_weighted_edge_list(std::io::BufReader::new(file), 12).unwrap();
        assert!(h.num_edges() > 0);
    }

    #[test]
    fn build_modes_all_work() {
        let g = usnae_graph::generators::gnp_connected(60, 0.1, 3).unwrap();
        for mode in [Mode::Centralized, Mode::Fast, Mode::Spanner] {
            let opts = Options {
                input: String::new(),
                output: None,
                mode,
                epsilon: 0.5,
                kappa: 4,
                rho: 0.5,
                raw_eps: false,
                report: false,
            };
            let (h, alpha, beta) = run_build(&g, &opts).unwrap();
            assert!(h.num_edges() > 0, "{mode:?}");
            assert!(alpha >= 1.0 && beta >= 0.0);
        }
    }

    #[test]
    fn invalid_params_surface_as_cli_errors() {
        let g = usnae_graph::generators::path(5).unwrap();
        let opts = Options {
            input: String::new(),
            output: None,
            mode: Mode::Centralized,
            epsilon: 2.0, // invalid
            kappa: 4,
            rho: 0.5,
            raw_eps: false,
            report: false,
        };
        assert!(run_build(&g, &opts).is_err());
    }
}
