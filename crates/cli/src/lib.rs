//! Library half of the `usnae` command-line tool: argument parsing and the
//! build pipeline, separated from `main` so they are unit-testable.
//!
//! ```text
//! usnae run --algo <name> --input graph.txt [--output emulator.txt]
//!       [--eps 0.5] [--kappa 4] [--rho 0.5] [--seed 0] [--threads 1]
//!       [--shards 0] [--partition range|degree-balanced]
//!       [--transport inproc|channel|process|socket]
//!       [--workers-addr host:port,host:port,...]
//!       [--order by-id|by-id-desc|by-degree-desc|by-degree-asc]
//!       [--raw-eps] [--report] [--cache DIR]
//! usnae query --algo <name> --input graph.txt --pairs pairs.txt
//!       [--landmarks K] [--cache DIR] [--report] [build flags...]
//! usnae query --mapped snapshot.usnae --pairs pairs.txt [--landmarks K]
//! usnae list
//! usnae cache ls|clear|verify DIR
//! usnae build ...            # legacy alias: --mode centralized|fast|spanner
//! ```
//!
//! `run` dispatches through the unified algorithm registry
//! ([`usnae_baselines::registry`]), so every paper construction *and* every
//! baseline is reachable by name; `list` prints the catalogue. The older
//! `build` subcommand with its three-valued `--mode` remains as an alias
//! for the three original algorithms.
//!
//! `--shards N` splits the input graph into `N` per-worker CSR shards
//! (`--partition` picks the range or degree-balanced cut) and the
//! sharding-capable constructions read their explorations from the local
//! shards; the built structure is byte-identical to the unsharded run and
//! `--report` adds a per-shard layout line.
//!
//! `--transport channel|process|socket` (requires `--shards`) moves the
//! sharded explorations to one worker per shard — OS threads with bounded
//! channels, child `usnae-worker` processes speaking a checksummed binary
//! protocol, or the same framed protocol over TCP (loopback children by
//! default; `--workers-addr host:port,...` dials pre-started remote
//! `usnae-worker --listen` processes, one address per shard) — still
//! byte-identical to the in-process run; `--report` then adds a
//! `transport:` line with the measured round/message/byte totals.
//!
//! `--graph-file <csr>` is the out-of-core build path: with `--input`
//! the edge list is first **streamed** into the CSR file (two passes over
//! the text, never materializing the graph), without it the file must
//! already exist; either way the graph is then memory-mapped and the
//! construction runs over it through `build_mapped` — byte-identical to
//! the heap run, with peak memory bounded by the output structure rather
//! than the input graph.
//!
//! `usnae query --mapped <snapshot>` is the zero-copy serving path: the
//! codec-v4 snapshot file is mapped, its section directory is used to
//! serve the stored emulator CSR directly, and certified answers are
//! produced **without building anything and without decoding the record
//! stream** — no `--input`, no `--algo`, no construction run.
//!
//! `--cache DIR` makes the build read-through a fingerprint-keyed
//! construction cache (see `usnae_core::cache`): a warm, verified entry is
//! loaded instead of rebuilt, and the run line reports `cache: hit`.
//! `usnae cache ls` lists a cache directory, `clear` empties it, and
//! `verify` recomputes every stored stream fingerprint — the same
//! integrity check CI runs.
//!
//! `query` is the serving verb: it obtains the structure (through the
//! same cache — a warm hit answers **without rebuilding**, visible as
//! `cache: hit`), wraps it in a `QueryEngine`
//! (`usnae_core::oracle`), and answers a file of `u v` pairs in one
//! batch, one `u v distance` line per pair, each certified by the
//! construction's `(α, β)`. `--landmarks K` routes answers through a
//! precomputed K-landmark index instead (certified at `(α, β + 2R)`);
//! `--report` appends the guarantee and the engine's tree/cache
//! counters.
//!
//! Input is a whitespace edge list (`u v` per line, `#` comments); output is
//! a weighted edge list (`u v w`) — the emulator `H` — plus an optional
//! stretch/size report.

use std::fmt;
use std::io::BufReader;

use usnae_baselines::registry;
use usnae_core::api::{
    BuildConfig, BuildOutput, CacheStatus, MappedBackend, OutputBackend, PartitionPolicy,
    ProcessingOrder, QueryEngine, TransportKind,
};
use usnae_core::cache::{build_cached, CacheConfig, CacheKey, ConstructionCache};
use usnae_core::serve::JobSpec;
use usnae_graph::io::StreamOptions;
use usnae_graph::{io as gio, Graph, MappedGraph};

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Registry name of the construction to run.
    pub algo: String,
    /// Input edge-list path.
    pub input: String,
    /// Out-of-core path (`--graph-file <csr>`): build over a mapped CSR
    /// graph file instead of a heap graph. With `--input` the edge list
    /// is first streamed into this file (two passes, bounded memory);
    /// without it the file must already exist.
    pub graph_file: Option<String>,
    /// Output weighted-edge-list path.
    pub output: Option<String>,
    /// The unified construction configuration.
    pub config: BuildConfig,
    /// Print the size/stretch report.
    pub report: bool,
    /// Construction-cache directory (`--cache DIR`), if any.
    pub cache_dir: Option<String>,
    /// Thin-client mode (`--connect SOCKET`): ship the job to a running
    /// `usnae serve` daemon instead of building locally. The daemon
    /// resolves `--input` on *its* filesystem and serves warm hits from
    /// its shared cache.
    pub connect: Option<String>,
    /// Pre-started remote workers for `--transport socket`
    /// (`--workers-addr host:port,host:port,...`, one address per shard
    /// in shard order). Exported as `USNAE_WORKERS_ADDR` before the
    /// build; without it the socket transport spawns loopback
    /// `usnae-worker --listen` children. Kept off [`BuildConfig`] so the
    /// cache digest is deployment-independent.
    pub workers_addr: Option<String>,
}

/// Parsed `usnae query` command line: the build half (reused verbatim —
/// same flags, same cache) plus the serving knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOptions {
    /// How to obtain the structure to serve (algorithm, input, cache...).
    pub build: Options,
    /// Path of the query-pairs file (`u v` per line, `#` comments).
    pub pairs: String,
    /// Landmarks to precompute (0 = answer along exact emulator paths).
    pub landmarks: usize,
    /// Serve a stored codec-v4 snapshot file zero-copy (`--mapped
    /// <snapshot>`): no graph is read and no construction runs — the
    /// engine answers straight from the mapped emulator CSR section.
    pub mapped: Option<String>,
}

/// Maintenance actions on a cache directory (`usnae cache <action> DIR`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAction {
    /// List every entry with its key and fingerprint.
    Ls,
    /// Delete every entry.
    Clear,
    /// Recompute every stored fingerprint; report stale/corrupt entries.
    Verify,
}

impl CacheAction {
    fn parse(s: &str) -> Option<CacheAction> {
        match s {
            "ls" => Some(CacheAction::Ls),
            "clear" => Some(CacheAction::Clear),
            "verify" => Some(CacheAction::Verify),
            _ => None,
        }
    }
}

/// Parsed `usnae serve` command line.
///
/// Three mutually exclusive modes share the verb: run the daemon
/// (`--cache` required), print a running daemon's counters (`--stats`),
/// or stop it (`--stop`).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// Unix socket path the daemon listens on / the client dials.
    pub socket: String,
    /// Shared snapshot-cache directory (daemon mode).
    pub cache_dir: Option<String>,
    /// Cache byte budget (`--budget BYTES`; absent = unbounded).
    pub budget: Option<u64>,
    /// Build worker threads (`--workers N`).
    pub workers: usize,
    /// Bounded job-queue capacity (`--queue-cap N`); a cold build
    /// arriving on a full queue is refused with a typed busy error.
    pub queue_cap: usize,
    /// Client mode: print the daemon's `stats` report and exit.
    pub stats: bool,
    /// Client mode: ask the daemon to shut down and exit.
    pub stop: bool,
}

/// The commands the binary understands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Build one structure (the `run` and legacy `build` subcommands).
    Run(Options),
    /// Answer distance queries over a built structure.
    Query(QueryOptions),
    /// Print the algorithm catalogue.
    List,
    /// Maintain a construction-cache directory.
    Cache(CacheAction, String),
    /// Run (or talk to) the always-on build-and-query daemon.
    Serve(ServeOptions),
}

/// A user-facing CLI error with a message and the usage string.
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// The usage banner.
pub const USAGE: &str = "usage: usnae run --algo <name> --input <edge-list> [--output <path>] \
[--graph-file <csr-file>] \
[--eps <0..1>] [--kappa <k>=4] [--rho <r>=0.5] [--seed <s>=0] [--threads <t>=1] \
[--shards <k>=0] [--partition range|degree-balanced] [--transport inproc|channel|process|socket] \
[--workers-addr <host:port,...>] \
[--order by-id|by-id-desc|by-degree-desc|by-degree-asc] [--raw-eps] [--report] [--cache <dir>]\n\
       usnae query --algo <name> --input <edge-list> --pairs <pairs-file> \
[--landmarks <k>=0] [--cache <dir>] [--report] [build flags]\n\
       usnae query --mapped <snapshot> --pairs <pairs-file> [--landmarks <k>=0] [--report]\n\
       usnae run|query ... --connect <socket>   # ship the job to a running daemon\n\
       usnae serve --socket <path> --cache <dir> [--budget <bytes>] [--workers <n>=2] \
[--queue-cap <n>=8]\n\
       usnae serve --socket <path> --stats|--stop\n\
       usnae list\n\
       usnae cache ls|clear|verify <dir>\n\
       usnae build --input <edge-list> [--mode centralized|fast|spanner] [...]\n\
run `usnae list` for the algorithm catalogue";

fn parse_order(s: &str) -> Option<ProcessingOrder> {
    match s {
        "by-id" => Some(ProcessingOrder::ById),
        "by-id-desc" => Some(ProcessingOrder::ByIdDesc),
        "by-degree-desc" => Some(ProcessingOrder::ByDegreeDesc),
        "by-degree-asc" => Some(ProcessingOrder::ByDegreeAsc),
        _ => None,
    }
}

/// Parses argv (excluding the program name).
///
/// # Errors
///
/// [`CliError`] with a human-readable message on any malformed input.
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    #[derive(PartialEq)]
    enum Mode {
        Run,
        LegacyBuild,
        Query,
    }
    let mut it = args.iter();
    let mode = match it.next().map(String::as_str) {
        Some("run") => Mode::Run,
        Some("build") => Mode::LegacyBuild,
        Some("query") => Mode::Query,
        Some("list") => {
            if let Some(extra) = it.next() {
                return Err(CliError(format!(
                    "list takes no arguments (got {extra:?})\n{USAGE}"
                )));
            }
            return Ok(Command::List);
        }
        Some("cache") => {
            let action_name = it.next().cloned().ok_or_else(|| {
                CliError(format!("cache needs an action: ls|clear|verify\n{USAGE}"))
            })?;
            let action = CacheAction::parse(&action_name).ok_or_else(|| {
                CliError(format!("unknown cache action {action_name:?}\n{USAGE}"))
            })?;
            let dir = it.next().cloned().ok_or_else(|| {
                CliError(format!("cache {action_name} needs a directory\n{USAGE}"))
            })?;
            if let Some(extra) = it.next() {
                return Err(CliError(format!(
                    "cache takes one directory (got extra {extra:?})\n{USAGE}"
                )));
            }
            return Ok(Command::Cache(action, dir));
        }
        Some("serve") => {
            let mut sopts = ServeOptions {
                socket: String::new(),
                cache_dir: None,
                budget: None,
                workers: 2,
                queue_cap: 8,
                stats: false,
                stop: false,
            };
            while let Some(flag) = it.next() {
                let mut value = |name: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| CliError(format!("{name} needs a value\n{USAGE}")))
                };
                match flag.as_str() {
                    "--socket" => sopts.socket = value("--socket")?,
                    "--cache" => sopts.cache_dir = Some(value("--cache")?),
                    "--budget" => {
                        sopts.budget = Some(
                            value("--budget")?
                                .parse()
                                .map_err(|_| CliError("--budget must be a byte count".into()))?,
                        );
                    }
                    "--workers" => {
                        sopts.workers = value("--workers")?
                            .parse()
                            .map_err(|_| CliError("--workers must be a positive integer".into()))?;
                        if sopts.workers == 0 {
                            return Err(CliError(format!("--workers must be at least 1\n{USAGE}")));
                        }
                    }
                    "--queue-cap" => {
                        sopts.queue_cap = value("--queue-cap")?
                            .parse()
                            .map_err(|_| CliError("--queue-cap must be an integer".into()))?;
                    }
                    "--stats" => sopts.stats = true,
                    "--stop" => sopts.stop = true,
                    other => return Err(CliError(format!("unknown flag {other:?}\n{USAGE}"))),
                }
            }
            if sopts.socket.is_empty() {
                return Err(CliError(format!("serve requires --socket\n{USAGE}")));
            }
            if sopts.stats && sopts.stop {
                return Err(CliError(format!(
                    "--stats and --stop are mutually exclusive\n{USAGE}"
                )));
            }
            if sopts.stats || sopts.stop {
                if sopts.cache_dir.is_some() || sopts.budget.is_some() {
                    return Err(CliError(format!(
                        "--stats/--stop talk to a running daemon; daemon flags don't apply\n{USAGE}"
                    )));
                }
            } else if sopts.cache_dir.is_none() {
                return Err(CliError(format!(
                    "serve (daemon mode) requires --cache <dir>\n{USAGE}"
                )));
            }
            return Ok(Command::Serve(sopts));
        }
        Some(other) => return Err(CliError(format!("unknown subcommand {other:?}\n{USAGE}"))),
        None => return Err(CliError(USAGE.to_string())),
    };
    let mut opts = Options {
        algo: "centralized".to_string(),
        input: String::new(),
        graph_file: None,
        output: None,
        config: BuildConfig::default(),
        report: false,
        cache_dir: None,
        connect: None,
        workers_addr: None,
    };
    let mut pairs = String::new();
    let mut landmarks = 0usize;
    let mut mapped: Option<String> = None;
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError(format!("{name} needs a value\n{USAGE}")))
        };
        match flag.as_str() {
            "--pairs" if mode == Mode::Query => pairs = value("--pairs")?,
            "--mapped" if mode == Mode::Query => mapped = Some(value("--mapped")?),
            "--graph-file" if mode != Mode::Query => {
                opts.graph_file = Some(value("--graph-file")?);
            }
            "--landmarks" if mode == Mode::Query => {
                landmarks = value("--landmarks")?
                    .parse()
                    .map_err(|_| CliError("--landmarks must be an integer".into()))?;
            }
            "--algo" if mode != Mode::LegacyBuild => {
                let v = value("--algo")?;
                if registry::find(&v).is_none() {
                    return Err(CliError(format!(
                        "unknown algorithm {v:?}; known: {}\n{USAGE}",
                        registry::names().join(", ")
                    )));
                }
                opts.algo = v;
            }
            "--mode" if mode == Mode::LegacyBuild => {
                let v = value("--mode")?;
                opts.algo = match v.as_str() {
                    "centralized" => "centralized".to_string(),
                    "fast" => "fast-centralized".to_string(),
                    "spanner" => "spanner".to_string(),
                    _ => return Err(CliError(format!("unknown mode {v:?}\n{USAGE}"))),
                };
            }
            "--input" => opts.input = value("--input")?,
            "--output" => opts.output = Some(value("--output")?),
            "--eps" => {
                opts.config.epsilon = value("--eps")?
                    .parse()
                    .map_err(|_| CliError("--eps must be a float".into()))?;
            }
            "--kappa" => {
                opts.config.kappa = value("--kappa")?
                    .parse()
                    .map_err(|_| CliError("--kappa must be an integer".into()))?;
            }
            "--rho" => {
                opts.config.rho = value("--rho")?
                    .parse()
                    .map_err(|_| CliError("--rho must be a float".into()))?;
            }
            "--seed" => {
                opts.config.seed = value("--seed")?
                    .parse()
                    .map_err(|_| CliError("--seed must be an integer".into()))?;
            }
            "--threads" => {
                opts.config.threads = value("--threads")?
                    .parse()
                    .map_err(|_| CliError("--threads must be a positive integer".into()))?;
                if opts.config.threads == 0 {
                    return Err(CliError(format!(
                        "--threads must be at least 1 (1 = sequential)\n{USAGE}"
                    )));
                }
            }
            "--shards" => {
                opts.config.shards = value("--shards")?.parse().map_err(|_| {
                    CliError("--shards must be an integer (0 = shared array)".into())
                })?;
            }
            "--partition" => {
                let v = value("--partition")?;
                opts.config.partition = PartitionPolicy::parse(&v)
                    .ok_or_else(|| CliError(format!("unknown partition policy {v:?}\n{USAGE}")))?;
            }
            "--transport" => {
                let v = value("--transport")?;
                opts.config.transport = TransportKind::parse(&v)
                    .ok_or_else(|| CliError(format!("unknown transport {v:?}\n{USAGE}")))?;
            }
            "--workers-addr" => {
                opts.workers_addr = Some(value("--workers-addr")?);
            }
            "--order" => {
                let v = value("--order")?;
                opts.config.order = parse_order(&v)
                    .ok_or_else(|| CliError(format!("unknown order {v:?}\n{USAGE}")))?;
            }
            "--raw-eps" => opts.config.raw_epsilon = true,
            "--report" => opts.report = true,
            "--cache" => opts.cache_dir = Some(value("--cache")?),
            "--connect" if mode != Mode::LegacyBuild => {
                opts.connect = Some(value("--connect")?);
            }
            other => return Err(CliError(format!("unknown flag {other:?}\n{USAGE}"))),
        }
    }
    if opts.input.is_empty() && opts.graph_file.is_none() && mapped.is_none() {
        return Err(CliError(format!("--input is required\n{USAGE}")));
    }
    if opts.workers_addr.is_some() && opts.config.transport != TransportKind::Socket {
        return Err(CliError(format!(
            "--workers-addr names remote socket workers; it requires --transport socket\n{USAGE}"
        )));
    }
    if opts.graph_file.is_some() && opts.cache_dir.is_some() {
        // The cache key fingerprints a heap graph; keying it would
        // materialize exactly what --graph-file avoids.
        return Err(CliError(format!(
            "--graph-file runs out-of-core and cannot use --cache\n{USAGE}"
        )));
    }
    if opts.connect.is_some() {
        // The daemon owns the cache, the graph file resolution, and the
        // execution layout; the thin client only ships the job.
        if opts.input.is_empty() {
            return Err(CliError(format!(
                "--connect ships a job by graph path; --input is required\n{USAGE}"
            )));
        }
        if opts.graph_file.is_some() || opts.cache_dir.is_some() || opts.output.is_some() {
            return Err(CliError(format!(
                "--connect defers building to the daemon; \
                 --graph-file/--cache/--output don't apply\n{USAGE}"
            )));
        }
    }
    if mode == Mode::Query {
        if pairs.is_empty() {
            return Err(CliError(format!("query requires --pairs\n{USAGE}")));
        }
        if opts.output.is_some() {
            return Err(CliError(format!(
                "query answers pairs; --output belongs to run\n{USAGE}"
            )));
        }
        if mapped.is_some() && !opts.input.is_empty() {
            return Err(CliError(format!(
                "--mapped serves a stored snapshot; it takes no --input\n{USAGE}"
            )));
        }
        if mapped.is_some() && opts.cache_dir.is_some() {
            return Err(CliError(format!(
                "--mapped serves one snapshot file; it takes no --cache\n{USAGE}"
            )));
        }
        if mapped.is_some() && opts.connect.is_some() {
            return Err(CliError(format!(
                "--mapped serves a local snapshot; --connect queries a daemon\n{USAGE}"
            )));
        }
        return Ok(Command::Query(QueryOptions {
            build: opts,
            pairs,
            landmarks,
            mapped,
        }));
    }
    Ok(Command::Run(opts))
}

/// Reads a query-pairs file: one `u v` pair per whitespace-separated line,
/// `#` starts a comment, vertex ids must be `< n`.
///
/// # Errors
///
/// [`CliError`] on unreadable files, malformed lines, or out-of-range ids.
pub fn read_pairs(path: &str, n: usize) -> Result<Vec<(usize, usize)>, CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError(format!("cannot open {path}: {e}")))?;
    let mut pairs = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let mut id = |name: &str| -> Result<usize, CliError> {
            let tok = tokens
                .next()
                .ok_or_else(|| CliError(format!("{path}:{}: expected `u v`", lineno + 1)))?;
            let v: usize = tok.parse().map_err(|_| {
                CliError(format!(
                    "{path}:{}: {name} {tok:?} is not a vertex id",
                    lineno + 1
                ))
            })?;
            if v >= n {
                return Err(CliError(format!(
                    "{path}:{}: vertex {v} out of range (graph has {n} vertices)",
                    lineno + 1
                )));
            }
            Ok(v)
        };
        let pair = (id("u")?, id("v")?);
        if let Some(extra) = tokens.next() {
            return Err(CliError(format!(
                "{path}:{}: expected `u v`, got extra {extra:?}",
                lineno + 1
            )));
        }
        pairs.push(pair);
    }
    if pairs.is_empty() {
        return Err(CliError(format!("{path}: no query pairs")));
    }
    Ok(pairs)
}

/// The `usnae query` pipeline: obtain the structure (through the
/// construction cache when `--cache` was given — a warm hit never
/// re-runs the construction), answer every pair in one batch, and return
/// the printed lines: a header, the `cache:` line when caching, one
/// `u v distance` line per pair, and (with `--report`) the certified
/// guarantee plus the engine's counters.
///
/// # Errors
///
/// [`CliError`] on any I/O, parse, parameter, or out-of-range failure.
pub fn execute_query(qopts: &QueryOptions) -> Result<Vec<String>, CliError> {
    let opts = &qopts.build;
    if let Some(socket) = &opts.connect {
        return execute_query_connect(qopts, socket);
    }
    let (engine, pairs, header) = if let Some(snap_path) = &qopts.mapped {
        // Zero-copy serving: the engine answers straight from the mapped
        // snapshot's emulator CSR section — no graph read, no build, no
        // heap copy of the structure.
        let backend = MappedBackend::open(snap_path)
            .map_err(|e| CliError(format!("cannot map snapshot {snap_path}: {e}")))?;
        let pairs = read_pairs(&qopts.pairs, backend.num_vertices())?;
        let engine = QueryEngine::open(&backend)
            .map_err(|e| CliError(format!("cannot serve {snap_path}: {e}")))?
            .with_landmarks(qopts.landmarks);
        let header = format!(
            "mapped: {snap_path}; serving {} ({} vertices, {} edges), {} pair(s)",
            engine.algorithm(),
            engine.num_vertices(),
            engine.num_edges(),
            pairs.len()
        );
        (engine, pairs, header)
    } else {
        let file = std::fs::File::open(&opts.input)
            .map_err(|e| CliError(format!("cannot open {}: {e}", opts.input)))?;
        let g = gio::read_edge_list(BufReader::new(file), 0)
            .map_err(|e| CliError(format!("cannot parse {}: {e}", opts.input)))?;
        let pairs = read_pairs(&qopts.pairs, g.num_vertices())?;
        // Warm-hit fast path: when the cached entry is a codec-v4
        // snapshot, serve its emulator CSR section zero-copy instead of
        // decoding the record stream into a heap build. Anything that
        // doesn't map cleanly (legacy v2/v3 entry, cold cache, key
        // drift) falls back to the ordinary cached build.
        let mapped_engine = opts.cache_dir.as_ref().and_then(|dir| {
            let construction = registry::find(&opts.algo)?;
            let key = CacheKey::new(&g, construction.name(), &opts.config);
            let backend = MappedBackend::open(ConstructionCache::new(dir).entry_path(&key)).ok()?;
            if backend.snapshot().key() != &key {
                return None;
            }
            QueryEngine::open(&backend).ok()
        });
        let (engine, cache_status) = match mapped_engine {
            Some(engine) => (engine, CacheStatus::Hit),
            None => {
                let out = run_build(&g, opts)?;
                let status = out.stats.cache;
                (out.into_query_engine(), status)
            }
        };
        let engine = engine.with_landmarks(qopts.landmarks);
        let mut header = format!(
            "input: {} vertices, {} edges; serving {} ({} edges), {} pair(s)",
            g.num_vertices(),
            g.num_edges(),
            engine.algorithm(),
            engine.num_edges(),
            pairs.len()
        );
        if opts.cache_dir.is_some() {
            header.push_str(&format!("\ncache: {cache_status}"));
        }
        (engine, pairs, header)
    };

    let mut lines: Vec<String> = header.lines().map(String::from).collect();
    let answers: Vec<_> = if qopts.landmarks > 0 {
        pairs
            .iter()
            .map(|&(u, v)| engine.approx_distance(u, v))
            .collect()
    } else {
        engine.distances(&pairs)
    };
    for (&(u, v), a) in pairs.iter().zip(&answers) {
        match a.value {
            Some(d) => lines.push(format!("{u} {v} {d}")),
            None => lines.push(format!("{u} {v} unreachable")),
        }
    }
    if opts.report {
        let (alpha, beta) = if qopts.landmarks > 0 {
            engine.landmark_guarantee()
        } else {
            engine.guarantee()
        };
        if beta.is_finite() {
            lines.push(format!(
                "certified stretch: d_hat <= {alpha:.4} * d_G + {beta:.1}"
            ));
        } else {
            lines.push("certified stretch: lower bound only (uncertified construction)".into());
        }
        let stats = engine.stats();
        lines.push(format!(
            "engine: {} quer(y/ies), {} tree build(s), {} cache hit(s), {} eviction(s), {} landmark quer(y/ies)",
            stats.queries, stats.tree_builds, stats.cache_hits, stats.evictions, stats.landmark_queries
        ));
        if let Some(index) = engine.landmark_index() {
            match index.radius() {
                Some(r) => lines.push(format!(
                    "landmarks: {} (covering radius {r})",
                    index.landmarks().len()
                )),
                None => lines.push(format!(
                    "landmarks: {} (some vertex uncovered — no additive bound)",
                    index.landmarks().len()
                )),
            }
        }
    }
    Ok(lines)
}

/// The `run --connect` thin client: ship the job to a running daemon,
/// stream its phase progress, and report the built structure — same
/// `cache:` and `stream fingerprint:` line formats as a local run, so
/// scripts (and CI) grep both paths identically.
#[cfg(unix)]
fn execute_run_connect(opts: &Options, socket: &str) -> Result<Vec<String>, CliError> {
    use usnae_core::serve::Client;
    let job = JobSpec::new(&opts.input, &opts.algo, &opts.config);
    let mut client = Client::connect(socket)
        .map_err(|e| CliError(format!("cannot reach daemon at {socket}: {e}")))?;
    let mut phase_lines = Vec::new();
    let meta = client
        .build(&job, |phase, micros, explorations| {
            phase_lines.push(format!(
                "phase {phase}: {micros} us ({explorations} explorations)"
            ));
        })
        .map_err(|e| CliError(e.to_string()))?;
    let mut lines = vec![format!(
        "daemon: {socket}; built {} ({} vertices): {} edges",
        meta.algorithm, meta.num_vertices, meta.num_edges
    )];
    lines.push(format!("cache: {}", meta.cache));
    if opts.report {
        lines.push(format!(
            "stream fingerprint: {:016x}",
            meta.stream_fingerprint
        ));
        lines.extend(phase_lines);
        lines.push(format!("daemon build: {} us", meta.total_micros));
    }
    Ok(lines)
}

#[cfg(not(unix))]
fn execute_run_connect(_opts: &Options, _socket: &str) -> Result<Vec<String>, CliError> {
    Err(CliError(
        "--connect requires Unix domain sockets (unavailable on this platform)".into(),
    ))
}

/// The `query --connect` thin client: the daemon ensures the structure
/// is built (read-through its shared cache) and answers the batch;
/// pair range checking happens daemon-side against the actual graph.
#[cfg(unix)]
fn execute_query_connect(qopts: &QueryOptions, socket: &str) -> Result<Vec<String>, CliError> {
    use usnae_core::serve::Client;
    let opts = &qopts.build;
    let pairs = read_pairs(&qopts.pairs, usize::MAX)?;
    let wire_pairs: Vec<(u64, u64)> = pairs.iter().map(|&(u, v)| (u as u64, v as u64)).collect();
    let job = JobSpec::new(&opts.input, &opts.algo, &opts.config);
    let mut client = Client::connect(socket)
        .map_err(|e| CliError(format!("cannot reach daemon at {socket}: {e}")))?;
    let answers = client
        .query(&job, &wire_pairs, qopts.landmarks as u64)
        .map_err(|e| CliError(e.to_string()))?;
    let mut lines = vec![format!(
        "daemon: {socket}; serving {}, {} pair(s)",
        opts.algo,
        pairs.len()
    )];
    lines.push(format!("cache: {}", answers.cache));
    for (&(u, v), d) in pairs.iter().zip(&answers.distances) {
        match d {
            Some(d) => lines.push(format!("{u} {v} {d}")),
            None => lines.push(format!("{u} {v} unreachable")),
        }
    }
    if opts.report {
        if answers.beta.is_finite() {
            lines.push(format!(
                "certified stretch: d_hat <= {:.4} * d_G + {:.1}",
                answers.alpha, answers.beta
            ));
        } else {
            lines.push("certified stretch: lower bound only (uncertified construction)".into());
        }
    }
    Ok(lines)
}

#[cfg(not(unix))]
fn execute_query_connect(_qopts: &QueryOptions, _socket: &str) -> Result<Vec<String>, CliError> {
    Err(CliError(
        "--connect requires Unix domain sockets (unavailable on this platform)".into(),
    ))
}

/// The `usnae serve` pipeline: run the daemon (blocking until a client
/// sends `--stop`), or talk to a running one (`--stats` / `--stop`).
/// Returns the lines printed after the verb completes.
///
/// # Errors
///
/// [`CliError`] on bind/connect failures or daemon-reported errors.
#[cfg(unix)]
pub fn execute_serve(sopts: &ServeOptions) -> Result<Vec<String>, CliError> {
    use usnae_core::serve::{Client, Resolver, ServeConfig, Server};
    if sopts.stop {
        let mut client = Client::connect(&sopts.socket)
            .map_err(|e| CliError(format!("cannot reach daemon at {}: {e}", sopts.socket)))?;
        client.shutdown().map_err(|e| CliError(e.to_string()))?;
        return Ok(vec![format!("daemon at {} stopping", sopts.socket)]);
    }
    if sopts.stats {
        let mut client = Client::connect(&sopts.socket)
            .map_err(|e| CliError(format!("cannot reach daemon at {}: {e}", sopts.socket)))?;
        let stats = client.stats().map_err(|e| CliError(e.to_string()))?;
        let mut lines = vec![
            format!(
                "queue: {} queued / cap {}; {} worker(s)",
                stats.queue_depth, stats.queue_cap, stats.workers
            ),
            format!(
                "jobs: {} done, {} rejected",
                stats.jobs_done, stats.jobs_rejected
            ),
            format!(
                "cache: {} hit(s), {} miss(es), {} store(s), {} eviction(s)",
                stats.cache_hits, stats.cache_misses, stats.cache_stores, stats.cache_evictions
            ),
            format!(
                "resident: {} entr(y/ies), {} byte(s){}",
                stats.cache_entries,
                stats.bytes_resident,
                match stats.budget {
                    0 => "; budget: unbounded".to_string(),
                    b => format!("; budget: {b} byte(s)"),
                }
            ),
            format!(
                "engines: {} open, {} reuse(s)",
                stats.engines_open, stats.engine_reuses
            ),
        ];
        for job in &stats.recent {
            lines.push(format!(
                "job: {} {:016x} cache={} {} us, {} phase(s)",
                job.algorithm,
                job.stream_fingerprint,
                job.cache,
                job.total_micros,
                job.phases.len()
            ));
        }
        return Ok(lines);
    }
    let cache_dir = sopts
        .cache_dir
        .as_ref()
        .expect("parse_args enforces --cache in daemon mode");
    let mut cfg = ServeConfig::new(&sopts.socket, cache_dir);
    cfg.budget = sopts.budget;
    cfg.workers = sopts.workers;
    cfg.queue_cap = sopts.queue_cap;
    let resolver: Resolver = std::sync::Arc::new(|name: &str| registry::find(name));
    let server = Server::bind(cfg, resolver)
        .map_err(|e| CliError(format!("cannot start daemon on {}: {e}", sopts.socket)))?;
    server.run().map_err(|e| CliError(e.to_string()))?;
    Ok(vec![format!("daemon at {} stopped", sopts.socket)])
}

#[cfg(not(unix))]
pub fn execute_serve(_sopts: &ServeOptions) -> Result<Vec<String>, CliError> {
    Err(CliError(
        "usnae serve requires Unix domain sockets (unavailable on this platform)".into(),
    ))
}

/// Exports `--workers-addr` as `USNAE_WORKERS_ADDR` so the socket
/// transport dials the named pre-started workers instead of spawning
/// loopback children. The address list rides the environment, not
/// [`BuildConfig`], so the cache digest stays deployment-independent.
fn export_workers_addr(opts: &Options) {
    if let Some(addr) = &opts.workers_addr {
        std::env::set_var(usnae_core::api::WORKERS_ADDR_ENV, addr);
    }
}

/// Builds the requested structure through the registry.
///
/// # Errors
///
/// [`CliError`] wrapping parameter or construction problems.
pub fn run_build(g: &Graph, opts: &Options) -> Result<BuildOutput, CliError> {
    let construction = registry::find(&opts.algo)
        .ok_or_else(|| CliError(format!("unknown algorithm {:?}", opts.algo)))?;
    export_workers_addr(opts);
    match &opts.cache_dir {
        Some(dir) => build_cached(
            construction.as_ref(),
            g,
            &opts.config,
            &CacheConfig::new(dir),
        ),
        None => construction.build(g, &opts.config),
    }
    .map_err(|e| CliError(e.to_string()))
}

/// The `--graph-file` pipeline: obtain the mapped CSR graph file (streamed
/// from `--input` when one was given — two passes, never materializing the
/// edge list — otherwise the file must already exist), open it, and run
/// the construction out-of-core through `build_mapped`. Returns the build,
/// the mapped graph's `(num_vertices, num_edges)`, and an optional
/// streaming report line.
///
/// # Errors
///
/// [`CliError`] on any I/O, codec, or construction failure.
pub fn run_build_mapped(
    opts: &Options,
) -> Result<(BuildOutput, usize, usize, Option<String>), CliError> {
    let path = opts
        .graph_file
        .as_ref()
        .expect("run_build_mapped requires --graph-file");
    let mut stream_line = None;
    if !opts.input.is_empty() {
        let stats = gio::stream_edge_list_to_csr_file(
            std::path::Path::new(&opts.input),
            std::path::Path::new(path),
            &StreamOptions {
                policy: opts.config.partition,
                ..StreamOptions::default()
            },
        )
        .map_err(|e| CliError(format!("cannot stream {} into {path}: {e}", opts.input)))?;
        stream_line = Some(format!(
            "streamed: {} line(s) -> {path} ({} duplicate(s) collapsed)",
            stats.lines, stats.duplicate_edges
        ));
    }
    let g = MappedGraph::open(std::path::Path::new(path))
        .map_err(|e| CliError(format!("cannot map graph file {path}: {e}")))?;
    let construction = registry::find(&opts.algo)
        .ok_or_else(|| CliError(format!("unknown algorithm {:?}", opts.algo)))?;
    export_workers_addr(opts);
    let out = construction
        .build_mapped(&g, &opts.config)
        .map_err(|e| CliError(e.to_string()))?;
    Ok((out, g.num_vertices(), g.num_edges(), stream_line))
}

/// The `usnae list` output: one line per registry entry.
pub fn list_lines() -> Vec<String> {
    registry::all()
        .iter()
        .map(|c| {
            let s = c.supports();
            let mut tags = Vec::new();
            if s.subgraph {
                tags.push("spanner");
            } else {
                tags.push("emulator");
            }
            if s.congest {
                tags.push("congest");
            }
            if s.uses_seed {
                tags.push("randomized");
            }
            if s.certified {
                tags.push("certified");
            }
            format!("{:<20} [{}] {}", c.name(), tags.join(", "), c.description())
        })
        .collect()
}

/// Full pipeline: read, build, optionally write and report. Returns the
/// report lines printed.
///
/// # Errors
///
/// [`CliError`] on any I/O, parse, or parameter failure.
pub fn execute(opts: &Options) -> Result<Vec<String>, CliError> {
    if let Some(socket) = &opts.connect {
        return execute_run_connect(opts, socket);
    }
    let (out, n, m, stream_line) = if opts.graph_file.is_some() {
        run_build_mapped(opts)?
    } else {
        let file = std::fs::File::open(&opts.input)
            .map_err(|e| CliError(format!("cannot open {}: {e}", opts.input)))?;
        let g = gio::read_edge_list(BufReader::new(file), 0)
            .map_err(|e| CliError(format!("cannot parse {}: {e}", opts.input)))?;
        let (n, m) = (g.num_vertices(), g.num_edges());
        (run_build(&g, opts)?, n, m, None)
    };
    if let Some(path) = &opts.output {
        let file = std::fs::File::create(path)
            .map_err(|e| CliError(format!("cannot create {path}: {e}")))?;
        gio::write_weighted_edge_list(out.emulator.graph(), std::io::BufWriter::new(file))
            .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
    }
    let mut lines = Vec::new();
    lines.extend(stream_line);
    lines.push(format!(
        "input: {n} vertices, {m} edges; output ({}): {} edges",
        out.algorithm,
        out.num_edges()
    ));
    if opts.cache_dir.is_some() {
        lines.push(format!("cache: {}", out.stats.cache));
    }
    if opts.report {
        lines.push(format!(
            "stream fingerprint: {:016x}",
            out.stream_fingerprint()
        ));
        if let Some(bound) = out.size_bound {
            lines.push(format!(
                "size bound = {bound:.1}; ratio = {:.4}",
                out.num_edges() as f64 / bound
            ));
        }
        match out.certified {
            Some((alpha, beta)) => lines.push(format!(
                "certified stretch: d_H <= {alpha:.4} * d_G + {beta:.1}"
            )),
            None => lines.push("certified stretch: none (baseline construction)".to_string()),
        }
        if let Some(stats) = &out.congest {
            lines.push(format!(
                "congest: {} rounds, {} messages, knowledge violations {}",
                stats.metrics.rounds, stats.metrics.messages, stats.knowledge_violations
            ));
        }
        if !out.stats.shards.is_empty() {
            let cut: usize = out.stats.shards.iter().map(|s| s.cut_edges).sum();
            lines.push(format!(
                "partition: {} x{} shard(s), {} cut edge(s)",
                opts.config.partition,
                out.stats.shards.len(),
                cut / 2
            ));
        }
        match &out.stats.messages {
            Some(m) => lines.push(format!(
                "transport: {} — {} round(s), {} message(s), {} byte(s)",
                out.stats.transport, m.rounds, m.messages, m.bytes
            )),
            None => lines.push(format!("transport: {}", out.stats.transport)),
        }
        let mut timing = format!(
            "build: {:.3?} on {} thread(s)",
            out.stats.total, out.stats.threads
        );
        if let Some(p0) = out.stats.phase0() {
            timing.push_str(&format!(
                "; phase 0: {p0:.3?} ({} explorations)",
                out.stats.phases[0].explorations
            ));
        }
        lines.push(timing);
    }
    Ok(lines)
}

/// The `usnae cache <action> <dir>` pipeline. Returns the lines printed.
///
/// `verify` is the shared integrity check: it re-decodes every entry,
/// recomputes its stream fingerprint, and **errors** (nonzero exit) when
/// any entry is stale or corrupt — so CI and users run the same gate.
///
/// # Errors
///
/// [`CliError`] on unreadable directories or (for `verify`) broken entries.
pub fn execute_cache(action: CacheAction, dir: &str) -> Result<Vec<String>, CliError> {
    let cache = ConstructionCache::new(dir);
    let describe = |e: &usnae_core::cache::CacheEntry| {
        let name = e
            .path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("<non-utf8>")
            .to_string();
        match &e.detail {
            Ok(d) => format!(
                "{name:<60} {:>9} B  n={:<8} records={:<8} stream={:016x}",
                e.bytes, d.num_vertices, d.records, d.stream_fingerprint
            ),
            Err(err) => format!("{name:<60} BROKEN: {err}"),
        }
    };
    match action {
        CacheAction::Ls => {
            let entries = cache
                .ls()
                .map_err(|e| CliError(format!("cannot list {dir}: {e}")))?;
            let mut lines: Vec<String> = entries.iter().map(describe).collect();
            lines.push(format!("{} entr(y/ies) in {dir}", entries.len()));
            Ok(lines)
        }
        CacheAction::Clear => {
            let n = cache
                .clear()
                .map_err(|e| CliError(format!("cannot clear {dir}: {e}")))?;
            Ok(vec![format!("removed {n} entr(y/ies) from {dir}")])
        }
        CacheAction::Verify => {
            let entries = cache
                .ls()
                .map_err(|e| CliError(format!("cannot verify {dir}: {e}")))?;
            let broken: Vec<&usnae_core::cache::CacheEntry> =
                entries.iter().filter(|e| e.detail.is_err()).collect();
            if broken.is_empty() {
                Ok(vec![format!(
                    "verified {} entr(y/ies) in {dir}: all fingerprints match",
                    entries.len()
                )])
            } else {
                let mut msg = format!(
                    "{} of {} entr(y/ies) in {dir} failed verification:\n",
                    broken.len(),
                    entries.len()
                );
                for e in broken {
                    msg.push_str(&describe(e));
                    msg.push('\n');
                }
                Err(CliError(msg))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usnae_core::api::CacheStatus;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn run_opts(cmd: Command) -> Options {
        match cmd {
            Command::Run(o) => o,
            other => panic!("expected run command, got {other:?}"),
        }
    }

    #[test]
    fn parses_full_run_command() {
        let o = run_opts(
            parse_args(&args(
                "run --algo spanner --input g.txt --output h.txt --eps 0.25 --kappa 8 \
                 --rho 0.4 --seed 9 --threads 4 --order by-degree-desc --raw-eps --report",
            ))
            .unwrap(),
        );
        assert_eq!(o.algo, "spanner");
        assert_eq!(o.config.kappa, 8);
        assert_eq!(o.config.epsilon, 0.25);
        assert_eq!(o.config.rho, 0.4);
        assert_eq!(o.config.seed, 9);
        assert_eq!(o.config.threads, 4);
        assert_eq!(o.config.order, ProcessingOrder::ByDegreeDesc);
        assert!(o.config.raw_epsilon && o.report);
        assert_eq!(o.output.as_deref(), Some("h.txt"));
    }

    #[test]
    fn threads_flag_validated_at_parse_time() {
        assert!(parse_args(&args("run --input g.txt --threads 0")).is_err());
        assert!(parse_args(&args("run --input g.txt --threads banana")).is_err());
        let o = run_opts(parse_args(&args("run --input g.txt --threads 8")).unwrap());
        assert_eq!(o.config.threads, 8);
    }

    #[test]
    fn threads_produce_identical_structures_through_the_cli_path() {
        let g = usnae_graph::generators::gnp_connected(100, 0.06, 17).unwrap();
        for name in registry::names() {
            let mk = |threads: usize| Options {
                algo: name.to_string(),
                input: String::new(),
                graph_file: None,
                output: None,
                config: BuildConfig {
                    threads,
                    ..BuildConfig::default()
                },
                report: false,
                cache_dir: None,
                connect: None,
                workers_addr: None,
            };
            let canonical = |out: &BuildOutput| {
                let mut edges: Vec<(usize, usize, u64)> = out
                    .emulator
                    .graph()
                    .edges()
                    .map(|e| (e.u, e.v, e.weight))
                    .collect();
                edges.sort_unstable();
                edges
            };
            let seq = run_build(&g, &mk(1)).unwrap();
            let par = run_build(&g, &mk(4)).unwrap();
            assert_eq!(
                canonical(&seq),
                canonical(&par),
                "{name}: CLI build diverged at 4 threads"
            );
        }
    }

    #[test]
    fn shards_and_partition_flags_parse_and_validate() {
        let o = run_opts(
            parse_args(&args(
                "run --input g.txt --shards 4 --partition degree-balanced",
            ))
            .unwrap(),
        );
        assert_eq!(o.config.shards, 4);
        assert_eq!(o.config.partition, PartitionPolicy::DegreeBalanced);
        let default = run_opts(parse_args(&args("run --input g.txt")).unwrap());
        assert_eq!(default.config.shards, 0, "shared array by default");
        assert!(parse_args(&args("run --input g.txt --shards nope")).is_err());
        assert!(parse_args(&args("run --input g.txt --partition mesh")).is_err());
    }

    #[test]
    fn sharded_builds_are_identical_through_the_cli_path() {
        let g = usnae_graph::generators::gnp_connected(90, 0.07, 31).unwrap();
        for name in registry::names() {
            let mk = |shards: usize, partition: PartitionPolicy| Options {
                algo: name.to_string(),
                input: String::new(),
                graph_file: None,
                output: None,
                config: BuildConfig {
                    shards,
                    partition,
                    ..BuildConfig::default()
                },
                report: false,
                cache_dir: None,
                connect: None,
                workers_addr: None,
            };
            let shared = run_build(&g, &mk(0, PartitionPolicy::Range)).unwrap();
            for policy in PartitionPolicy::all() {
                let sharded = run_build(&g, &mk(4, policy)).unwrap();
                assert_eq!(
                    shared.emulator.provenance(),
                    sharded.emulator.provenance(),
                    "{name} diverged under {policy} shards"
                );
            }
        }
    }

    #[test]
    fn transport_flag_parses_and_validates() {
        let o = run_opts(
            parse_args(&args("run --input g.txt --shards 2 --transport channel")).unwrap(),
        );
        assert_eq!(o.config.transport, TransportKind::Channel);
        let o = run_opts(
            parse_args(&args("run --input g.txt --shards 2 --transport process")).unwrap(),
        );
        assert_eq!(o.config.transport, TransportKind::Process);
        let default = run_opts(parse_args(&args("run --input g.txt")).unwrap());
        assert_eq!(default.config.transport, TransportKind::Inproc);
        assert!(parse_args(&args("run --input g.txt --transport carrier-pigeon")).is_err());
        // A worker transport without shards parses but fails validation
        // at build time.
        let g = usnae_graph::generators::path(6).unwrap();
        let o = run_opts(parse_args(&args("run --input g.txt --transport channel")).unwrap());
        assert!(run_build(&g, &o).is_err());
    }

    #[test]
    fn workers_addr_parses_with_socket_and_is_refused_otherwise() {
        let o = run_opts(
            parse_args(&args(
                "run --input g.txt --shards 2 --transport socket \
                 --workers-addr 10.0.0.1:9001,10.0.0.2:9001",
            ))
            .unwrap(),
        );
        assert_eq!(o.config.transport, TransportKind::Socket);
        assert_eq!(
            o.workers_addr.as_deref(),
            Some("10.0.0.1:9001,10.0.0.2:9001")
        );
        // The address list requires the socket transport: every other
        // transport has no remote end to dial.
        for transport in ["inproc", "channel", "process"] {
            let err = parse_args(&args(&format!(
                "run --input g.txt --shards 2 --transport {transport} --workers-addr h:1"
            )))
            .unwrap_err();
            assert!(err.0.contains("--transport socket"), "{transport}: {err}");
        }
        let err = parse_args(&args("run --input g.txt --workers-addr h:1")).unwrap_err();
        assert!(err.0.contains("--transport socket"), "{err}");
    }

    #[test]
    fn worker_build_reports_transport_and_measured_messages() {
        let input = std::env::temp_dir().join(format!("usnae-cli-wk-{}.txt", std::process::id()));
        let mut text = String::new();
        for i in 0..40 {
            text.push_str(&format!("{} {}\n", i, (i + 1) % 40));
            text.push_str(&format!("{} {}\n", i, (i + 5) % 40));
        }
        std::fs::write(&input, text).unwrap();
        let mk = |transport| Options {
            algo: "centralized".to_string(),
            input: input.display().to_string(),
            graph_file: None,
            output: None,
            config: BuildConfig {
                shards: 2,
                transport,
                ..BuildConfig::default()
            },
            report: true,
            cache_dir: None,
            connect: None,
            workers_addr: None,
        };
        let inproc = execute(&mk(TransportKind::Inproc)).unwrap();
        assert!(
            inproc.iter().any(|l| l == "transport: inproc"),
            "{inproc:?}"
        );
        let channel = execute(&mk(TransportKind::Channel)).unwrap();
        let line = channel
            .iter()
            .find(|l| l.starts_with("transport: channel"))
            .expect("worker run reports its transport");
        assert!(
            line.contains("round(s)") && line.contains("message(s)"),
            "{line}"
        );
        // Byte-identical across transports, visible in the fingerprints.
        let fp = |lines: &[String]| {
            lines
                .iter()
                .find(|l| l.starts_with("stream fingerprint: "))
                .cloned()
                .unwrap()
        };
        assert_eq!(fp(&inproc), fp(&channel));
        let _ = std::fs::remove_file(&input);
    }

    #[test]
    fn legacy_build_modes_map_to_registry_names() {
        for (mode, algo) in [
            ("centralized", "centralized"),
            ("fast", "fast-centralized"),
            ("spanner", "spanner"),
        ] {
            let o =
                run_opts(parse_args(&args(&format!("build --input g.txt --mode {mode}"))).unwrap());
            assert_eq!(o.algo, algo);
        }
    }

    #[test]
    fn defaults_applied() {
        let o = run_opts(parse_args(&args("run --input g.txt")).unwrap());
        assert_eq!(o.algo, "centralized");
        assert_eq!(o.config, BuildConfig::default());
    }

    #[test]
    fn rejects_bad_invocations() {
        assert!(parse_args(&args("")).is_err());
        assert!(parse_args(&args("frobnicate")).is_err());
        assert!(parse_args(&args("run")).is_err()); // missing --input
        assert!(parse_args(&args("run --input g.txt --algo nope")).is_err());
        assert!(parse_args(&args("build --input g.txt --mode nope")).is_err());
        assert!(parse_args(&args("run --input g.txt --kappa banana")).is_err());
        assert!(parse_args(&args("run --input g.txt --order sideways")).is_err());
        assert!(parse_args(&args("run --input")).is_err()); // dangling value
        assert!(parse_args(&args("build --input g.txt --algo tz06")).is_err()); // legacy has no --algo
    }

    #[test]
    fn list_command_and_catalogue() {
        assert_eq!(parse_args(&args("list")).unwrap(), Command::List);
        assert!(parse_args(&args("list --algo tz06")).is_err());
        let lines = list_lines();
        assert_eq!(lines.len(), 9);
        assert!(lines.iter().any(|l| l.starts_with("centralized")));
        assert!(lines.iter().any(|l| l.starts_with("em19")));
    }

    #[test]
    fn end_to_end_roundtrip_through_files() {
        let dir = std::env::temp_dir().join("usnae-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("g.txt");
        let output = dir.join("h.txt");
        // A small cycle graph.
        let mut text = String::from("# cycle\n");
        for i in 0..12 {
            text.push_str(&format!("{} {}\n", i, (i + 1) % 12));
        }
        std::fs::write(&input, text).unwrap();
        let opts = run_opts(
            parse_args(&args(&format!(
                "run --input {} --output {} --report",
                input.display(),
                output.display()
            )))
            .unwrap(),
        );
        let lines = execute(&opts).unwrap();
        assert!(lines[0].contains("12 vertices"));
        assert!(lines.iter().any(|l| l.contains("certified stretch")));
        // Output parses back as a weighted graph.
        let file = std::fs::File::open(&output).unwrap();
        let h =
            usnae_graph::io::read_weighted_edge_list(std::io::BufReader::new(file), 12).unwrap();
        assert!(h.num_edges() > 0);
    }

    #[test]
    fn graph_file_flag_parses_and_validates() {
        let o = run_opts(parse_args(&args("run --input g.txt --graph-file g.csr")).unwrap());
        assert_eq!(o.graph_file.as_deref(), Some("g.csr"));
        // A pre-built CSR file needs no edge list.
        let o = run_opts(parse_args(&args("run --graph-file g.csr")).unwrap());
        assert!(o.input.is_empty());
        // Out-of-core runs cannot key the heap-graph cache.
        assert!(parse_args(&args("run --graph-file g.csr --cache /tmp/c")).is_err());
        // The flag belongs to run, not query.
        assert!(parse_args(&args("query --graph-file g.csr --pairs p.txt")).is_err());
    }

    #[test]
    fn mapped_query_flag_parses_and_validates() {
        let cmd = parse_args(&args("query --mapped snap.usnae --pairs p.txt")).unwrap();
        match cmd {
            Command::Query(q) => {
                assert_eq!(q.mapped.as_deref(), Some("snap.usnae"));
                assert!(q.build.input.is_empty());
            }
            other => panic!("expected query, got {other:?}"),
        }
        // Mapped serving reads one snapshot: no graph input, no cache.
        assert!(parse_args(&args("query --mapped s.usnae --input g.txt --pairs p.txt")).is_err());
        assert!(parse_args(&args("query --mapped s.usnae --cache /tmp/c --pairs p.txt")).is_err());
        // Run mode does not know the flag.
        assert!(parse_args(&args("run --input g.txt --mapped s.usnae")).is_err());
    }

    #[test]
    fn graph_file_run_matches_the_heap_run_byte_for_byte() {
        let dir = std::env::temp_dir().join(format!("usnae-cli-oc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("g.txt");
        let csr = dir.join("g.csr");
        let mut text = String::new();
        for i in 0..50usize {
            text.push_str(&format!("{} {}\n", i, (i + 1) % 50));
            text.push_str(&format!("{} {}\n", i, (i + 7) % 50));
        }
        std::fs::write(&input, text).unwrap();
        let heap = execute(&run_opts(
            parse_args(&args(&format!("run --input {} --report", input.display()))).unwrap(),
        ))
        .unwrap();
        let mapped = execute(&run_opts(
            parse_args(&args(&format!(
                "run --input {} --graph-file {} --report",
                input.display(),
                csr.display()
            )))
            .unwrap(),
        ))
        .unwrap();
        assert!(mapped[0].starts_with("streamed:"), "{:?}", mapped[0]);
        let fp = |lines: &[String]| {
            lines
                .iter()
                .find(|l| l.starts_with("stream fingerprint"))
                .unwrap()
                .clone()
        };
        assert_eq!(fp(&heap), fp(&mapped), "out-of-core build diverged");
        // Second run: the CSR file already exists, no --input needed.
        let reopened = execute(&run_opts(
            parse_args(&args(&format!(
                "run --graph-file {} --report",
                csr.display()
            )))
            .unwrap(),
        ))
        .unwrap();
        assert_eq!(fp(&heap), fp(&reopened));
        assert!(!reopened[0].starts_with("streamed:"), "no stream pass");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mapped_query_answers_match_the_build_path() {
        use usnae_core::cache::{CacheKey, Snapshot};
        let dir = std::env::temp_dir().join(format!("usnae-cli-mq-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("g.txt");
        let pairs = dir.join("p.txt");
        let snap_path = dir.join("entry.usnae");
        let mut text = String::new();
        for i in 0..30usize {
            text.push_str(&format!("{} {}\n", i, (i + 1) % 30));
        }
        std::fs::write(&input, text).unwrap();
        std::fs::write(&pairs, "0 15\n3 4\n7 22\n").unwrap();

        // Reference: build-and-serve through the normal query path.
        let build_q = QueryOptions {
            build: run_opts(
                parse_args(&args(&format!("run --input {}", input.display()))).unwrap(),
            ),
            pairs: pairs.display().to_string(),
            landmarks: 0,
            mapped: None,
        };
        let reference = execute_query(&build_q).unwrap();

        // Store the same build as a v4 snapshot, serve it with --mapped.
        let g = {
            let file = std::fs::File::open(&input).unwrap();
            gio::read_edge_list(std::io::BufReader::new(file), 0).unwrap()
        };
        let out = run_build(&g, &build_q.build).unwrap();
        let key = CacheKey::new(&g, "centralized", &build_q.build.config);
        std::fs::write(&snap_path, Snapshot::from_output(key, &out).encode()).unwrap();
        let mapped_q = match parse_args(&args(&format!(
            "query --mapped {} --pairs {} --report",
            snap_path.display(),
            pairs.display()
        )))
        .unwrap()
        {
            Command::Query(q) => q,
            other => panic!("expected query, got {other:?}"),
        };
        let served = execute_query(&mapped_q).unwrap();
        assert!(served[0].starts_with("mapped:"), "{:?}", served[0]);
        // Identical answer lines, certified identically.
        let answers = |lines: &[String]| -> Vec<String> {
            lines
                .iter()
                .filter(|l| {
                    l.split_whitespace().count() == 3
                        && l.split_whitespace()
                            .next()
                            .unwrap()
                            .parse::<usize>()
                            .is_ok()
                })
                .cloned()
                .collect()
        };
        assert_eq!(answers(&reference), answers(&served));
        assert!(!answers(&reference).is_empty());
        assert!(served.iter().any(|l| l.contains("certified stretch")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_registry_algorithm_runs_through_the_cli_path() {
        let g = usnae_graph::generators::gnp_connected(60, 0.1, 3).unwrap();
        for name in registry::names() {
            let opts = Options {
                algo: name.to_string(),
                input: String::new(),
                graph_file: None,
                output: None,
                config: BuildConfig::default(),
                report: false,
                cache_dir: None,
                connect: None,
                workers_addr: None,
            };
            let out = run_build(&g, &opts).unwrap();
            assert!(out.num_edges() > 0, "{name}");
            assert_eq!(out.algorithm, name);
        }
    }

    #[test]
    fn cache_subcommand_parses() {
        assert_eq!(
            parse_args(&args("cache ls /tmp/c")).unwrap(),
            Command::Cache(CacheAction::Ls, "/tmp/c".into())
        );
        assert_eq!(
            parse_args(&args("cache clear /tmp/c")).unwrap(),
            Command::Cache(CacheAction::Clear, "/tmp/c".into())
        );
        assert_eq!(
            parse_args(&args("cache verify /tmp/c")).unwrap(),
            Command::Cache(CacheAction::Verify, "/tmp/c".into())
        );
        assert!(parse_args(&args("cache")).is_err());
        assert!(parse_args(&args("cache frob /tmp/c")).is_err());
        assert!(parse_args(&args("cache ls")).is_err());
        assert!(parse_args(&args("cache ls /tmp/c extra")).is_err());
        let o = run_opts(parse_args(&args("run --input g.txt --cache /tmp/c")).unwrap());
        assert_eq!(o.cache_dir.as_deref(), Some("/tmp/c"));
    }

    #[test]
    fn cold_then_warm_run_through_the_cli_path() {
        let dir = std::env::temp_dir().join(format!("usnae-cli-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let g = usnae_graph::generators::gnp_connected(60, 0.1, 13).unwrap();
        let opts = Options {
            algo: "spanner".to_string(),
            input: String::new(),
            graph_file: None,
            output: None,
            config: BuildConfig::default(),
            report: false,
            cache_dir: Some(dir.display().to_string()),
            connect: None,
            workers_addr: None,
        };
        let cold = run_build(&g, &opts).unwrap();
        assert_eq!(cold.stats.cache, CacheStatus::Miss);
        let warm = run_build(&g, &opts).unwrap();
        assert_eq!(warm.stats.cache, CacheStatus::Hit);
        assert_eq!(warm.stream_fingerprint(), cold.stream_fingerprint());

        // The maintenance pipeline sees, verifies, and clears the entry.
        let dir_s = dir.display().to_string();
        let ls = execute_cache(CacheAction::Ls, &dir_s).unwrap();
        assert!(ls.last().unwrap().starts_with("1 entr"));
        let verify = execute_cache(CacheAction::Verify, &dir_s).unwrap();
        assert!(verify[0].contains("all fingerprints match"));
        // Rot the entry: verify must fail with a nonzero-exit error.
        let entry = std::fs::read_dir(&dir)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let mut bytes = std::fs::read(&entry).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        std::fs::write(&entry, &bytes).unwrap();
        assert!(execute_cache(CacheAction::Verify, &dir_s).is_err());
        let cleared = execute_cache(CacheAction::Clear, &dir_s).unwrap();
        assert!(cleared[0].starts_with("removed 1"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_line_reported_when_cache_in_use() {
        let dir = std::env::temp_dir().join(format!("usnae-cli-report-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let input = std::env::temp_dir().join(format!("usnae-cli-rg-{}.txt", std::process::id()));
        let mut text = String::new();
        for i in 0..16 {
            text.push_str(&format!("{} {}\n", i, (i + 1) % 16));
        }
        std::fs::write(&input, text).unwrap();
        let opts = Options {
            algo: "centralized".to_string(),
            input: input.display().to_string(),
            graph_file: None,
            output: None,
            config: BuildConfig::default(),
            report: true,
            cache_dir: Some(dir.display().to_string()),
            connect: None,
            workers_addr: None,
        };
        let cold = execute(&opts).unwrap();
        assert!(cold.iter().any(|l| l == "cache: miss"), "{cold:?}");
        let warm = execute(&opts).unwrap();
        assert!(warm.iter().any(|l| l == "cache: hit"), "{warm:?}");
        let fp = |lines: &[String]| {
            lines
                .iter()
                .find(|l| l.starts_with("stream fingerprint: "))
                .cloned()
                .expect("report prints the fingerprint")
        };
        assert_eq!(fp(&cold), fp(&warm), "hit is fingerprint-identical");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_file(&input);
    }

    #[test]
    fn query_command_parses_and_validates() {
        let q = match parse_args(&args(
            "query --algo spanner --input g.txt --pairs p.txt --landmarks 4 --kappa 3 --report",
        ))
        .unwrap()
        {
            Command::Query(q) => q,
            other => panic!("expected query command, got {other:?}"),
        };
        assert_eq!(q.build.algo, "spanner");
        assert_eq!(q.build.config.kappa, 3);
        assert_eq!(q.pairs, "p.txt");
        assert_eq!(q.landmarks, 4);
        assert!(q.build.report);
        assert!(parse_args(&args("query --input g.txt")).is_err()); // missing --pairs
        assert!(parse_args(&args("query --pairs p.txt")).is_err()); // missing --input
        assert!(parse_args(&args("query --input g.txt --pairs p.txt --output h.txt")).is_err());
        assert!(parse_args(&args("query --input g.txt --pairs p.txt --landmarks no")).is_err());
        // Query-only flags stay query-only.
        assert!(parse_args(&args("run --input g.txt --pairs p.txt")).is_err());
        assert!(parse_args(&args("run --input g.txt --landmarks 4")).is_err());
    }

    #[test]
    fn read_pairs_parses_comments_and_rejects_garbage() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("usnae-cli-pairs-{}.txt", std::process::id()));
        std::fs::write(&path, "# queries\n0 5\n3 2 # inline comment\n\n1 1\n").unwrap();
        let p = path.display().to_string();
        assert_eq!(read_pairs(&p, 6).unwrap(), vec![(0, 5), (3, 2), (1, 1)]);
        assert!(read_pairs(&p, 5).is_err(), "vertex 5 out of range");
        std::fs::write(&path, "0 1 2\n").unwrap();
        assert!(read_pairs(&p, 6).is_err(), "three tokens");
        std::fs::write(&path, "0\n").unwrap();
        assert!(read_pairs(&p, 6).is_err(), "one token");
        std::fs::write(&path, "# nothing\n").unwrap();
        assert!(read_pairs(&p, 6).is_err(), "no pairs");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn query_answers_pairs_and_warm_cache_hits_without_rebuild() {
        let tmp = std::env::temp_dir();
        let pid = std::process::id();
        let input = tmp.join(format!("usnae-cli-qg-{pid}.txt"));
        let pairs = tmp.join(format!("usnae-cli-qp-{pid}.txt"));
        let cache = tmp.join(format!("usnae-cli-qc-{pid}"));
        let _ = std::fs::remove_dir_all(&cache);
        let mut text = String::new();
        for i in 0..24 {
            text.push_str(&format!("{} {}\n", i, (i + 1) % 24));
        }
        std::fs::write(&input, text).unwrap();
        std::fs::write(&pairs, "0 12\n5 5\n3 20\n").unwrap();
        let qopts = QueryOptions {
            build: Options {
                algo: "centralized".to_string(),
                input: input.display().to_string(),
                graph_file: None,
                output: None,
                config: BuildConfig::default(),
                report: true,
                cache_dir: Some(cache.display().to_string()),
                connect: None,
                workers_addr: None,
            },
            pairs: pairs.display().to_string(),
            landmarks: 0,
            mapped: None,
        };
        let cold = execute_query(&qopts).unwrap();
        assert!(cold.iter().any(|l| l == "cache: miss"), "{cold:?}");
        let warm = execute_query(&qopts).unwrap();
        assert!(warm.iter().any(|l| l == "cache: hit"), "{warm:?}");
        // Answer lines are identical cold vs warm, and certified: the ring
        // distance 0..12 is 12, identity is 0.
        let answer_lines = |lines: &[String]| {
            lines
                .iter()
                .filter(|l| {
                    let mut t = l.split_whitespace();
                    t.next().is_some_and(|w| w.parse::<usize>().is_ok())
                })
                .cloned()
                .collect::<Vec<_>>()
        };
        assert_eq!(answer_lines(&cold), answer_lines(&warm));
        assert_eq!(answer_lines(&cold).len(), 3);
        assert!(cold.iter().any(|l| l == "5 5 0"), "{cold:?}");
        assert!(cold.iter().any(|l| l.starts_with("certified stretch:")));
        assert!(cold.iter().any(|l| l.starts_with("engine:")));

        // Landmark serving over the same warm cache: still a hit, still
        // certified (weaker pair), still answers every pair.
        let with_landmarks = QueryOptions {
            landmarks: 3,
            ..qopts.clone()
        };
        let lm = execute_query(&with_landmarks).unwrap();
        assert!(lm.iter().any(|l| l == "cache: hit"), "{lm:?}");
        assert_eq!(answer_lines(&lm).len(), 3);
        assert!(lm.iter().any(|l| l.starts_with("landmarks: 3")), "{lm:?}");
        let _ = std::fs::remove_dir_all(&cache);
        let _ = std::fs::remove_file(&input);
        let _ = std::fs::remove_file(&pairs);
    }

    #[test]
    fn query_rejects_out_of_range_pairs() {
        let tmp = std::env::temp_dir();
        let pid = std::process::id();
        let input = tmp.join(format!("usnae-cli-qr-{pid}.txt"));
        let pairs = tmp.join(format!("usnae-cli-qrp-{pid}.txt"));
        std::fs::write(&input, "0 1\n1 2\n").unwrap();
        std::fs::write(&pairs, "0 9\n").unwrap();
        let qopts = QueryOptions {
            build: Options {
                algo: "centralized".to_string(),
                input: input.display().to_string(),
                graph_file: None,
                output: None,
                config: BuildConfig::default(),
                report: false,
                cache_dir: None,
                connect: None,
                workers_addr: None,
            },
            pairs: pairs.display().to_string(),
            landmarks: 0,
            mapped: None,
        };
        assert!(execute_query(&qopts).is_err());
        let _ = std::fs::remove_file(&input);
        let _ = std::fs::remove_file(&pairs);
    }

    #[test]
    fn serve_command_parses_and_validates() {
        let s = match parse_args(&args(
            "serve --socket /tmp/u.sock --cache /tmp/c --budget 4096 --workers 3 --queue-cap 2",
        ))
        .unwrap()
        {
            Command::Serve(s) => s,
            other => panic!("expected serve, got {other:?}"),
        };
        assert_eq!(s.socket, "/tmp/u.sock");
        assert_eq!(s.cache_dir.as_deref(), Some("/tmp/c"));
        assert_eq!(s.budget, Some(4096));
        assert_eq!(s.workers, 3);
        assert_eq!(s.queue_cap, 2);
        assert!(!s.stats && !s.stop);
        // Client modes take just the socket.
        let s = match parse_args(&args("serve --socket /tmp/u.sock --stats")).unwrap() {
            Command::Serve(s) => s,
            other => panic!("expected serve, got {other:?}"),
        };
        assert!(s.stats && s.cache_dir.is_none());
        assert!(matches!(
            parse_args(&args("serve --socket /tmp/u.sock --stop")).unwrap(),
            Command::Serve(ServeOptions { stop: true, .. })
        ));
        // Rejections: no socket, daemon mode without cache, mixed modes,
        // daemon flags on a client mode, bad numbers.
        assert!(parse_args(&args("serve --cache /tmp/c")).is_err());
        assert!(parse_args(&args("serve --socket /tmp/u.sock")).is_err());
        assert!(parse_args(&args("serve --socket s --stats --stop")).is_err());
        assert!(parse_args(&args("serve --socket s --stats --cache /tmp/c")).is_err());
        assert!(parse_args(&args("serve --socket s --cache c --workers 0")).is_err());
        assert!(parse_args(&args("serve --socket s --cache c --budget big")).is_err());
    }

    #[test]
    fn connect_flag_parses_and_validates() {
        let o = run_opts(parse_args(&args("run --input g.txt --connect /tmp/u.sock")).unwrap());
        assert_eq!(o.connect.as_deref(), Some("/tmp/u.sock"));
        match parse_args(&args(
            "query --input g.txt --pairs p.txt --connect /tmp/u.sock",
        ))
        .unwrap()
        {
            Command::Query(q) => assert_eq!(q.build.connect.as_deref(), Some("/tmp/u.sock")),
            other => panic!("expected query, got {other:?}"),
        }
        // The daemon resolves the graph path and owns cache/output/layout.
        assert!(parse_args(&args("run --connect /tmp/u.sock")).is_err());
        assert!(parse_args(&args("run --input g.txt --connect s --cache /tmp/c")).is_err());
        assert!(parse_args(&args("run --input g.txt --connect s --output h.txt")).is_err());
        assert!(parse_args(&args("run --input g.txt --connect s --graph-file g.csr")).is_err());
        assert!(parse_args(&args("query --mapped s.usnae --pairs p --connect s")).is_err());
        assert!(parse_args(&args("build --input g.txt --connect s")).is_err());
    }

    #[test]
    fn invalid_params_surface_as_cli_errors() {
        let g = usnae_graph::generators::path(5).unwrap();
        let opts = Options {
            algo: "centralized".to_string(),
            input: String::new(),
            graph_file: None,
            output: None,
            config: BuildConfig {
                epsilon: 2.0, // invalid
                ..BuildConfig::default()
            },
            report: false,
            cache_dir: None,
            connect: None,
            workers_addr: None,
        };
        assert!(run_build(&g, &opts).is_err());
    }
}
