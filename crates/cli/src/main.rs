//! The `usnae` command-line tool: build ultra-sparse near-additive
//! emulators/spanners from edge-list files. See [`usnae_cli::USAGE`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match usnae_cli::parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match usnae_cli::execute(&opts) {
        Ok(lines) => {
            for l in lines {
                println!("{l}");
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
