//! The `usnae` command-line tool: build ultra-sparse near-additive
//! emulators/spanners from edge-list files via the unified algorithm
//! registry. See [`usnae_cli::USAGE`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match usnae_cli::parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let result = match command {
        usnae_cli::Command::List => Ok(usnae_cli::list_lines()),
        usnae_cli::Command::Run(opts) => usnae_cli::execute(&opts),
        usnae_cli::Command::Query(opts) => usnae_cli::execute_query(&opts),
        usnae_cli::Command::Cache(action, dir) => usnae_cli::execute_cache(action, &dir),
        usnae_cli::Command::Serve(opts) => usnae_cli::execute_serve(&opts),
    };
    match result {
        Ok(lines) => {
            use std::io::Write;
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            for l in lines {
                if writeln!(out, "{l}").is_err() {
                    break; // downstream closed the pipe (e.g. `usnae list | head`)
                }
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
