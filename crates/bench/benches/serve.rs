//! Daemon serving overhead: what `usnae serve` costs on top of an
//! in-process build and query.
//!
//! ```text
//! cargo bench --bench serve                          # n = 1024
//! cargo bench --bench serve -- --n 256 --samples 2 \
//!     --queries 100 --json target/bench-serve.json   # CI smoke
//! ```
//!
//! One daemon is started on a scratch Unix socket with a scratch cache
//! directory; a client then measures, per algorithm: the **cold** build
//! round-trip (construction + snapshot publish + wire), the best **warm**
//! build round-trip (zero-copy mapped cache hit — this is the number the
//! always-on service exists for), and the sustained **QPS** of one
//! batched distance query over the warm structure. The daemon's own
//! `stats` counters (hit rate, evictions) close the report, and every
//! leg lands in the JSON artifact (`--json`) that CI's `serve-smoke` job
//! uploads into the `BENCH_<sha>.json` trend series.
//!
//! Windows builds have no Unix-socket daemon; there this bench is an
//! empty binary.

#[cfg(not(unix))]
fn main() {}

#[cfg(unix)]
fn main() {
    unix::main()
}

#[cfg(unix)]
mod unix {
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use usnae_bench::timing::json_string;
    use usnae_core::api::BuildConfig;
    use usnae_core::serve::{Client, JobSpec, ServeConfig, Server};
    use usnae_graph::distance::sample_pairs;
    use usnae_graph::generators;

    const KAPPA: u32 = 8;
    const PAIR_SEED: u64 = 42;

    /// The service-shaped subset of the registry: the paper's two
    /// centralized constructions plus its strongest baseline — enough to
    /// price the daemon without a nine-way cold-build sweep per run.
    const ALGOS: [&str; 3] = ["centralized", "spanner", "em19"];

    struct Leg {
        name: String,
        edges: u64,
        cold: Duration,
        warm: Duration,
        qps: f64,
    }

    pub fn main() {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut n = 1024usize;
        let mut samples = 3usize;
        let mut queries = 200usize;
        let mut json_path = "target/bench-serve.json".to_string();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--n" => n = it.next().and_then(|v| v.parse().ok()).expect("--n <size>"),
                "--samples" => {
                    samples = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--samples <k>")
                }
                "--queries" => {
                    queries = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--queries <k>")
                }
                "--json" => json_path = it.next().expect("--json <path>").clone(),
                // `cargo bench` forwards its own flags (e.g. --bench); ignore.
                _ => {}
            }
        }

        // Scratch world: graph file, cache dir, socket.
        let dir = std::env::temp_dir().join(format!("usnae-bench-serve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        let g = generators::gnp_connected(n, 12.0 / n as f64, PAIR_SEED).expect("valid gnp");
        let graph_path = dir.join("graph.txt");
        let file = std::fs::File::create(&graph_path).expect("create graph file");
        usnae_graph::io::write_edge_list(&g, std::io::BufWriter::new(file)).expect("write graph");
        let pairs: Vec<(u64, u64)> = sample_pairs(&g, queries, PAIR_SEED)
            .into_iter()
            .map(|(u, v)| (u as u64, v as u64))
            .collect();
        println!(
            "serve bench: {} vertices, {} edges, {} fixed seeded pairs, kappa {KAPPA}",
            g.num_vertices(),
            g.num_edges(),
            pairs.len()
        );

        let cfg = ServeConfig::new(dir.join("d.sock"), dir.join("cache"));
        let socket = cfg.socket.clone();
        let server = Server::bind(
            cfg,
            Arc::new(|name: &str| usnae_baselines::registry::find(name)),
        )
        .expect("bind daemon");
        let daemon = std::thread::spawn(move || server.run().expect("daemon run"));
        let mut client = Client::connect(&socket).expect("connect");

        let build_cfg = BuildConfig {
            kappa: KAPPA,
            raw_epsilon: true,
            ..BuildConfig::default()
        };
        let mut legs = Vec::new();
        for name in ALGOS {
            let job = JobSpec::new(graph_path.display().to_string(), name, &build_cfg);

            // Cold: first submission pays construction + publish + wire.
            let t0 = Instant::now();
            let meta = client.build(&job, |_, _, _| {}).expect("cold build");
            let cold = t0.elapsed();
            assert_eq!(
                meta.cache.to_string(),
                "miss",
                "{name}: scratch cache was warm"
            );

            // Warm: every later submission is a mapped cache hit.
            let mut warm = Duration::MAX;
            for _ in 0..samples.max(1) {
                let t0 = Instant::now();
                let meta = client.build(&job, |_, _, _| {}).expect("warm build");
                warm = warm.min(t0.elapsed());
                assert_eq!(meta.cache.to_string(), "hit", "{name}: warm build missed");
            }

            // QPS of one batched query round-trip over the warm entry.
            let mut batch = Duration::MAX;
            for _ in 0..samples.max(1) {
                let t0 = Instant::now();
                let answers = client.query(&job, &pairs, 0).expect("batched query");
                batch = batch.min(t0.elapsed());
                assert_eq!(answers.distances.len(), pairs.len());
            }
            let qps = pairs.len() as f64 / batch.as_secs_f64().max(f64::EPSILON);

            println!(
                "{:<24} {:>8} edges  cold {:>10.3?}  warm {:>10.3?}  batch {:>10.3?} ({:>10.0} q/s)",
                name, meta.num_edges, cold, warm, batch, qps
            );
            legs.push(Leg {
                name: name.to_string(),
                edges: meta.num_edges,
                cold,
                warm,
                qps,
            });
        }

        let stats = client.stats().expect("stats");
        let probes = stats.cache_hits + stats.cache_misses;
        let hit_rate = stats.cache_hits as f64 / (probes.max(1)) as f64;
        println!(
            "daemon: {} job(s) done, {} rejected; cache {:.1}% hit ({} hit / {} miss), {} eviction(s), {} byte(s) resident",
            stats.jobs_done,
            stats.jobs_rejected,
            100.0 * hit_rate,
            stats.cache_hits,
            stats.cache_misses,
            stats.cache_evictions,
            stats.bytes_resident
        );
        client.shutdown().expect("shutdown");
        daemon.join().expect("daemon thread");

        let legs_json: Vec<String> = legs
            .iter()
            .map(|l| {
                format!(
                    "{{\"name\":{},\"edges\":{},\"cold_s\":{},\"warm_s\":{},\"qps\":{}}}",
                    json_string(&l.name),
                    l.edges,
                    l.cold.as_secs_f64(),
                    l.warm.as_secs_f64(),
                    l.qps
                )
            })
            .collect();
        let doc = format!(
            "{{\"n\":{},\"edges\":{},\"queries\":{},\"kappa\":{KAPPA},\"jobs_done\":{},\"hit_rate\":{},\"evictions\":{},\"algorithms\":[{}]}}\n",
            g.num_vertices(),
            g.num_edges(),
            pairs.len(),
            stats.jobs_done,
            hit_rate,
            stats.cache_evictions,
            legs_json.join(",")
        );
        if let Some(parent) = std::path::Path::new(&json_path).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(&json_path, &doc).expect("write bench JSON");
        println!("\ntiming JSON written to {json_path}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
