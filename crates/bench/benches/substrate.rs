//! Substrate throughput: generators, BFS, and the CONGEST engine.

use criterion::{criterion_group, criterion_main, Criterion};
use usnae_congest::{Ctx, NodeAlgorithm, Simulator};
use usnae_graph::{bfs, generators};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators_n4096");
    group.sample_size(10);
    group.bench_function("gnp", |b| b.iter(|| generators::gnp(4096, 0.002, 1)));
    group.bench_function("barabasi_albert", |b| {
        b.iter(|| generators::barabasi_albert(4096, 3, 1))
    });
    group.bench_function("random_regular", |b| {
        b.iter(|| generators::random_regular(4096, 4, 1))
    });
    group.finish();
}

fn bench_bfs(c: &mut Criterion) {
    let g = generators::gnp_connected(8192, 0.0015, 3).unwrap();
    c.bench_function("bfs_n8192", |b| b.iter(|| bfs::bfs(&g, 0)));
}

struct MinFlood {
    best: Vec<u64>,
    dirty: Vec<bool>,
}
impl NodeAlgorithm for MinFlood {
    type Msg = u64;
    fn init(&mut self, node: usize, ctx: &mut Ctx<'_, u64>) {
        ctx.broadcast(self.best[node]);
    }
    fn round(&mut self, node: usize, inbox: &[(usize, u64)], ctx: &mut Ctx<'_, u64>) {
        for &(_, id) in inbox {
            if id < self.best[node] {
                self.best[node] = id;
                self.dirty[node] = true;
            }
        }
        if self.dirty[node] {
            self.dirty[node] = false;
            ctx.broadcast(self.best[node]);
        }
    }
}

fn bench_congest_engine(c: &mut Criterion) {
    let g = generators::torus2d(32, 32).unwrap();
    c.bench_function("congest_min_flood_torus32", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&g);
            let mut algo = MinFlood {
                best: (0..1024u64).collect(),
                dirty: vec![false; 1024],
            };
            sim.run(&mut algo, 100_000).unwrap()
        })
    });
}

criterion_group!(benches, bench_generators, bench_bfs, bench_congest_engine);
criterion_main!(benches);
