//! Substrate throughput: generators, BFS, and the CONGEST engine.

use usnae_bench::timing::{bench, group, DEFAULT_SAMPLES};
use usnae_congest::{Ctx, NodeAlgorithm, Simulator};
use usnae_graph::{bfs, generators};

fn bench_generators() {
    group("generators_n4096");
    bench("gnp", DEFAULT_SAMPLES, || generators::gnp(4096, 0.002, 1));
    bench("barabasi_albert", DEFAULT_SAMPLES, || {
        generators::barabasi_albert(4096, 3, 1)
    });
    bench("random_regular", DEFAULT_SAMPLES, || {
        generators::random_regular(4096, 4, 1)
    });
}

fn bench_bfs() {
    let g = generators::gnp_connected(8192, 0.0015, 3).unwrap();
    group("bfs");
    bench("bfs_n8192", DEFAULT_SAMPLES, || bfs::bfs(&g, 0));
}

struct MinFlood {
    best: Vec<u64>,
    dirty: Vec<bool>,
}
impl NodeAlgorithm for MinFlood {
    type Msg = u64;
    fn init(&mut self, node: usize, ctx: &mut Ctx<'_, u64>) {
        ctx.broadcast(self.best[node]);
    }
    fn round(&mut self, node: usize, inbox: &[(usize, u64)], ctx: &mut Ctx<'_, u64>) {
        for &(_, id) in inbox {
            if id < self.best[node] {
                self.best[node] = id;
                self.dirty[node] = true;
            }
        }
        if self.dirty[node] {
            self.dirty[node] = false;
            ctx.broadcast(self.best[node]);
        }
    }
}

fn bench_congest_engine() {
    let g = generators::torus2d(32, 32).unwrap();
    group("congest");
    bench("congest_min_flood_torus32", DEFAULT_SAMPLES, || {
        let mut sim = Simulator::new(&g);
        let mut algo = MinFlood {
            best: (0..1024u64).collect(),
            dirty: vec![false; 1024],
        };
        sim.run(&mut algo, 100_000).unwrap();
        sim.metrics().rounds
    });
}

fn main() {
    bench_generators();
    bench_bfs();
    bench_congest_engine();
}
