//! Parallel construction bench: phase-0 (exploration) speedup of the
//! sharded build engine across thread counts, on a large sparse graph.
//!
//! ```text
//! cargo bench --bench parallel                      # n = 100_000
//! cargo bench --bench parallel -- --n 20000 \
//!     --json target/bench-parallel.json             # CI smoke
//! ```
//!
//! For each sharded algorithm the bench builds the same graph at threads
//! {1, 2, 4, 8}, verifies the outputs are identical (the determinism
//! contract), and reports total and phase-0 wall clock from
//! [`BuildOutput::stats`]. The headline number is the phase-0 speedup at
//! 4 threads over 1; it is written, with every raw timing, to the JSON
//! artifact for CI trend tracking. (On a single-core runner the speedup
//! degenerates to ~1.0 — the engine adds no overhead but has no cores to
//! use.)

use std::time::Duration;
use usnae_bench::timing::json_string;
use usnae_core::api::{Algorithm, BuildOutput, Emulator};
use usnae_graph::generators;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Run {
    threads: usize,
    total: Duration,
    phase0: Duration,
    explorations: usize,
}

fn build(g: &usnae_graph::Graph, algorithm: Algorithm, threads: usize) -> BuildOutput {
    Emulator::builder(g)
        .epsilon(0.5)
        .kappa(4)
        .algorithm(algorithm)
        .threads(threads)
        .build()
        .expect("valid bench configuration")
}

fn bench_algorithm(
    g: &usnae_graph::Graph,
    algorithm: Algorithm,
    samples: usize,
) -> (Vec<Run>, f64) {
    println!("\n== parallel/{} ==", algorithm.name());
    let mut runs = Vec::new();
    let mut baseline_stream = None;
    for &threads in &THREAD_COUNTS {
        let mut best: Option<Run> = None;
        for _ in 0..samples {
            let out = build(g, algorithm, threads);
            match baseline_stream {
                None => baseline_stream = Some(out.stream_fingerprint()),
                Some(f) => assert_eq!(
                    f,
                    out.stream_fingerprint(),
                    "{} at {threads} threads diverged from the sequential build",
                    algorithm.name()
                ),
            }
            let run = Run {
                threads,
                total: out.stats.total,
                phase0: out.stats.phase0().unwrap_or_default(),
                explorations: out.stats.phases.first().map_or(0, |p| p.explorations),
            };
            if best.as_ref().is_none_or(|b| run.total < b.total) {
                best = Some(run);
            }
        }
        let best = best.expect("at least one sample");
        println!(
            "{:<28} total {:>10.3?}  phase0 {:>10.3?}  ({} explorations)",
            format!("{}/threads={threads}", algorithm.name()),
            best.total,
            best.phase0,
            best.explorations
        );
        runs.push(best);
    }
    let p0_1 = runs[0].phase0.as_secs_f64();
    let p0_4 = runs
        .iter()
        .find(|r| r.threads == 4)
        .expect("4-thread leg present")
        .phase0
        .as_secs_f64();
    let speedup = if p0_4 > 0.0 { p0_1 / p0_4 } else { 1.0 };
    println!(
        "{}: phase-0 speedup at 4 threads = {speedup:.2}x",
        algorithm.name()
    );
    (runs, speedup)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut n = 100_000usize;
    let mut samples = 3usize;
    let mut json_path = "target/bench-parallel.json".to_string();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--n" => n = it.next().and_then(|v| v.parse().ok()).expect("--n <size>"),
            "--samples" => {
                samples = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--samples <k>")
            }
            "--json" => json_path = it.next().expect("--json <path>").clone(),
            // `cargo bench` forwards its own flags (e.g. --bench); ignore.
            _ => {}
        }
    }

    let g = generators::gnp_connected(n, 8.0 / n as f64, 42).expect("valid gnp parameters");
    println!(
        "parallel bench: {} vertices, {} edges, {} hardware threads available",
        g.num_vertices(),
        g.num_edges(),
        std::thread::available_parallelism().map_or(1, usize::from)
    );

    let mut algo_json = Vec::new();
    for algorithm in [Algorithm::Centralized, Algorithm::FastCentralized] {
        let (runs, speedup) = bench_algorithm(&g, algorithm, samples);
        let runs_json: Vec<String> = runs
            .iter()
            .map(|r| {
                format!(
                    "{{\"threads\":{},\"total_s\":{},\"phase0_s\":{},\"explorations\":{}}}",
                    r.threads,
                    r.total.as_secs_f64(),
                    r.phase0.as_secs_f64(),
                    r.explorations
                )
            })
            .collect();
        algo_json.push(format!(
            "{{\"name\":{},\"phase0_speedup_at_4_threads\":{speedup},\"runs\":[{}]}}",
            json_string(algorithm.name()),
            runs_json.join(",")
        ));
    }
    let doc = format!(
        "{{\"n\":{},\"edges\":{},\"hardware_threads\":{},\"algorithms\":[{}]}}\n",
        g.num_vertices(),
        g.num_edges(),
        std::thread::available_parallelism().map_or(1, usize::from),
        algo_json.join(",")
    );
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&json_path, &doc).expect("write bench JSON");
    println!("\ntiming JSON written to {json_path}");
}
