//! Parallel construction bench: phase-0 (exploration) speedup of the
//! sharded build engine across thread counts, on a large sparse graph.
//!
//! ```text
//! cargo bench --bench parallel                      # n = 100_000
//! cargo bench --bench parallel -- --n 20000 \
//!     --json target/bench-parallel.json             # CI smoke
//! ```
//!
//! For each sharded algorithm the bench builds the same graph at threads
//! {1, 2, 4, 8}, verifies the outputs are identical (the determinism
//! contract), and reports total and phase-0 wall clock from
//! [`BuildOutput::stats`]. The headline number is the phase-0 speedup at
//! 4 threads over 1; it is written, with every raw timing, to the JSON
//! artifact for CI trend tracking. (On a single-core runner the speedup
//! degenerates to ~1.0 — the engine adds no overhead but has no cores to
//! use.)
//!
//! A second leg per algorithm (JSON name `<algo>+sharded`) rebuilds at
//! threads {1, 4} with the graph split into 4 degree-balanced CSR shards
//! (`usnae_graph::partition`), so the trend tracks partitioned vs
//! shared-array phase-0 side by side; the fingerprint check asserts the
//! sharded stream is identical to the shared-array one. A third leg
//! (`<algo>+workers`) reruns the 4-shard layout on the channel worker
//! transport and emits the measured message complexity (rounds, messages,
//! bytes) into the JSON, so the trend also tracks worker-protocol
//! traffic. `--n` scales the input through the 100k (default) to 1M
//! regime.
//!
//! A final `message_ratio` field compares the measured worker traffic
//! against the CONGEST simulator's idealized counts for the same
//! construction on a bounded side graph (the simulator must not dominate
//! the bench at 100k vertices) — the E10 eval experiment's ratio, kept in
//! the `BENCH_<sha>.json` trend so worker-protocol overhead regressions
//! are visible next to the timing legs.

use std::time::Duration;
use usnae_bench::rss;
use usnae_bench::timing::json_string;
use usnae_core::api::{
    Algorithm, BuildOutput, Emulator, MessageStats, PartitionPolicy, TransportKind,
};
use usnae_graph::generators;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const SHARDED_THREAD_COUNTS: [usize; 2] = [1, 4];
const BENCH_SHARDS: usize = 4;

struct Run {
    threads: usize,
    total: Duration,
    phase0: Duration,
    explorations: usize,
    /// Peak RSS (`VmHWM`) over this sample's build, MiB; `None` off-procfs.
    peak_rss_mb: Option<f64>,
}

fn build(
    g: &usnae_graph::Graph,
    algorithm: Algorithm,
    threads: usize,
    shards: usize,
    transport: TransportKind,
) -> BuildOutput {
    Emulator::builder(g)
        .epsilon(0.5)
        .kappa(4)
        .algorithm(algorithm)
        .threads(threads)
        .partition(PartitionPolicy::DegreeBalanced, shards)
        .transport(transport)
        .build()
        .expect("valid bench configuration")
}

/// Benches one (algorithm, layout) leg. `baseline_stream` seeds the
/// fingerprint check: passing the shared-array leg's fingerprint into the
/// sharded leg asserts sharded-vs-shared identity, not just internal
/// consistency. Returns the runs, the phase-0 speedup at 4 threads, and
/// the leg's stream fingerprint.
fn bench_algorithm(
    g: &usnae_graph::Graph,
    algorithm: Algorithm,
    samples: usize,
    shards: usize,
    transport: TransportKind,
    thread_counts: &[usize],
    baseline_stream: Option<u64>,
) -> (Vec<Run>, f64, u64, Option<MessageStats>) {
    let tag = if transport != TransportKind::Inproc {
        "+workers"
    } else if shards > 0 {
        "+sharded"
    } else {
        ""
    };
    println!("\n== parallel/{}{tag} ==", algorithm.name());
    let mut runs = Vec::new();
    let mut baseline_stream = baseline_stream;
    let mut layout_printed = false;
    let mut messages = None;
    for &threads in thread_counts {
        let mut best: Option<Run> = None;
        for _ in 0..samples {
            // Per-sample peak: reset the high-water mark so the reading
            // covers this build alone (best-effort; a denied reset
            // degrades to a whole-process peak, still comparable
            // between the base and PR runs of the same CI image).
            rss::reset_peak();
            let out = build(g, algorithm, threads, shards, transport);
            let peak_rss_mb = rss::peak_rss_mb();
            if messages.is_none() {
                messages = out.stats.messages.clone();
            }
            if shards > 0 && !layout_printed {
                layout_printed = true;
                for sh in &out.stats.shards {
                    println!(
                        "  shard {}: {} vertices, {} local edges, {} cut edges, built in {:.3?}",
                        sh.shard, sh.vertices, sh.local_edges, sh.cut_edges, sh.duration
                    );
                }
            }
            match baseline_stream {
                None => baseline_stream = Some(out.stream_fingerprint()),
                Some(f) => assert_eq!(
                    f,
                    out.stream_fingerprint(),
                    "{}{tag} at {threads} threads / {shards} shards diverged from the baseline build",
                    algorithm.name()
                ),
            }
            let run = Run {
                threads,
                total: out.stats.total,
                phase0: out.stats.phase0().unwrap_or_default(),
                explorations: out.stats.phases.first().map_or(0, |p| p.explorations),
                peak_rss_mb,
            };
            if best.as_ref().is_none_or(|b| run.total < b.total) {
                best = Some(run);
            }
        }
        let best = best.expect("at least one sample");
        println!(
            "{:<28} total {:>10.3?}  phase0 {:>10.3?}  ({} explorations{})",
            format!("{}{tag}/threads={threads}", algorithm.name()),
            best.total,
            best.phase0,
            best.explorations,
            best.peak_rss_mb
                .map_or(String::new(), |mb| format!(", peak rss {mb:.1} MB"))
        );
        runs.push(best);
    }
    let p0_1 = runs[0].phase0.as_secs_f64();
    let p0_4 = runs
        .iter()
        .find(|r| r.threads == 4)
        .expect("4-thread leg present")
        .phase0
        .as_secs_f64();
    let speedup = if p0_4 > 0.0 { p0_1 / p0_4 } else { 1.0 };
    println!(
        "{}{tag}: phase-0 speedup at 4 threads = {speedup:.2}x",
        algorithm.name()
    );
    if let Some(m) = &messages {
        println!(
            "{}{tag}: measured {} round(s), {} message(s), {} byte(s) over {} shard pair(s)",
            algorithm.name(),
            m.rounds,
            m.messages,
            m.bytes,
            m.pairs.len()
        );
    }
    (
        runs,
        speedup,
        baseline_stream.expect("at least one build ran"),
        messages,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut n = 100_000usize;
    let mut samples = 3usize;
    let mut json_path = "target/bench-parallel.json".to_string();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--n" => n = it.next().and_then(|v| v.parse().ok()).expect("--n <size>"),
            "--samples" => {
                samples = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--samples <k>")
            }
            "--json" => json_path = it.next().expect("--json <path>").clone(),
            // `cargo bench` forwards its own flags (e.g. --bench); ignore.
            _ => {}
        }
    }

    let g = generators::gnp_connected(n, 8.0 / n as f64, 42).expect("valid gnp parameters");
    println!(
        "parallel bench: {} vertices, {} edges, {} hardware threads available",
        g.num_vertices(),
        g.num_edges(),
        std::thread::available_parallelism().map_or(1, usize::from)
    );

    let mut algo_json = Vec::new();
    for algorithm in [Algorithm::Centralized, Algorithm::FastCentralized] {
        let (runs, speedup, fingerprint, _) = bench_algorithm(
            &g,
            algorithm,
            samples,
            0,
            TransportKind::Inproc,
            &THREAD_COUNTS,
            None,
        );
        // Sharded leg: same graph split into 4 degree-balanced CSR shards;
        // the interesting diff is phase-0 sharded vs shared at 4 threads.
        // Seeding with the shared leg's fingerprint makes every sharded
        // build assert identity against the shared-array stream.
        let (sharded_runs, sharded_speedup, _, _) = bench_algorithm(
            &g,
            algorithm,
            samples,
            BENCH_SHARDS,
            TransportKind::Inproc,
            &SHARDED_THREAD_COUNTS,
            Some(fingerprint),
        );
        // Worker leg: the same 4-shard layout with each shard's
        // explorations on its own channel worker; measures the wire
        // traffic the process transport would pay.
        let (worker_runs, worker_speedup, _, worker_messages) = bench_algorithm(
            &g,
            algorithm,
            samples,
            BENCH_SHARDS,
            TransportKind::Channel,
            &SHARDED_THREAD_COUNTS,
            Some(fingerprint),
        );
        let worker_messages = worker_messages.expect("worker leg measures messages");
        let shared_p0 = runs
            .iter()
            .find(|r| r.threads == 4)
            .expect("4-thread leg present")
            .phase0
            .as_secs_f64();
        let sharded_p0 = sharded_runs
            .iter()
            .find(|r| r.threads == 4)
            .expect("4-thread sharded leg present")
            .phase0
            .as_secs_f64();
        if sharded_p0 > 0.0 {
            println!(
                "{}: sharded/shared phase-0 ratio at 4 threads = {:.2}x",
                algorithm.name(),
                sharded_p0 / shared_p0.max(f64::EPSILON)
            );
        }
        let message_json = format!(
            "{{\"rounds\":{},\"messages\":{},\"bytes\":{},\"pairs\":{}}}",
            worker_messages.rounds,
            worker_messages.messages,
            worker_messages.bytes,
            worker_messages.pairs.len()
        );
        for (name, legs, spd, messages) in [
            (algorithm.name().to_string(), &runs, speedup, None),
            (
                format!("{}+sharded", algorithm.name()),
                &sharded_runs,
                sharded_speedup,
                None,
            ),
            (
                format!("{}+workers", algorithm.name()),
                &worker_runs,
                worker_speedup,
                Some(message_json),
            ),
        ] {
            let runs_json: Vec<String> = legs
                .iter()
                .map(|r| {
                    let rss_field = r
                        .peak_rss_mb
                        .map_or(String::new(), |mb| format!(",\"peak_rss_mb\":{mb}"));
                    format!(
                        "{{\"threads\":{},\"total_s\":{},\"phase0_s\":{},\"explorations\":{}{rss_field}}}",
                        r.threads,
                        r.total.as_secs_f64(),
                        r.phase0.as_secs_f64(),
                        r.explorations
                    )
                })
                .collect();
            let messages_field = messages.map_or(String::new(), |m| format!(",\"messages\":{m}"));
            algo_json.push(format!(
                "{{\"name\":{},\"phase0_speedup_at_4_threads\":{spd}{messages_field},\"runs\":[{}]}}",
                json_string(&name),
                runs_json.join(",")
            ));
        }
    }
    // Measured vs simulated message complexity (the E10 ratio) on a
    // bounded side graph: real channel-worker traffic for the
    // fast-centralized build against the CONGEST simulator's idealized
    // counts for the distributed build of the same input.
    let ratio_n = n.min(2048);
    let rg =
        generators::gnp_connected(ratio_n, 8.0 / ratio_n as f64, 42).expect("valid gnp parameters");
    let measured = build(
        &rg,
        Algorithm::FastCentralized,
        1,
        BENCH_SHARDS,
        TransportKind::Channel,
    )
    .stats
    .messages
    .expect("worker builds measure messages");
    let sim = Emulator::builder(&rg)
        .epsilon(0.5)
        .kappa(4)
        .rho(0.5)
        .algorithm(Algorithm::Distributed)
        .build()
        .expect("valid bench configuration");
    let sim_metrics = &sim
        .congest
        .as_ref()
        .expect("distributed builds report")
        .metrics;
    let msg_ratio = measured.messages as f64 / sim_metrics.messages.max(1) as f64;
    println!(
        "message ratio at n={ratio_n}: measured {} vs simulated {} = {msg_ratio:.2}x",
        measured.messages, sim_metrics.messages
    );
    let ratio_json = format!(
        "{{\"n\":{ratio_n},\"measured_rounds\":{},\"measured_messages\":{},\"measured_bytes\":{},\"sim_rounds\":{},\"sim_messages\":{},\"ratio\":{msg_ratio}}}",
        measured.rounds, measured.messages, measured.bytes, sim_metrics.rounds, sim_metrics.messages
    );

    let doc = format!(
        "{{\"n\":{},\"edges\":{},\"hardware_threads\":{},\"message_ratio\":{ratio_json},\"algorithms\":[{}]}}\n",
        g.num_vertices(),
        g.num_edges(),
        std::thread::available_parallelism().map_or(1, usize::from),
        algo_json.join(",")
    );
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&json_path, &doc).expect("write bench JSON");
    println!("\ntiming JSON written to {json_path}");
}
