//! Distance-query cost: Dijkstra on the sparse emulator vs BFS on G.
//!
//! The application story of near-additive emulators: approximate distance
//! queries on a much smaller structure.

use criterion::{criterion_group, criterion_main, Criterion};
use usnae_core::centralized::build_emulator;
use usnae_core::params::CentralizedParams;
use usnae_graph::{bfs, dijkstra, generators};

fn bench_queries(c: &mut Criterion) {
    let n = 2048;
    let g = generators::gnp_connected(n, 12.0 / n as f64, 42).unwrap();
    let p = CentralizedParams::new(0.5, 8).unwrap();
    let h = build_emulator(&g, &p);
    let mut group = c.benchmark_group("sssp_query_n2048");
    group.sample_size(20);
    group.bench_function("bfs_on_g", |b| b.iter(|| bfs::bfs(&g, 17)));
    group.bench_function("dijkstra_on_emulator", |b| {
        b.iter(|| dijkstra::dijkstra(h.graph(), 17))
    });
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
