//! Query serving across the registry: sustained QPS and per-query latency
//! of a `QueryEngine` over every construction's output.
//!
//! ```text
//! cargo bench --bench queries                        # n = 2048
//! cargo bench --bench queries -- --n 512 --samples 2 \
//!     --queries 200 --json target/bench-queries.json # CI smoke
//! ```
//!
//! One fixed, seeded query set is served by every algorithm in the
//! registry, so the table answers "which construction should production
//! use" empirically: per algorithm it reports the structure size, the
//! sustained throughput of one batched `distances()` call (trees shared
//! across the batch), and the p50/p99 latency of serving the same pairs
//! one `distance()` call at a time through the bounded LRU. A BFS-on-G
//! reference leg prices the alternative of querying the input graph
//! directly. Every leg lands in the JSON artifact (`--json`) that CI's
//! `query-bench` job uploads into the `BENCH_<sha>.json` trend series.
//!
//! This is the build-once/query-many shape the construction cache serves:
//! with `USNAE_CACHE_DIR` set, each build is paid on the first invocation
//! and loaded (verified) on every later one, so only queries re-measure.

use std::time::{Duration, Instant};
use usnae_baselines::registry;
use usnae_bench::timing::json_string;
use usnae_core::api::{BuildConfig, QueryEngine};
use usnae_graph::distance::sample_pairs;
use usnae_graph::{bfs, generators};

const KAPPA: u32 = 8;
const PAIR_SEED: u64 = 42;

struct Leg {
    name: String,
    edges: usize,
    qps: f64,
    batch: Duration,
    p50: Duration,
    p99: Duration,
    tree_builds: u64,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Serves `pairs` through a fresh engine twice — once batched (sustained
/// throughput), once a query at a time (latency distribution) — keeping
/// the fastest of `samples` passes for each.
fn bench_engine(
    name: &str,
    edges: usize,
    make_engine: &dyn Fn() -> QueryEngine,
    pairs: &[(usize, usize)],
    samples: usize,
) -> Leg {
    let mut batch = Duration::MAX;
    let mut latencies: Vec<Duration> = Vec::new();
    let mut tree_builds = 0;
    for _ in 0..samples.max(1) {
        let engine = make_engine();
        let t0 = Instant::now();
        std::hint::black_box(engine.distances(pairs));
        batch = batch.min(t0.elapsed());

        let engine = make_engine();
        let mut pass: Vec<Duration> = Vec::with_capacity(pairs.len());
        for &(u, v) in pairs {
            let t0 = Instant::now();
            std::hint::black_box(engine.distance(u, v));
            pass.push(t0.elapsed());
        }
        let total: Duration = pass.iter().sum();
        if latencies.is_empty() || total < latencies.iter().sum() {
            latencies = pass;
            tree_builds = engine.stats().tree_builds;
        }
    }
    latencies.sort_unstable();
    let qps = pairs.len() as f64 / batch.as_secs_f64().max(f64::EPSILON);
    let leg = Leg {
        name: name.to_string(),
        edges,
        qps,
        batch,
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
        tree_builds,
    };
    println!(
        "{:<24} {:>8} edges  batch {:>10.3?} ({:>10.0} q/s)  p50 {:>9.3?}  p99 {:>9.3?}  {} tree build(s)",
        leg.name, leg.edges, leg.batch, leg.qps, leg.p50, leg.p99, leg.tree_builds
    );
    leg
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut n = 2048usize;
    let mut samples = 3usize;
    let mut queries = 400usize;
    let mut json_path = "target/bench-queries.json".to_string();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--n" => n = it.next().and_then(|v| v.parse().ok()).expect("--n <size>"),
            "--samples" => {
                samples = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--samples <k>")
            }
            "--queries" => {
                queries = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--queries <k>")
            }
            "--json" => json_path = it.next().expect("--json <path>").clone(),
            // `cargo bench` forwards its own flags (e.g. --bench); ignore.
            _ => {}
        }
    }

    let g = generators::gnp_connected(n, 12.0 / n as f64, PAIR_SEED).expect("valid gnp");
    let pairs = sample_pairs(&g, queries, PAIR_SEED);
    println!(
        "query bench: {} vertices, {} edges, {} fixed seeded pairs, kappa {KAPPA}",
        g.num_vertices(),
        g.num_edges(),
        pairs.len()
    );

    let cfg = BuildConfig {
        kappa: KAPPA,
        raw_epsilon: true,
        ..BuildConfig::default()
    };
    let mut legs = Vec::new();
    for c in registry::all() {
        let out = match usnae_eval::caching::sweep_build(c.as_ref(), &g, &cfg) {
            Ok(out) => out,
            Err(e) => {
                println!("{:<24} skipped: {e}", c.name());
                continue;
            }
        };
        let certified = out.certified;
        let edges = out.num_edges();
        let emulator = out.emulator;
        let name = c.name();
        let make = move || QueryEngine::new(emulator.clone(), name, certified);
        legs.push(bench_engine(c.name(), edges, &make, &pairs, samples));
    }
    assert!(!legs.is_empty(), "registry served no algorithm");

    // Reference: answering the same pairs with one BFS per distinct source
    // on the input graph — what querying G directly costs.
    let mut bfs_batch = Duration::MAX;
    for _ in 0..samples.max(1) {
        let t0 = Instant::now();
        let mut last_source = usize::MAX;
        for &(u, _) in &pairs {
            if u != last_source {
                std::hint::black_box(bfs::bfs(&g, u));
                last_source = u;
            }
        }
        bfs_batch = bfs_batch.min(t0.elapsed());
    }
    println!(
        "{:<24} {:>8} edges  batch {:>10.3?} ({:>10.0} q/s)",
        "bfs_on_g",
        g.num_edges(),
        bfs_batch,
        pairs.len() as f64 / bfs_batch.as_secs_f64().max(f64::EPSILON)
    );

    let legs_json: Vec<String> = legs
        .iter()
        .map(|l| {
            format!(
                "{{\"name\":{},\"edges\":{},\"qps\":{},\"batch_s\":{},\"p50_s\":{},\"p99_s\":{},\"tree_builds\":{}}}",
                json_string(&l.name),
                l.edges,
                l.qps,
                l.batch.as_secs_f64(),
                l.p50.as_secs_f64(),
                l.p99.as_secs_f64(),
                l.tree_builds
            )
        })
        .collect();
    let doc = format!(
        "{{\"n\":{},\"edges\":{},\"queries\":{},\"kappa\":{KAPPA},\"bfs_on_g_batch_s\":{},\"algorithms\":[{}]}}\n",
        g.num_vertices(),
        g.num_edges(),
        pairs.len(),
        bfs_batch.as_secs_f64(),
        legs_json.join(",")
    );
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&json_path, &doc).expect("write bench JSON");
    println!("\ntiming JSON written to {json_path}");
}
