//! Distance-query cost: Dijkstra on the sparse emulator vs BFS on G.
//!
//! The application story of near-additive emulators: approximate distance
//! queries on a much smaller structure.

use usnae_bench::timing::{bench, group};
use usnae_core::api::Emulator;
use usnae_graph::{bfs, dijkstra, generators};

fn main() {
    let n = 2048;
    let g = generators::gnp_connected(n, 12.0 / n as f64, 42).unwrap();
    let h = Emulator::builder(&g).kappa(8).build().unwrap().emulator;
    group("sssp_query_n2048");
    bench("bfs_on_g", 20, || bfs::bfs(&g, 17));
    bench("dijkstra_on_emulator", 20, || {
        dijkstra::dijkstra(h.graph(), 17)
    });
}
