//! Distance-query cost: Dijkstra on the sparse emulator vs BFS on G.
//!
//! The application story of near-additive emulators: approximate distance
//! queries on a much smaller structure. This is the build-once/query-many
//! shape the construction cache serves: with `USNAE_CACHE_DIR` set, the
//! emulator build is paid on the first invocation and loaded (verified)
//! on every later one, so only the queries are re-measured.

use usnae_bench::timing::{bench, group};
use usnae_core::api::{CacheStatus, Emulator};
use usnae_graph::{bfs, dijkstra, generators};

fn main() {
    let n = 2048;
    let g = generators::gnp_connected(n, 12.0 / n as f64, 42).unwrap();
    let mut builder = Emulator::builder(&g).kappa(8);
    if let Some(dir) = std::env::var_os(usnae_eval::caching::CACHE_ENV) {
        builder = builder.cache_dir(std::path::PathBuf::from(dir));
    }
    let out = builder.build().unwrap();
    if out.stats.cache != CacheStatus::Uncached {
        println!("emulator build: cache {}", out.stats.cache);
    }
    let h = out.emulator;
    group("sssp_query_n2048");
    bench("bfs_on_g", 20, || bfs::bfs(&g, 17));
    bench("dijkstra_on_emulator", 20, || {
        dijkstra::dijkstra(h.graph(), 17)
    });
}
