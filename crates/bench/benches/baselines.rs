//! Construction-time comparison across the whole registry: every emulator
//! and spanner lineage (paper + baselines) on one input, by name.

use usnae_baselines::registry;
use usnae_bench::timing::{bench, group, DEFAULT_SAMPLES};
use usnae_core::api::BuildConfig;
use usnae_graph::generators;

fn main() {
    let n = 512;
    let g = generators::gnp_connected(n, 8.0 / n as f64, 42).unwrap();
    let cfg = BuildConfig::default();
    group("lineages_n512");
    for c in registry::all() {
        if c.supports().congest {
            continue; // simulator-backed builds are benchmarked in substrate
        }
        bench(
            format!("lineages_n512/{}", c.name()),
            DEFAULT_SAMPLES,
            || c.build(&g, &cfg).unwrap(),
        );
    }
}
