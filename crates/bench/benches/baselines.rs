//! Construction-time comparison against the baseline lineages.

use criterion::{criterion_group, criterion_main, Criterion};
use usnae_baselines::{en17, ep01, tz06};
use usnae_core::centralized::build_emulator;
use usnae_core::params::CentralizedParams;
use usnae_graph::generators;

fn bench_lineages(c: &mut Criterion) {
    let n = 512;
    let g = generators::gnp_connected(n, 8.0 / n as f64, 42).unwrap();
    let p = CentralizedParams::new(0.5, 4).unwrap();
    let mut group = c.benchmark_group("emulator_lineages_n512");
    group.sample_size(10);
    group.bench_function("ours", |b| b.iter(|| build_emulator(&g, &p)));
    group.bench_function("ep01", |b| b.iter(|| ep01::build_ep01_emulator(&g, &p)));
    group.bench_function("tz06", |b| b.iter(|| tz06::build_tz06_emulator(&g, 4, 7)));
    group.bench_function("en17a", |b| b.iter(|| en17::build_en17_emulator(&g, &p, 7)));
    group.finish();
}

criterion_group!(benches, bench_lineages);
criterion_main!(benches);
