//! E6 (Thm 3.13/3.14): construction-time scaling of the four builders.
//!
//! The shape to reproduce: fast-centralized time grows roughly like
//! `|E|·n^ρ` (superlinear in n but polynomially bounded), and the
//! centralized Algorithm 1 stays within a small factor of it at these
//! sizes. One group per builder, parameterized by n, all dispatched through
//! the unified `EmulatorBuilder`.

use usnae_bench::timing::{bench, group, DEFAULT_SAMPLES};
use usnae_core::api::{Algorithm, Emulator};
use usnae_graph::generators;

fn bench_algorithm(name: &str, algorithm: Algorithm, sizes: &[usize]) {
    group(name);
    for &n in sizes {
        let g = generators::gnp_connected(n, 8.0 / n as f64, 42).unwrap();
        bench(format!("{name}/{n}"), DEFAULT_SAMPLES, || {
            Emulator::builder(&g)
                .epsilon(0.5)
                .kappa(4)
                .algorithm(algorithm)
                .build()
                .unwrap()
        });
    }
}

fn bench_ultra_sparse() {
    group("ultra_sparse_emulator");
    for n in [512usize, 1024] {
        let g = generators::gnp_connected(n, 8.0 / n as f64, 42).unwrap();
        let kappa = {
            let l = (n as f64).log2();
            (l * l) as u32
        };
        bench(
            format!("ultra_sparse_emulator/{n}"),
            DEFAULT_SAMPLES,
            || Emulator::builder(&g).kappa(kappa).build().unwrap(),
        );
    }
}

fn main() {
    bench_algorithm(
        "centralized_emulator",
        Algorithm::Centralized,
        &[256, 512, 1024],
    );
    bench_algorithm(
        "fast_centralized_emulator",
        Algorithm::FastCentralized,
        &[256, 512, 1024],
    );
    bench_algorithm("spanner", Algorithm::Spanner, &[256, 512, 1024]);
    bench_ultra_sparse();
}
