//! E6 (Thm 3.13/3.14): construction-time scaling of the four builders.
//!
//! The shape to reproduce: fast-centralized time grows roughly like
//! `|E|·n^ρ` (superlinear in n but polynomially bounded), and the
//! centralized Algorithm 1 stays within a small factor of it at these
//! sizes. One Criterion group per builder, parameterized by n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use usnae_core::centralized::build_emulator;
use usnae_core::fast_centralized::build_emulator_fast;
use usnae_core::params::{CentralizedParams, DistributedParams, SpannerParams};
use usnae_core::spanner::build_spanner;
use usnae_graph::generators;

fn bench_centralized(c: &mut Criterion) {
    let mut group = c.benchmark_group("centralized_emulator");
    group.sample_size(10);
    for n in [256usize, 512, 1024] {
        let g = generators::gnp_connected(n, 8.0 / n as f64, 42).unwrap();
        let p = CentralizedParams::new(0.5, 4).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| build_emulator(g, &p))
        });
    }
    group.finish();
}

fn bench_fast_centralized(c: &mut Criterion) {
    let mut group = c.benchmark_group("fast_centralized_emulator");
    group.sample_size(10);
    for n in [256usize, 512, 1024] {
        let g = generators::gnp_connected(n, 8.0 / n as f64, 42).unwrap();
        let p = DistributedParams::new(0.5, 4, 0.5).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| build_emulator_fast(g, &p))
        });
    }
    group.finish();
}

fn bench_spanner(c: &mut Criterion) {
    let mut group = c.benchmark_group("spanner");
    group.sample_size(10);
    for n in [256usize, 512, 1024] {
        let g = generators::gnp_connected(n, 8.0 / n as f64, 42).unwrap();
        let p = SpannerParams::new(0.5, 4, 0.5).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| build_spanner(g, &p))
        });
    }
    group.finish();
}

fn bench_ultra_sparse(c: &mut Criterion) {
    let mut group = c.benchmark_group("ultra_sparse_emulator");
    group.sample_size(10);
    for n in [512usize, 1024] {
        let g = generators::gnp_connected(n, 8.0 / n as f64, 42).unwrap();
        let kappa = {
            let l = (n as f64).log2();
            (l * l) as u32
        };
        let p = CentralizedParams::new(0.5, kappa).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| build_emulator(g, &p))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_centralized,
    bench_fast_centralized,
    bench_spanner,
    bench_ultra_sparse
);
criterion_main!(benches);
