//! Ablation benches for the design choices DESIGN.md §5 calls out:
//! processing order (the §2.1.1 order-dependence) and buffer sets vs
//! EP01's ground partition (construction cost side; the size side is E8).

use usnae_baselines::registry;
use usnae_bench::timing::{bench, group, DEFAULT_SAMPLES};
use usnae_core::api::{BuildConfig, Emulator, ProcessingOrder};
use usnae_graph::generators;

fn bench_processing_orders() {
    let n = 512;
    let g = generators::gnp_connected(n, 8.0 / n as f64, 42).unwrap();
    group("processing_order_n512");
    for (name, order) in [
        ("by_id", ProcessingOrder::ById),
        ("by_id_desc", ProcessingOrder::ByIdDesc),
        ("hubs_first", ProcessingOrder::ByDegreeDesc),
        ("hubs_last", ProcessingOrder::ByDegreeAsc),
    ] {
        bench(
            format!("processing_order_n512/{name}"),
            DEFAULT_SAMPLES,
            || {
                Emulator::builder(&g)
                    .kappa(4)
                    .order(order)
                    .traced(true)
                    .build()
                    .unwrap()
            },
        );
    }
}

fn bench_buffer_sets_vs_ground_partition() {
    let n = 512;
    let g = generators::gnp_connected(n, 8.0 / n as f64, 42).unwrap();
    group("buffer_sets_ablation_n512");
    bench("with_buffer_sets", DEFAULT_SAMPLES, || {
        Emulator::builder(&g).kappa(4).traced(true).build().unwrap()
    });
    let ep01 = registry::find("ep01").expect("baseline registered");
    let cfg = BuildConfig::default();
    bench("ep01_ground_partition", DEFAULT_SAMPLES, || {
        ep01.build(&g, &cfg).unwrap()
    });
}

fn main() {
    bench_processing_orders();
    bench_buffer_sets_vs_ground_partition();
}
