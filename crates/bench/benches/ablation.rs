//! Ablation benches for the design choices DESIGN.md §5 calls out:
//! processing order (the §2.1.1 order-dependence) and buffer sets vs
//! EP01's ground partition (construction cost side; the size side is E8).

use criterion::{criterion_group, criterion_main, Criterion};
use usnae_baselines::ep01::build_ep01_emulator;
use usnae_core::centralized::{build_emulator_traced, ProcessingOrder};
use usnae_core::params::CentralizedParams;
use usnae_graph::generators;

fn bench_processing_orders(c: &mut Criterion) {
    let n = 512;
    let g = generators::gnp_connected(n, 8.0 / n as f64, 42).unwrap();
    let p = CentralizedParams::new(0.5, 4).unwrap();
    let mut group = c.benchmark_group("processing_order_n512");
    group.sample_size(10);
    for (name, order) in [
        ("by_id", ProcessingOrder::ById),
        ("by_id_desc", ProcessingOrder::ByIdDesc),
        ("hubs_first", ProcessingOrder::ByDegreeDesc),
        ("hubs_last", ProcessingOrder::ByDegreeAsc),
    ] {
        group.bench_function(name, |b| b.iter(|| build_emulator_traced(&g, &p, order)));
    }
    group.finish();
}

fn bench_buffer_sets_vs_ground_partition(c: &mut Criterion) {
    let n = 512;
    let g = generators::gnp_connected(n, 8.0 / n as f64, 42).unwrap();
    let p = CentralizedParams::new(0.5, 4).unwrap();
    let mut group = c.benchmark_group("buffer_sets_ablation_n512");
    group.sample_size(10);
    group.bench_function("with_buffer_sets", |b| {
        b.iter(|| build_emulator_traced(&g, &p, ProcessingOrder::ById))
    });
    group.bench_function("ep01_ground_partition", |b| {
        b.iter(|| build_ep01_emulator(&g, &p))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_processing_orders,
    bench_buffer_sets_vs_ground_partition
);
criterion_main!(benches);
