//! Bench-regression trend: parse `cargo bench --bench parallel` timing
//! JSONs and compare a PR run against its merge-base run.
//!
//! The workspace is dependency-free, so this carries its own minimal JSON
//! reader — enough for the documents our benches write (objects, arrays,
//! strings, numbers, booleans, null; no escapes beyond the ones
//! `timing::json_string` emits).
//!
//! The comparison contract (enforced by CI's `bench-regression` job via
//! the `bench_diff` binary): for every `(algorithm, threads)` leg present
//! in both runs, neither `total_s` nor `phase0_s` nor `peak_rss_mb` may
//! exceed the base by more than the tolerance (default 20%) — small
//! absolute deltas are exempted by per-unit noise floors, since a 3 ms
//! phase jumping to 4 ms on a shared runner is scheduling jitter and a
//! few MiB of allocator slack is not a memory regression.
//!
//! # Bench JSON schema notes
//!
//! Each run object inside an algorithm's `runs` array carries:
//!
//! | field          | unit | since | meaning                               |
//! |----------------|------|-------|---------------------------------------|
//! | `threads`      | —    | PR 4  | thread count of the leg               |
//! | `total_s`      | s    | PR 4  | best total build wall clock           |
//! | `phase0_s`     | s    | PR 4  | best phase-0 (exploration) wall clock |
//! | `explorations` | —    | PR 4  | phase-0 exploration count             |
//! | `peak_rss_mb`  | MiB  | PR 8  | peak RSS (`VmHWM`) of the best sample |
//!
//! `peak_rss_mb` is optional twice over: documents from before PR 8 lack
//! the field, and runs on platforms without procfs omit it. The
//! comparison only scores the metric when *both* legs carry it, and —
//! like the timing metrics — a >20% growth fails only past an absolute
//! noise floor (allocator and page-cache jitter; default 32 MiB).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`; bench documents only hold those).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed).
///
/// # Errors
///
/// A human-readable message with the byte offset of the problem.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                members.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", Json::Null),
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("invalid number at byte {start}"))
        }
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Bench documents are ASCII-safe, but pass UTF-8 through.
                let start = *pos;
                let len = match c {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let end = (start + len).min(b.len());
                out.push_str(std::str::from_utf8(&b[start..end]).map_err(|_| "bad utf-8")?);
                *pos = end;
            }
        }
    }
}

/// One `(algorithm, threads)` timing leg of a parallel-bench document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchLeg {
    /// Registry name of the algorithm.
    pub algorithm: String,
    /// Thread count of the leg.
    pub threads: u64,
    /// Best total build time, seconds.
    pub total_s: f64,
    /// Best phase-0 time, seconds.
    pub phase0_s: f64,
    /// Peak RSS of the best sample, MiB. `None` when the document
    /// predates the column or the run's platform lacks procfs.
    pub peak_rss_mb: Option<f64>,
}

impl BenchLeg {
    /// `algorithm/threads=N` — the stable leg label used in verdicts.
    pub fn label(&self) -> String {
        format!("{}/threads={}", self.algorithm, self.threads)
    }
}

/// Extracts the timing legs of a `bench-parallel.json` document.
///
/// # Errors
///
/// A message naming the malformed part.
pub fn parse_bench_document(text: &str) -> Result<Vec<BenchLeg>, String> {
    let doc = parse_json(text)?;
    let algorithms = doc
        .get("algorithms")
        .and_then(Json::as_arr)
        .ok_or("document has no algorithms array")?;
    let mut legs = Vec::new();
    for algo in algorithms {
        let name = algo
            .get("name")
            .and_then(Json::as_str)
            .ok_or("algorithm entry has no name")?;
        let runs = algo
            .get("runs")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{name}: no runs array"))?;
        for run in runs {
            let field = |key: &str| {
                run.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("{name}: run lacks numeric {key}"))
            };
            legs.push(BenchLeg {
                algorithm: name.to_string(),
                threads: field("threads")? as u64,
                total_s: field("total_s")?,
                phase0_s: field("phase0_s")?,
                peak_rss_mb: run.get("peak_rss_mb").and_then(Json::as_f64),
            });
        }
    }
    Ok(legs)
}

/// One verdict row of [`compare_legs`].
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// `algorithm/threads=N`.
    pub label: String,
    /// `"total"`, `"phase0"`, or `"peak_rss"`.
    pub metric: &'static str,
    /// Unit of `base`/`pr`: `"s"` for the timing metrics, `"MB"` for
    /// `peak_rss`.
    pub unit: &'static str,
    /// Merge-base value.
    pub base: f64,
    /// PR value.
    pub pr: f64,
    /// `pr / base` (`inf` when the base value is 0).
    pub ratio: f64,
    /// Whether this row breaches the tolerance.
    pub regressed: bool,
}

/// Compares PR legs against base legs (matched by `(algorithm, threads)`;
/// legs present in only one run are skipped — a new algorithm has no
/// baseline yet). A row regresses when `pr > base * (1 + tolerance)` *and*
/// the absolute delta clears that metric's noise floor (`noise_floor_s`
/// for the timing metrics, `noise_floor_mb` for peak RSS). The RSS row
/// appears only when both legs carry the column.
pub fn compare_legs(
    base: &[BenchLeg],
    pr: &[BenchLeg],
    tolerance: f64,
    noise_floor_s: f64,
    noise_floor_mb: f64,
) -> Vec<Verdict> {
    let mut verdicts = Vec::new();
    for p in pr {
        let Some(b) = base
            .iter()
            .find(|b| b.algorithm == p.algorithm && b.threads == p.threads)
        else {
            continue;
        };
        let mut rows = vec![
            ("total", "s", b.total_s, p.total_s, noise_floor_s),
            ("phase0", "s", b.phase0_s, p.phase0_s, noise_floor_s),
        ];
        if let (Some(base_mb), Some(pr_mb)) = (b.peak_rss_mb, p.peak_rss_mb) {
            rows.push(("peak_rss", "MB", base_mb, pr_mb, noise_floor_mb));
        }
        for (metric, unit, base_v, pr_v, floor) in rows {
            let ratio = if base_v > 0.0 {
                pr_v / base_v
            } else {
                f64::INFINITY
            };
            let regressed = pr_v > base_v * (1.0 + tolerance) && (pr_v - base_v) > floor;
            verdicts.push(Verdict {
                label: p.label(),
                metric,
                unit,
                base: base_v,
                pr: pr_v,
                ratio,
                regressed,
            });
        }
    }
    verdicts
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{"n":20000,"edges":80000,"hardware_threads":4,"algorithms":[
        {"name":"centralized","phase0_speedup_at_4_threads":2.5,"runs":[
            {"threads":1,"total_s":1.0,"phase0_s":0.8,"explorations":100,"peak_rss_mb":200.0},
            {"threads":4,"total_s":0.5,"phase0_s":0.32,"explorations":120,"peak_rss_mb":260.0}]},
        {"name":"fast-centralized","phase0_speedup_at_4_threads":2.0,"runs":[
            {"threads":1,"total_s":2.0,"phase0_s":1.5,"explorations":90}]}]}"#;

    #[test]
    fn parses_the_bench_document_shape() {
        let legs = parse_bench_document(SAMPLE).unwrap();
        assert_eq!(legs.len(), 3);
        assert_eq!(legs[0].algorithm, "centralized");
        assert_eq!(legs[0].threads, 1);
        assert!((legs[1].phase0_s - 0.32).abs() < 1e-12);
        assert_eq!(legs[0].peak_rss_mb, Some(200.0));
        // Documents predating the RSS column still parse.
        assert_eq!(legs[2].peak_rss_mb, None);
        assert_eq!(legs[2].label(), "fast-centralized/threads=1");
    }

    #[test]
    fn json_reader_handles_the_primitives() {
        let v = parse_json(r#"{"a":[1,2.5,-3e-2],"b":"x\"y\n","c":true,"d":null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\"y\n"));
        assert_eq!(v.get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert!(parse_json("{\"unterminated\":").is_err());
        assert!(parse_json("[1,2] trailing").is_err());
    }

    #[test]
    fn regression_detected_beyond_tolerance_and_floor() {
        let base = parse_bench_document(SAMPLE).unwrap();
        let mut pr = base.clone();
        pr[0].total_s = 1.3; // +30% on a 1 s leg: regression
        pr[1].phase0_s = 0.33; // +3%: within tolerance
        let verdicts = compare_legs(&base, &pr, 0.2, 0.02, 32.0);
        let bad: Vec<_> = verdicts.iter().filter(|v| v.regressed).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].label, "centralized/threads=1");
        assert_eq!(bad[0].metric, "total");
        assert_eq!(bad[0].unit, "s");
        assert!((bad[0].ratio - 1.3).abs() < 1e-9);
    }

    #[test]
    fn rss_regression_detected_and_floored() {
        let base = parse_bench_document(SAMPLE).unwrap();
        let mut pr = base.clone();
        pr[0].peak_rss_mb = Some(300.0); // +50% and +100 MB: regression
        pr[1].peak_rss_mb = Some(280.0); // +7.7%: within tolerance
        let verdicts = compare_legs(&base, &pr, 0.2, 0.02, 32.0);
        let bad: Vec<_> = verdicts.iter().filter(|v| v.regressed).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].metric, "peak_rss");
        assert_eq!(bad[0].unit, "MB");
        assert!((bad[0].ratio - 1.5).abs() < 1e-9);
        // A blow-up under the absolute floor is allocator jitter.
        let mut tiny_base = base.clone();
        tiny_base[0].peak_rss_mb = Some(10.0);
        let mut tiny_pr = tiny_base.clone();
        tiny_pr[0].peak_rss_mb = Some(30.0); // 3x, but only +20 MB
        let verdicts = compare_legs(&tiny_base, &tiny_pr, 0.2, 0.02, 32.0);
        assert!(verdicts.iter().all(|v| !v.regressed));
    }

    #[test]
    fn rss_rows_require_both_legs_to_carry_the_column() {
        let base = parse_bench_document(SAMPLE).unwrap();
        let mut pr = base.clone();
        pr[0].peak_rss_mb = None; // e.g. PR run on a procfs-less platform
        let verdicts = compare_legs(&base, &pr, 0.2, 0.02, 32.0);
        let rss_rows: Vec<_> = verdicts.iter().filter(|v| v.metric == "peak_rss").collect();
        // Leg 0 contributes no RSS row; leg 1 still does.
        assert_eq!(rss_rows.len(), 1);
        assert_eq!(rss_rows[0].label, "centralized/threads=4");
    }

    #[test]
    fn noise_floor_exempts_tiny_legs() {
        let base = vec![BenchLeg {
            algorithm: "centralized".into(),
            threads: 1,
            total_s: 0.003,
            phase0_s: 0.002,
            peak_rss_mb: None,
        }];
        let mut pr = base.clone();
        pr[0].total_s = 0.005; // +66%, but only 2 ms — jitter
        let verdicts = compare_legs(&base, &pr, 0.2, 0.02, 32.0);
        assert!(verdicts.iter().all(|v| !v.regressed));
    }

    #[test]
    fn unmatched_legs_are_skipped() {
        let base = parse_bench_document(SAMPLE).unwrap();
        let pr = vec![BenchLeg {
            algorithm: "brand-new".into(),
            threads: 1,
            total_s: 9.0,
            phase0_s: 9.0,
            peak_rss_mb: None,
        }];
        assert!(compare_legs(&base, &pr, 0.2, 0.02, 32.0).is_empty());
    }
}
