//! E10 (out-of-core): build + serve a multi-million-vertex graph with
//! peak RSS bounded below the graph's heap materialization.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p usnae-bench --bin exp_out_of_core \
//!     [--n 2000000] [--strides 16] [--queries 24] [--threads 4] \
//!     [--algo centralized] [--kappa 8] [--heap-baseline] [--assert] \
//!     [--json PATH]
//! ```
//!
//! The pipeline never holds the input graph on the heap: a circulant
//! edge list is synthesized straight to a text file, the streaming
//! loader two-passes it into a CSR file, `build_mapped` runs the
//! construction over the file-backed graph, and the v4 snapshot is then
//! *served* — `MappedBackend` + `QueryEngine::open` — in a child
//! process whose whole-process peak RSS is the serving cost. With
//! `--heap-baseline` a second child replays the classic heap pipeline
//! (`read_edge_list` → `build`) for an RSS and parity reference:
//! identical stream fingerprints and identical certified answers.
//!
//! `--assert` turns the memory claims into exit-code failures (CI's
//! `out-of-core` job): the serving peak must stay under the graph's
//! heap CSR bytes, and — when the baseline leg runs — the mapped build
//! must peak within 10% of the heap build (out-of-core input adds no
//! memory overhead; the resident file pages it does count are
//! kernel-evictable, which `VmHWM` cannot show). The serving bound only
//! separates from the ~20 MB process floor at scale — assert at
//! `n ≥ ~800k` with `--strides 16`, where the snapshot (sized by the
//! ultra-sparse emulator, ~`n` edges regardless of `m`) is several
//! times smaller than the degree-32 input graph.
//!
//! Stage peaks come from `usnae_bench::rss` (`VmHWM` +
//! `/proc/self/clear_refs` resets); on platforms without procfs the
//! table still prints but the assertions are skipped.
//!
//! `--json PATH` writes the per-stage peak-RSS legs plus the verdicts as
//! a JSON document — CI's `out-of-core` job uploads it into the
//! `BENCH_<sha>.json` artifact series next to the timing trends.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;
use usnae_bench::timing::json_string;
use usnae_bench::{arg_usize, emit, has_flag, rss};
use usnae_core::api::{registry, BuildConfig, MappedBackend, QueryEngine, TransportKind};
use usnae_core::cache::{CacheKey, Snapshot};
use usnae_eval::table::Table;
use usnae_graph::io::{read_edge_list, stream_edge_list_to_csr_file, StreamOptions};
use usnae_graph::metrics::Fnv64;
use usnae_graph::{MappedGraph, VertexId};

/// Strides of the synthetic circulant graph: vertex `i` links to
/// `i + s (mod n)` for each stride, so `m = strides.len() × n` and the
/// graph is connected (stride 1) with a heap footprint that scales with
/// the stride count while construction state scales only with `n`.
const STRIDES: [usize; 16] = [1, 2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47];

fn arg_string(key: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == key)
        .map(|w| w[1].clone())
        .unwrap_or_else(|| default.to_string())
}

/// Default `kappa = 8` puts the construction in its ultra-sparse regime
/// on the circulant inputs: the size bound `n^(1+1/kappa)` drops below
/// `m`, so the emulator collapses to ~`n` edges and the snapshot stays
/// far smaller than the input graph — the regime the paper (and this
/// experiment's memory claims) are about.
fn build_config(threads: usize) -> BuildConfig {
    BuildConfig {
        threads,
        kappa: arg_usize("--kappa", 8) as u32,
        transport: TransportKind::Inproc,
        ..BuildConfig::default()
    }
}

/// Deterministic query pairs (splitmix-style stream; no RNG dependency).
fn query_pairs(n: usize, k: usize) -> Vec<(VertexId, VertexId)> {
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (x >> 33) as usize
    };
    (0..k)
        .map(|_| {
            let u = next() % n;
            let v = next() % n;
            (u, v)
        })
        .collect()
}

/// Folds every certified answer into one digest, so two legs answering
/// identically agree on a single number.
fn answers_fingerprint(engine: &QueryEngine, pairs: &[(VertexId, VertexId)]) -> u64 {
    let mut h = Fnv64::new();
    for &(u, v) in pairs {
        let a = engine.distance(u, v);
        h.write_u64(u as u64);
        h.write_u64(v as u64);
        h.write_u64(a.value.unwrap_or(u64::MAX));
        h.write_u64(a.alpha.to_bits());
        h.write_u64(a.beta.to_bits());
    }
    h.finish()
}

/// Machine-readable result line a child leg prints for the parent.
fn emit_leg(tag: &str, peak_mb: Option<f64>, stream_fp: u64, answers_fp: u64, edges: usize) {
    println!(
        "LEG {{\"tag\":\"{tag}\",\"peak_rss_mb\":{},\"stream_fp\":{stream_fp},\
         \"answers_fp\":{answers_fp},\"emulator_edges\":{edges}}}",
        peak_mb.map_or("null".into(), |mb| format!("{mb:.3}"))
    );
}

/// One parsed child result. The optional fields only appear on the
/// build leg's line.
struct LegResult {
    peak_rss_mb: Option<f64>,
    stream_fp: u64,
    answers_fp: u64,
    emulator_edges: usize,
    build_s: Option<f64>,
    encode_s: Option<f64>,
    encode_peak_rss_mb: Option<f64>,
    snapshot_mb: Option<f64>,
}

/// Runs this binary again with `extra` args and parses its `LEG` line.
fn run_child(extra: &[String]) -> LegResult {
    let exe = std::env::current_exe().expect("current_exe");
    let out = std::process::Command::new(exe)
        .args(extra)
        .output()
        .expect("spawn child leg");
    let stdout = String::from_utf8_lossy(&out.stdout);
    print!("{stdout}");
    assert!(
        out.status.success(),
        "child leg {extra:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let line = stdout
        .lines()
        .find_map(|l| l.strip_prefix("LEG "))
        .expect("child printed a LEG line");
    // Raw text of one field (fingerprints are full 64-bit values, so
    // they must be parsed as integers, never through f64).
    let raw = |key: &str| -> Option<&str> {
        let at = line.find(&format!("\"{key}\":"))? + key.len() + 3;
        let rest = &line[at..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(&rest[..end])
    };
    LegResult {
        peak_rss_mb: raw("peak_rss_mb").and_then(|s| s.parse().ok()),
        stream_fp: raw("stream_fp")
            .and_then(|s| s.parse().ok())
            .expect("stream_fp"),
        answers_fp: raw("answers_fp")
            .and_then(|s| s.parse().ok())
            .expect("answers_fp"),
        emulator_edges: raw("emulator_edges")
            .and_then(|s| s.parse().ok())
            .expect("emulator_edges"),
        build_s: raw("build_s").and_then(|s| s.parse().ok()),
        encode_s: raw("encode_s").and_then(|s| s.parse().ok()),
        encode_peak_rss_mb: raw("encode_peak_rss_mb").and_then(|s| s.parse().ok()),
        snapshot_mb: raw("snapshot_mb").and_then(|s| s.parse().ok()),
    }
}

/// Child leg: serve the stored snapshot zero-copy and answer the query
/// batch. The process's whole-lifetime peak RSS *is* the serving cost —
/// no graph, no decode, no heap emulator.
fn serve_leg(snapshot: &Path, n: usize, queries: usize) {
    let backend = MappedBackend::open(snapshot).expect("open mapped snapshot");
    // Bounded-memory serving: every cached SSSP tree is `O(n)` words, so
    // an unbounded many-source workload would re-grow a graph-sized heap.
    // Answers are capacity-independent (the cache is a pure memo), so the
    // parity fingerprints still match the default-capacity heap leg.
    let engine = QueryEngine::open(&backend)
        .expect("serve snapshot")
        .with_cache_capacity(2);
    assert!(
        engine.emulator().is_none(),
        "mapped serving must not materialize a heap emulator"
    );
    let fp = answers_fingerprint(&engine, &query_pairs(n, queries));
    emit_leg(
        "mapped-serve",
        rss::peak_rss_mb(),
        backend.snapshot().stream_fingerprint(),
        fp,
        engine.num_edges(),
    );
}

/// Child leg: open the CSR file, run the construction over the mapped
/// graph, encode and store the v4 snapshot. Runs in its own process so
/// the build's peak RSS is not inflated by the parent's allocator
/// residue from earlier stages; the snapshot encode is timed and peaked
/// separately (after a high-water reset) so codec buffers don't
/// masquerade as construction memory.
fn build_leg(csr: &Path, snap: &Path, algo: &str, threads: usize) {
    let t0 = Instant::now();
    let g = MappedGraph::open(csr).expect("open csr");
    let c = registry::find(algo).expect("algorithm registered");
    let cfg = build_config(threads);
    let out = c.build_mapped(&g, &cfg).expect("mapped build");
    let build_s = t0.elapsed().as_secs_f64();
    let build_peak = rss::peak_rss_mb();
    let stream_fp = out.stream_fingerprint();
    let edges_built = out.num_edges();

    rss::reset_peak();
    let t0 = Instant::now();
    let key = CacheKey::new(&g, c.name(), &cfg);
    let encoded = Snapshot::from_output(key, &out).encode();
    let snapshot_mb = encoded.len() as f64 / (1024.0 * 1024.0);
    std::fs::write(snap, encoded).expect("write snapshot");
    let encode_s = t0.elapsed().as_secs_f64();
    println!(
        "LEG {{\"tag\":\"mapped-build\",\"peak_rss_mb\":{},\"stream_fp\":{stream_fp},\
         \"answers_fp\":0,\"emulator_edges\":{edges_built},\"build_s\":{build_s:.3},\
         \"encode_s\":{encode_s:.3},\"encode_peak_rss_mb\":{},\"snapshot_mb\":{snapshot_mb:.3}}}",
        build_peak.map_or("null".into(), |mb| format!("{mb:.3}")),
        rss::peak_rss_mb().map_or("null".into(), |mb| format!("{mb:.3}")),
    );
}

/// Child leg: the classic heap pipeline — materialize the graph from
/// the text edge list, build on the heap, query the live engine.
fn heap_leg(edges: &Path, algo: &str, n: usize, queries: usize, threads: usize) {
    let file = std::fs::File::open(edges).expect("open edge list");
    let g = read_edge_list(std::io::BufReader::new(file), 0).expect("read edge list");
    let c = registry::find(algo).expect("algorithm registered");
    let out = c.build(&g, &build_config(threads)).expect("heap build");
    let stream_fp = out.stream_fingerprint();
    let edges_built = out.num_edges();
    let engine = out.into_query_engine();
    let fp = answers_fingerprint(&engine, &query_pairs(n, queries));
    emit_leg("heap-build", rss::peak_rss_mb(), stream_fp, fp, edges_built);
}

/// Streams the circulant edge list straight to disk — the input is
/// synthesized without ever existing as a heap graph.
fn synthesize_edge_list(path: &Path, n: usize, strides: &[usize]) -> std::io::Result<u64> {
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "# circulant n={n} strides={strides:?}")?;
    for i in 0..n {
        for &s in strides {
            writeln!(w, "{i} {}", (i + s) % n)?;
        }
    }
    w.flush()?;
    std::fs::metadata(path).map(|m| m.len())
}

fn fmt_mb(x: Option<f64>) -> String {
    x.map_or("n/a".into(), |mb| format!("{mb:.1}"))
}

fn main() {
    let n = arg_usize("--n", 2_000_000);
    let queries = arg_usize("--queries", 24);
    let threads = arg_usize("--threads", 4);
    let algo = arg_string("--algo", "centralized");

    // Child-leg dispatch: each leg runs in its own process so its peak
    // RSS is untainted by the other stages' allocator residue.
    if has_flag("--serve-leg") {
        return serve_leg(Path::new(&arg_string("--snapshot", "")), n, queries);
    }
    if has_flag("--heap-leg") {
        let edges = arg_string("--edges", "");
        return heap_leg(Path::new(&edges), &algo, n, queries, threads);
    }
    if has_flag("--build-leg") {
        let csr = arg_string("--csr", "");
        let snap = arg_string("--snapshot", "");
        return build_leg(Path::new(&csr), Path::new(&snap), &algo, threads);
    }

    let stride_count = arg_usize("--strides", 16).clamp(1, STRIDES.len());
    let strides = &STRIDES[..stride_count];
    let dir = usnae_bench::experiments_dir().join("out_of_core");
    std::fs::create_dir_all(&dir).expect("create experiment dir");
    let edges_path = dir.join(format!("circulant-{n}-{stride_count}.txt"));
    let csr_path = dir.join(format!("circulant-{n}-{stride_count}.csr"));
    let snap_path: PathBuf = dir.join(format!("{algo}-{n}-{stride_count}.usnae-snap"));

    let m = stride_count * n;
    let heap_graph_mb = (((n + 1) + 2 * m) * 8) as f64 / (1024.0 * 1024.0);
    println!(
        "out-of-core: n={n}, m={m} (strides {strides:?}), {algo}, {threads} thread(s); \
         heap CSR footprint {heap_graph_mb:.1} MB"
    );

    let mut table = Table::new(
        "e10_out_of_core",
        &["stage", "seconds", "peak_rss_mb", "detail"],
    );
    // (stage, seconds, peak) triples, re-emitted into the JSON document.
    let mut legs: Vec<(String, f64, Option<f64>)> = Vec::new();
    let mut stage = |name: &str, seconds: f64, peak: Option<f64>, detail: String| {
        legs.push((name.to_string(), seconds, peak));
        table.push_row(vec![
            name.to_string(),
            format!("{seconds:.2}"),
            fmt_mb(peak),
            detail,
        ]);
    };

    // Stage 1: synthesize the edge-list text file (streamed write).
    let t0 = Instant::now();
    let bytes = synthesize_edge_list(&edges_path, n, strides).expect("write edge list");
    stage(
        "synthesize",
        t0.elapsed().as_secs_f64(),
        None,
        format!("{:.1} MB text", bytes as f64 / (1024.0 * 1024.0)),
    );

    // Stage 2: streaming two-pass load into the CSR file.
    rss::reset_peak();
    let t0 = Instant::now();
    let stats = stream_edge_list_to_csr_file(&edges_path, &csr_path, &StreamOptions::default())
        .expect("stream edge list");
    assert_eq!((stats.num_vertices, stats.num_edges), (n, m));
    stage(
        "stream-load",
        t0.elapsed().as_secs_f64(),
        rss::peak_rss_mb(),
        format!("{} lines -> csr", stats.lines),
    );

    // Stages 3 + 4: build over the file-backed graph and encode the v4
    // snapshot, in a fresh child process so the build's peak RSS is not
    // inflated by this process's allocator residue from stream-load.
    let build = run_child(&[
        "--build-leg".into(),
        "--csr".into(),
        csr_path.display().to_string(),
        "--snapshot".into(),
        snap_path.display().to_string(),
        "--algo".into(),
        algo.clone(),
        "--kappa".into(),
        arg_usize("--kappa", 8).to_string(),
        "--threads".into(),
        threads.to_string(),
    ]);
    let build_peak = build.peak_rss_mb;
    let mapped_stream_fp = build.stream_fp;
    let emulator_edges = build.emulator_edges;
    stage(
        "mapped-build",
        build.build_s.unwrap_or_default(),
        build_peak,
        format!("{emulator_edges} emulator edges"),
    );
    stage(
        "snapshot-encode",
        build.encode_s.unwrap_or_default(),
        build.encode_peak_rss_mb,
        format!("{:.1} MB snapshot", build.snapshot_mb.unwrap_or_default()),
    );

    // Stage 5: serve the snapshot in a fresh process (clean peak RSS).
    let t0 = Instant::now();
    let serve = run_child(&[
        "--serve-leg".into(),
        "--snapshot".into(),
        snap_path.display().to_string(),
        "--n".into(),
        n.to_string(),
        "--queries".into(),
        queries.to_string(),
    ]);
    assert_eq!(serve.stream_fp, mapped_stream_fp, "served stream diverged");
    stage(
        "mapped-serve",
        t0.elapsed().as_secs_f64(),
        serve.peak_rss_mb,
        format!("{queries} certified queries"),
    );

    // Stage 6 (optional): heap reference leg, also in a fresh process.
    let heap = has_flag("--heap-baseline").then(|| {
        let t0 = Instant::now();
        let heap = run_child(&[
            "--heap-leg".into(),
            "--edges".into(),
            edges_path.display().to_string(),
            "--algo".into(),
            algo.clone(),
            "--kappa".into(),
            arg_usize("--kappa", 8).to_string(),
            "--n".into(),
            n.to_string(),
            "--queries".into(),
            queries.to_string(),
            "--threads".into(),
            threads.to_string(),
        ]);
        assert_eq!(
            heap.stream_fp, mapped_stream_fp,
            "heap and mapped builds diverged"
        );
        assert_eq!(
            heap.answers_fp, serve.answers_fp,
            "heap and mapped-served answers diverged"
        );
        assert_eq!(heap.emulator_edges, serve.emulator_edges);
        stage(
            "heap-build",
            t0.elapsed().as_secs_f64(),
            heap.peak_rss_mb,
            "reference: read_edge_list + build + query".into(),
        );
        heap
    });

    emit("e10_out_of_core", &table);
    println!(
        "parity: stream fingerprint {mapped_stream_fp:#018x}, answers {:#018x}",
        serve.answers_fp
    );

    // The memory claims, as hard assertions under --assert.
    let mut failures = Vec::new();
    let mut serving_bounded = None;
    let mut build_parity = None;
    if let Some(serve_mb) = serve.peak_rss_mb {
        let ok = serve_mb < heap_graph_mb;
        serving_bounded = Some(ok);
        println!(
            "serving peak {serve_mb:.1} MB vs heap graph {heap_graph_mb:.1} MB — {}",
            if ok { "BOUNDED" } else { "EXCEEDED" }
        );
        if !ok {
            failures.push("serving peak exceeded the heap graph footprint".to_string());
        }
    }
    if let (Some(h), Some(build_mb)) = (&heap, build_peak) {
        if let Some(heap_mb) = h.peak_rss_mb {
            // Parity bound, not strict: construction state dominates both
            // pipelines, and the mapped graph's resident file pages count
            // toward `VmHWM` even though the kernel can evict them under
            // pressure (the anonymous heap pages of the baseline cannot).
            // The claim is "out-of-core input costs no extra memory".
            let ok = build_mb <= heap_mb * 1.1;
            build_parity = Some(ok);
            println!(
                "mapped build peak {build_mb:.1} MB vs heap pipeline peak {heap_mb:.1} MB — {}",
                if ok { "NO OVERHEAD" } else { "EXCEEDED" }
            );
            if !ok {
                failures.push("mapped build peaked >10% above the heap pipeline".to_string());
            }
        }
    }

    // Peak-RSS legs into the bench-trend artifact series (CI uploads
    // this next to the `BENCH_<sha>.json` timing documents).
    let json_path = arg_string(
        "--json",
        &dir.join("e10_out_of_core.json").display().to_string(),
    );
    let json_bool = |b: Option<bool>| b.map_or("null".to_string(), |v| v.to_string());
    let legs_json: Vec<String> = legs
        .iter()
        .map(|(name, seconds, peak)| {
            format!(
                "{{\"stage\":{},\"seconds\":{seconds:.3},\"peak_rss_mb\":{}}}",
                json_string(name),
                peak.map_or("null".into(), |mb| format!("{mb:.3}"))
            )
        })
        .collect();
    let doc = format!(
        "{{\"experiment\":\"out_of_core\",\"algo\":{},\"n\":{n},\"m\":{m},\
         \"threads\":{threads},\"kappa\":{},\"heap_graph_mb\":{heap_graph_mb:.3},\
         \"emulator_edges\":{emulator_edges},\"stream_fp\":{mapped_stream_fp},\
         \"serving_bounded\":{},\"build_parity\":{},\"legs\":[{}]}}\n",
        json_string(&algo),
        arg_usize("--kappa", 8),
        json_bool(serving_bounded),
        json_bool(build_parity),
        legs_json.join(",")
    );
    if let Some(parent) = Path::new(&json_path).parent() {
        std::fs::create_dir_all(parent).ok();
    }
    std::fs::write(&json_path, doc).expect("write bench json");
    println!("[json] {json_path}");

    if has_flag("--assert") && !failures.is_empty() {
        for f in &failures {
            eprintln!("out-of-core assertion failed: {f}");
        }
        std::process::exit(1);
    }
}
