//! E7 (Cor 4.4): §4 spanner vs the EM19 baseline.
//!
//! Usage: `cargo run --release -p usnae-bench --bin exp_spanner [--n <max>]`

use usnae_bench::{arg_usize, emit};
use usnae_eval::experiments::e7_spanner;

fn main() {
    let max = arg_usize("--n", 1024);
    let sizes: Vec<usize> = [256usize, 512, 1024, 2048]
        .into_iter()
        .filter(|&n| n <= max)
        .collect();
    let table = e7_spanner(&sizes, &[4, 8, 16], 0.5, 0.5, 42);
    emit("e7_spanner", &table);
    let factors = table.column_f64("em19_over_ours");
    let mean = factors.iter().sum::<f64>() / factors.len().max(1) as f64;
    println!("mean EM19/ours size factor: {mean:.3} (>= 1 on dense families)");
}
