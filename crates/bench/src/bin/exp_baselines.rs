//! E8: emulator lineages compared — ours vs EP01 / TZ06 / EN17a.
//!
//! Usage: `cargo run --release -p usnae-bench --bin exp_baselines [--n <n>]`

use usnae_bench::{arg_usize, emit};
use usnae_eval::experiments::e8_baselines;

fn main() {
    let n = arg_usize("--n", 512);
    let table = e8_baselines(n, &[2, 4, 8], 0.5, 42);
    emit("e8_baselines", &table);
}
