//! F1–F3: edge anatomy per phase under different processing orders —
//! includes the paper's §2.1.1 star order-dependence example.
//!
//! Usage: `cargo run --release -p usnae-bench --bin exp_anatomy [--n <n>]`

use usnae_bench::{arg_usize, emit};
use usnae_eval::experiments::anatomy;
use usnae_eval::workloads::figure_suite;

fn main() {
    let n = arg_usize("--n", 128);
    let table = anatomy(&figure_suite(n), 2, 0.5);
    emit("f1_f3_anatomy", &table);
}
