//! Bench-regression gate: compare a PR's `bench-parallel.json` against the
//! merge-base's and fail when any phase timing or the peak RSS regresses
//! beyond tolerance.
//!
//! ```text
//! bench_diff <base.json> <pr.json> [--tolerance 0.2] [--noise-floor-ms 20]
//!     [--rss-floor-mb 32]
//! ```
//!
//! Prints every matched `(algorithm, threads)` leg with its total/phase-0
//! time ratio and — when both documents carry the `peak_rss_mb` column —
//! its peak-RSS ratio, then exits 1 if any row regressed. CI's
//! `bench-regression` job is exactly this invocation on (merge-base run,
//! PR run).

use usnae_bench::trend::{compare_legs, parse_bench_document};

fn read_legs(path: &str) -> Vec<usnae_bench::trend::BenchLeg> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read bench JSON {path}: {e}"));
    parse_bench_document(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tolerance = 0.20f64;
    let mut noise_floor_ms = 20.0f64;
    let mut rss_floor_mb = 32.0f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--tolerance <fraction>")
            }
            "--noise-floor-ms" => {
                noise_floor_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--noise-floor-ms <ms>")
            }
            "--rss-floor-mb" => {
                rss_floor_mb = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--rss-floor-mb <MiB>")
            }
            p => paths.push(p.to_string()),
        }
    }
    let [base_path, pr_path] = paths.as_slice() else {
        eprintln!(
            "usage: bench_diff <base.json> <pr.json> [--tolerance 0.2] \
             [--noise-floor-ms 20] [--rss-floor-mb 32]"
        );
        std::process::exit(2);
    };

    let base = read_legs(base_path);
    let pr = read_legs(pr_path);
    let verdicts = compare_legs(&base, &pr, tolerance, noise_floor_ms / 1000.0, rss_floor_mb);
    if verdicts.is_empty() {
        // No comparable legs at all would make the gate vacuous — say so
        // loudly instead of silently passing.
        eprintln!("bench_diff: no (algorithm, threads) legs matched between the two runs");
        std::process::exit(2);
    }

    println!(
        "{:<36} {:>8} {:>12} {:>12} {:>8}  verdict (tolerance {:.0}%, floor {} ms / {} MB)",
        "leg",
        "metric",
        "base",
        "pr",
        "ratio",
        tolerance * 100.0,
        noise_floor_ms,
        rss_floor_mb
    );
    let mut regressed = 0usize;
    for v in &verdicts {
        println!(
            "{:<36} {:>8} {:>10.4}{:<2} {:>10.4}{:<2} {:>7.2}x  {}",
            v.label,
            v.metric,
            v.base,
            v.unit,
            v.pr,
            v.unit,
            v.ratio,
            if v.regressed { "REGRESSED" } else { "ok" }
        );
        regressed += usize::from(v.regressed);
    }
    if regressed > 0 {
        eprintln!(
            "bench_diff: {regressed} leg metric(s) regressed beyond {:.0}%",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "bench_diff: no regressions across {} leg metric(s)",
        verdicts.len()
    );
}
