//! E4/E5 (Cor 3.11/3.12): distributed CONGEST construction — rounds vs the
//! paper's budget, size bound, both-endpoint knowledge — plus E10: the
//! measured worker-transport message complexity against the simulator's
//! idealized counts on the same inputs.
//!
//! Usage: `cargo run --release -p usnae-bench --bin exp_congest [--n <n>] [--ultra]`

use usnae_bench::{arg_usize, emit, has_flag};
use usnae_eval::experiments::{e10_message_ratio, e4_congest};

fn main() {
    let n = arg_usize("--n", 256);
    let ultra = has_flag("--ultra");
    let table = e4_congest(n, 4, &[0.25, 0.34, 0.5], 0.5, 42, ultra);
    emit(
        if ultra {
            "e5_congest_ultra"
        } else {
            "e4_congest"
        },
        &table,
    );
    let bad: f64 = table.column_f64("knowledge_bad").into_iter().sum();
    println!("knowledge violations: {bad} (must be 0)");
    if !ultra {
        let ratio = e10_message_ratio(n, 4, 0.5, 0.5, 4, 42);
        emit("e10_message_ratio", &ratio);
    }
}
