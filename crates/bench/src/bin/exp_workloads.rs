//! Documents the workload suite (substitution S3): per-family structural
//! profile, so experiment tables can be read in context.
//!
//! Usage: `cargo run --release -p usnae-bench --bin exp_workloads [--n <n>]`

use usnae_bench::{arg_usize, emit};
use usnae_eval::table::{fmt_f64, Table};
use usnae_eval::workloads::standard_suite;
use usnae_graph::metrics::summarize;

fn main() {
    let n = arg_usize("--n", 1024);
    let mut t = Table::new(
        "workload suite profile",
        &[
            "family",
            "n",
            "m",
            "min_deg",
            "max_deg",
            "avg_deg",
            "diam_est",
            "clustering",
        ],
    );
    for w in standard_suite(n, 42) {
        let s = summarize(&w.graph);
        t.push_row(vec![
            w.name.into(),
            s.n.to_string(),
            s.m.to_string(),
            s.min_degree.to_string(),
            s.max_degree.to_string(),
            fmt_f64(s.avg_degree),
            s.diameter_estimate.to_string(),
            fmt_f64(s.clustering),
        ]);
    }
    emit("workloads", &t);
}
