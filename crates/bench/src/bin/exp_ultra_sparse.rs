//! E2 (Cor 2.15): ultra-sparse emulators at κ = log²n — edges/n → 1.
//!
//! Usage: `cargo run --release -p usnae-bench --bin exp_ultra_sparse [--n <max>]`

use usnae_bench::{arg_usize, emit};
use usnae_eval::experiments::e2_ultra_sparse;

fn main() {
    let max = arg_usize("--n", 2048);
    let sizes: Vec<usize> = [256usize, 512, 1024, 2048, 4096]
        .into_iter()
        .filter(|&n| n <= max)
        .collect();
    let table = e2_ultra_sparse(&sizes, 0.5, 42);
    emit("e2_ultra_sparse", &table);
    let worst = table
        .column_f64("edges_over_n")
        .into_iter()
        .fold(0.0f64, f64::max);
    println!("worst edges/n: {worst:.4} (must tend to 1 as n grows)");
}
