//! E1 (Cor 2.14): emulator size vs the exact `n^(1+1/κ)` bound.
//!
//! Usage: `cargo run --release -p usnae-bench --bin exp_size [--n <max>]`

use usnae_bench::{arg_usize, emit};
use usnae_eval::experiments::e1_size;

fn main() {
    let max = arg_usize("--n", 1024);
    let sizes: Vec<usize> = [256usize, 512, 1024, 2048, 4096]
        .into_iter()
        .filter(|&n| n <= max)
        .collect();
    let table = e1_size(&sizes, &[2, 3, 4, 8, 16], 0.5, 42);
    emit("e1_size", &table);
    let worst = table.column_f64("ratio").into_iter().fold(0.0f64, f64::max);
    println!("worst ratio vs bound: {worst:.4} (must be <= 1)");
}
