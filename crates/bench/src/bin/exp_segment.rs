//! F5/F6: per-level stretch audit (Lemma 2.10) — every sampled pair is
//! checked against the `(α_i, β_i)` bound of its *own* clustering level,
//! a strictly sharper test than the final corollary.
//!
//! Usage: `cargo run --release -p usnae-bench --bin exp_segment [--n <n>] [--pairs <k>]`

use usnae_bench::{arg_usize, emit};
use usnae_core::api::{Emulator, ProcessingOrder};
use usnae_core::params::CentralizedParams;
use usnae_eval::segment_audit::segment_audit;
use usnae_eval::table::{fmt_f64, Table};
use usnae_eval::workloads::standard_suite;
use usnae_graph::distance::sample_pairs;

fn main() {
    let n = arg_usize("--n", 512);
    let pairs = arg_usize("--pairs", 300);
    let mut t = Table::new(
        "F5/F6 (Lemma 2.10): per-level stretch audit",
        &[
            "family",
            "kappa",
            "pairs",
            "level_hist",
            "violations",
            "level0_err",
        ],
    );
    for w in standard_suite(n, 42) {
        for kappa in [4u32, 8] {
            let p = CentralizedParams::with_raw_epsilon(0.5, kappa).expect("valid params");
            let out = Emulator::builder(&w.graph)
                .kappa(kappa)
                .raw_epsilon(true)
                .order(ProcessingOrder::ByDegreeDesc)
                .traced(true)
                .build()
                .expect("valid params");
            let trace = out
                .trace
                .as_ref()
                .and_then(|t| t.as_centralized())
                .expect("centralized trace")
                .clone();
            let h = out.emulator;
            let sampled = sample_pairs(&w.graph, pairs, 17);
            let report = segment_audit(&w.graph, &h, &trace, &p, &sampled);
            let hist = report
                .level_histogram
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join("/");
            t.push_row(vec![
                w.name.into(),
                kappa.to_string(),
                report.pairs_checked.to_string(),
                hist,
                report.level_violations.to_string(),
                fmt_f64(report.level0_max_error as f64),
            ]);
        }
    }
    emit("f5_f6_segment", &t);
    let violations: f64 = t.column_f64("violations").into_iter().sum();
    println!("total per-level violations: {violations} (must be 0)");
}
