//! E3 (Cor 2.13): stretch audit — certified (α, β) vs measured.
//!
//! Usage: `cargo run --release -p usnae-bench --bin exp_stretch [--n <n>] [--pairs <k>]`

use usnae_bench::{arg_usize, emit};
use usnae_eval::experiments::e3_stretch;

fn main() {
    let n = arg_usize("--n", 512);
    let pairs = arg_usize("--pairs", 400);
    let table = e3_stretch(n, &[2, 4, 8], &[0.9, 0.5, 0.25], pairs, 42);
    emit("e3_stretch", &table);
    let violations: f64 = table.column_f64("violations").into_iter().sum();
    println!("total violations: {violations} (must be 0)");
}
