//! E9: query accuracy — observed vs certified stretch through the
//! `QueryEngine`, exact paths and landmark routing, across the registry.
//!
//! Usage: `cargo run --release -p usnae-bench --bin exp_queries
//! [--n <n>] [--pairs <k>] [--landmarks <k>]`

use usnae_bench::{arg_usize, emit};
use usnae_eval::experiments::e9_query_accuracy;

fn main() {
    let n = arg_usize("--n", 256);
    let pairs = arg_usize("--pairs", 200);
    let landmarks = arg_usize("--landmarks", 8);
    let table = e9_query_accuracy(n, 4, 0.5, pairs, landmarks, 42);
    emit("e9_queries", &table);
    let violations: f64 = table.column_f64("violations").into_iter().sum();
    println!("total violations: {violations} (must be 0)");
}
