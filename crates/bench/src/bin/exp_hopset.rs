//! Hopset view (§1.1): how many hops over `G ∪ H` reach the `(α, β)` target
//! versus the hops pure `G` paths need. The emulator collapses the hopbound
//! on high-diameter graphs — the property that makes near-additive
//! emulators the engine of parallel/distributed shortest-path algorithms.
//!
//! Usage: `cargo run --release -p usnae-bench --bin exp_hopset [--n <n>]`

use usnae_bench::{arg_usize, emit};
use usnae_core::api::{Emulator, ProcessingOrder};
use usnae_core::hopset::measure_hopbound;
use usnae_eval::table::Table;
use usnae_graph::distance::{exact_pair_distances, sample_pairs};
use usnae_graph::generators;

fn main() {
    let n = arg_usize("--n", 256);
    let hop_limit = 2 * n.isqrt() + 20;
    let mut t = Table::new(
        "hopset view: hops to reach (alpha, beta) over G vs G ∪ H",
        &[
            "family",
            "n",
            "kappa",
            "pairs",
            "hopbound_g",
            "hopbound_union",
        ],
    );
    let workloads: Vec<(&str, usnae_graph::Graph)> = vec![
        ("cycle", generators::cycle(n).expect("valid cycle")),
        ("grid", {
            let side = n.isqrt().max(2);
            generators::grid2d(side, side).expect("valid grid")
        }),
        (
            "caveman",
            generators::caveman((n / 10).max(2), 10).expect("valid caveman"),
        ),
    ];
    for (name, g) in workloads {
        let nv = g.num_vertices();
        for kappa in [4u32, 8] {
            let out = Emulator::builder(&g)
                .kappa(kappa)
                .raw_epsilon(true)
                .order(ProcessingOrder::ByDegreeDesc)
                .build()
                .expect("valid params");
            let (alpha, beta) = out.certified.expect("centralized certifies");
            let h = out.emulator;
            let pairs = sample_pairs(&g, 120, 17);
            let exact = exact_pair_distances(&g, &pairs);
            let empty = Emulator::new(nv);
            let plain = measure_hopbound(&g, &empty, &pairs, &exact, alpha, beta, hop_limit);
            let union = measure_hopbound(&g, &h, &pairs, &exact, alpha, beta, hop_limit);
            t.push_row(vec![
                name.into(),
                nv.to_string(),
                kappa.to_string(),
                union.pairs_checked.to_string(),
                plain.hopbound.map_or(">limit".into(), |x| x.to_string()),
                union.hopbound.map_or(">limit".into(), |x| x.to_string()),
            ]);
        }
    }
    emit("hopset_view", &t);
}
