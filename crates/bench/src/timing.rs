//! Minimal wall-clock benchmark harness.
//!
//! The repository is dependency-free, so instead of Criterion the `benches/`
//! targets (compiled with `harness = false`) use this: warm up once, run a
//! fixed sample count, report min/median/mean. Good enough to read scaling
//! *shapes* (the E6 deliverable); not a statistical benchmarking suite.

use std::time::{Duration, Instant};

/// Samples per measurement (after one warm-up run).
pub const DEFAULT_SAMPLES: usize = 10;

/// One measured benchmark case.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/name` label.
    pub label: String,
    /// Fastest sample.
    pub min: Duration,
    /// Median sample.
    pub median: Duration,
    /// Mean over all samples.
    pub mean: Duration,
}

impl std::fmt::Display for Measurement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<44} min {:>10.3?}  median {:>10.3?}  mean {:>10.3?}",
            self.label, self.min, self.median, self.mean
        )
    }
}

/// Runs `f` `samples` times (plus one warm-up), prints and returns the
/// measurement. The closure's return value is consumed with
/// [`std::hint::black_box`] so the work is not optimized away.
pub fn bench<T>(label: impl Into<String>, samples: usize, mut f: impl FnMut() -> T) -> Measurement {
    let label = label.into();
    std::hint::black_box(f()); // warm-up
    let mut times: Vec<Duration> = (0..samples.max(1))
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed()
        })
        .collect();
    times.sort_unstable();
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    let m = Measurement {
        label,
        min: times[0],
        median: times[times.len() / 2],
        mean,
    };
    println!("{m}");
    m
}

/// Prints a group header, Criterion-group style.
pub fn group(name: &str) {
    println!("\n== {name} ==");
}

impl Measurement {
    /// The measurement as a JSON object (hand-rolled; the repository is
    /// dependency-free). Durations are reported in seconds.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"label\":{},\"min_s\":{},\"median_s\":{},\"mean_s\":{}}}",
            json_string(&self.label),
            self.min.as_secs_f64(),
            self.median.as_secs_f64(),
            self.mean.as_secs_f64()
        )
    }
}

/// Escapes `s` as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Writes measurements as a JSON array to `path` (CI uploads these as
/// timing artifacts).
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_json(path: &str, measurements: &[Measurement]) -> std::io::Result<()> {
    let body: Vec<String> = measurements.iter().map(Measurement::to_json).collect();
    std::fs::write(path, format!("[{}]\n", body.join(",")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_labels() {
        let m = bench("test/tiny", 3, || (0..100u64).sum::<u64>());
        assert_eq!(m.label, "test/tiny");
        assert!(m.min <= m.median && m.median <= m.mean * 2);
    }

    #[test]
    fn json_escapes_and_serializes() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        let m = Measurement {
            label: "g/x".into(),
            min: Duration::from_millis(1),
            median: Duration::from_millis(2),
            mean: Duration::from_millis(2),
        };
        let j = m.to_json();
        assert!(j.starts_with("{\"label\":\"g/x\""), "{j}");
        assert!(j.contains("\"min_s\":0.001"), "{j}");
    }
}
