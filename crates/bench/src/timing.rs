//! Minimal wall-clock benchmark harness.
//!
//! The repository is dependency-free, so instead of Criterion the `benches/`
//! targets (compiled with `harness = false`) use this: warm up once, run a
//! fixed sample count, report min/median/mean. Good enough to read scaling
//! *shapes* (the E6 deliverable); not a statistical benchmarking suite.

use std::time::{Duration, Instant};

/// Samples per measurement (after one warm-up run).
pub const DEFAULT_SAMPLES: usize = 10;

/// One measured benchmark case.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/name` label.
    pub label: String,
    /// Fastest sample.
    pub min: Duration,
    /// Median sample.
    pub median: Duration,
    /// Mean over all samples.
    pub mean: Duration,
}

impl std::fmt::Display for Measurement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<44} min {:>10.3?}  median {:>10.3?}  mean {:>10.3?}",
            self.label, self.min, self.median, self.mean
        )
    }
}

/// Runs `f` `samples` times (plus one warm-up), prints and returns the
/// measurement. The closure's return value is consumed with
/// [`std::hint::black_box`] so the work is not optimized away.
pub fn bench<T>(label: impl Into<String>, samples: usize, mut f: impl FnMut() -> T) -> Measurement {
    let label = label.into();
    std::hint::black_box(f()); // warm-up
    let mut times: Vec<Duration> = (0..samples.max(1))
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed()
        })
        .collect();
    times.sort_unstable();
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    let m = Measurement {
        label,
        min: times[0],
        median: times[times.len() / 2],
        mean,
    };
    println!("{m}");
    m
}

/// Prints a group header, Criterion-group style.
pub fn group(name: &str) {
    println!("\n== {name} ==");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_labels() {
        let m = bench("test/tiny", 3, || (0..100u64).sum::<u64>());
        assert_eq!(m.label, "test/tiny");
        assert!(m.min <= m.median && m.median <= m.mean * 2);
    }
}
