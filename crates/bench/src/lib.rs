//! Shared plumbing for the `exp_*` experiment binaries and the wall-clock
//! benchmark targets.
//!
//! Each binary prints its tables to stdout and mirrors them as CSV under
//! `target/experiments/`, so `EXPERIMENTS.md` can reference stable files.
//! The `benches/` targets use [`timing`], the repository's dependency-free
//! stand-in for Criterion.

pub mod rss;
pub mod timing;
pub mod trend;

use std::path::PathBuf;
use usnae_eval::table::Table;

/// Directory where experiment CSVs land.
pub fn experiments_dir() -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd accessible");
    // Walk up to the workspace root if invoked from a crate dir.
    while !dir.join("Cargo.toml").exists() && dir.pop() {}
    dir.join("target").join("experiments")
}

/// Prints a table and writes `<name>.csv` next to its siblings.
///
/// # Panics
///
/// Panics when the output directory cannot be created or written — the
/// binaries have nothing sensible to do without their output.
pub fn emit(name: &str, table: &Table) {
    println!("{table}");
    let dir = experiments_dir();
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    let path = dir.join(format!("{name}.csv"));
    std::fs::write(&path, table.to_csv()).expect("write csv");
    println!("[csv] {}\n", path.display());
}

/// Parses `--flag` style booleans from argv.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Parses `--key value` style usize arguments from argv.
pub fn arg_usize(key: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == key)
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiments_dir_is_under_target() {
        let d = experiments_dir();
        assert!(d.ends_with("target/experiments"));
    }

    #[test]
    fn arg_parsing_defaults() {
        assert_eq!(arg_usize("--definitely-not-passed", 42), 42);
        assert!(!has_flag("--definitely-not-passed"));
    }
}
