//! Peak-RSS sampling from `/proc` (Linux; graceful `None` elsewhere).
//!
//! The out-of-core arc's success metric is a *memory* bound, so the
//! bench trend carries peak resident set size next to wall clock.
//! Linux publishes the high-water mark as the `VmHWM` line of
//! `/proc/self/status`; writing `5` to `/proc/self/clear_refs` resets
//! it to the current resident set, which yields per-stage peaks inside
//! one process (build vs serve, heap vs mapped). On platforms without
//! procfs — or in sandboxes that hide it — every probe returns `None`
//! and callers omit the RSS column rather than reporting garbage.

/// Peak resident set size (`VmHWM`) in bytes, when procfs exposes it.
pub fn peak_rss_bytes() -> Option<u64> {
    read_status_kb("VmHWM:").map(|kb| kb * 1024)
}

/// Current resident set size (`VmRSS`) in bytes, when procfs exposes it.
pub fn current_rss_bytes() -> Option<u64> {
    read_status_kb("VmRSS:").map(|kb| kb * 1024)
}

/// Peak RSS in MiB — the unit the bench JSON column carries.
pub fn peak_rss_mb() -> Option<f64> {
    peak_rss_bytes().map(|b| b as f64 / (1024.0 * 1024.0))
}

/// Resets the peak-RSS counter to the current resident set so the next
/// [`peak_rss_bytes`] reading covers only the work since this call.
/// Returns whether the reset took effect (`/proc/self/clear_refs` must
/// be writable; some container runtimes deny it — callers should treat
/// a `false` as "peak spans the whole process", not as an error).
pub fn reset_peak() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

fn read_status_kb(key: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_status_kb(&status, key)
}

/// Parses one `Key:   <value> kB` line out of a `/proc/<pid>/status`
/// document. The kernel always reports these fields in kB.
fn parse_status_kb(status: &str, key: &str) -> Option<u64> {
    status.lines().find_map(|line| {
        let rest = line.strip_prefix(key)?;
        let mut fields = rest.split_whitespace();
        let value: u64 = fields.next()?.parse().ok()?;
        match fields.next() {
            Some("kB") => Some(value),
            _ => None,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "Name:\ttest\nVmPeak:\t  123456 kB\nVmRSS:\t    4096 kB\nVmHWM:\t    8192 kB\nThreads:\t4\n";

    #[test]
    fn status_fields_parse_in_kb() {
        assert_eq!(parse_status_kb(SAMPLE, "VmHWM:"), Some(8192));
        assert_eq!(parse_status_kb(SAMPLE, "VmRSS:"), Some(4096));
        assert_eq!(parse_status_kb(SAMPLE, "VmSwap:"), None);
        // A field without the kB unit is rejected, not misread.
        assert_eq!(parse_status_kb(SAMPLE, "Threads:"), None);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn live_probes_are_consistent() {
        let rss = current_rss_bytes().expect("linux exposes VmRSS");
        let peak = peak_rss_bytes().expect("linux exposes VmHWM");
        assert!(rss > 0);
        assert!(peak >= rss, "high-water mark below current RSS");
        assert_eq!(peak_rss_mb().unwrap(), peak as f64 / (1024.0 * 1024.0));
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_tracks_a_large_allocation() {
        // Touch 64 MiB and confirm the high-water mark saw it. The
        // reset is best-effort: containers may deny clear_refs, in
        // which case the pre-existing peak already exceeds the floor.
        reset_peak();
        let before = peak_rss_bytes().unwrap();
        let block = vec![1u8; 64 << 20];
        let sum: u64 = block.iter().step_by(4096).map(|&b| b as u64).sum();
        assert!(sum > 0);
        let after = peak_rss_bytes().unwrap();
        drop(block);
        assert!(
            after >= before && after >= 64 << 20,
            "peak {after} did not cover the 64 MiB touch (before {before})"
        );
    }
}
