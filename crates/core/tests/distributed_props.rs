//! Property-style tests: the distributed protocols agree with their
//! centralized reference implementations on a deterministic sweep of seeded
//! random graphs (the repository is dependency-free, so no proptest — the
//! sweep plays its role).

use usnae_congest::Simulator;
use usnae_core::distributed::forest::BfsForest;
use usnae_core::distributed::popular::PopularDetect;
use usnae_core::distributed::supercluster::Supercluster;
use usnae_graph::bfs::{bfs, multi_source_bfs};
use usnae_graph::rng::Rng;
use usnae_graph::{generators, Graph};

/// A connected random graph on `10..70` vertices from the sweep seed.
fn random_graph(seed: u64) -> Graph {
    let mut rng = Rng::seed_from_u64(seed);
    let n = rng.gen_range(10, 70);
    let density = rng.gen_range(10, 50) as f64;
    generators::gnp_connected(n, density / 10.0 / n as f64, seed).expect("valid gnp parameters")
}

/// With a cap larger than n, PopularDetect is plain synchronized BFS:
/// every vertex knows every source within δ at the exact distance.
#[test]
fn uncapped_detection_is_bfs() {
    for seed in 0..20u64 {
        let g = random_graph(seed);
        let n = g.num_vertices();
        let delta = 1 + seed % 5;
        let stride = 1 + (seed as usize) % 3;
        let sources: Vec<usize> = (0..n).step_by(stride).collect();
        let mut sim = Simulator::new(&g);
        let mut det = PopularDetect::new(n, &sources, n + 1, delta);
        sim.run(&mut det, 1 << 30).unwrap();
        for &s in &sources {
            let exact = bfs(&g, s);
            for (v, &dv) in exact.iter().enumerate() {
                let expect = dv.filter(|&d| d <= delta && v != s);
                let got = det.known(v).get(&s).copied().filter(|_| v != s);
                assert_eq!(got, expect, "seed {seed} vertex {v} source {s}");
            }
        }
    }
}

/// The distributed BFS forest equals the centralized multi-source BFS.
#[test]
fn forest_protocol_matches_reference() {
    for seed in 0..20u64 {
        let g = random_graph(seed + 100);
        let n = g.num_vertices();
        let depth = 1 + seed % 9;
        let stride = 2 + (seed as usize) % 4;
        let roots: Vec<usize> = (0..n).step_by(stride).collect();
        let mut sim = Simulator::new(&g);
        let mut forest = BfsForest::new(n, &roots, depth);
        sim.run(&mut forest, 1 << 30).unwrap();
        let reference = multi_source_bfs(&g, &roots, depth);
        for v in 0..n {
            let got = forest.slot(v).map(|s| (s.root, s.depth));
            let expect = reference.root[v].map(|r| (r, reference.dist[v]));
            assert_eq!(got, expect, "seed {seed} vertex {v}");
        }
    }
}

/// Superclustering assigns every in-tree center exactly once, weights are
/// tree distances through the consumer, the assignment is mutually known,
/// and group sizes stay within the Fig. 7 window.
#[test]
fn supercluster_protocol_invariants() {
    for seed in 0..20u64 {
        let g = random_graph(seed + 200);
        let n = g.num_vertices();
        let cap = 1 + (seed as usize) % 5;
        let depth = 2 + seed % 6;
        let roots = vec![0usize];
        let mut sim = Simulator::new(&g);
        let mut forest = BfsForest::new(n, &roots, depth);
        sim.run(&mut forest, 1 << 30).unwrap();
        let slots: Vec<_> = (0..n).map(|v| forest.slot(v)).collect();
        let in_tree: Vec<bool> = slots.iter().map(|s| s.is_some()).collect();
        let mut sc = Supercluster::new(slots, vec![true; n], cap, depth);
        sim.run(&mut sc, 1 << 30).unwrap();
        let b = sc.hub_threshold();
        for &size in sc.group_sizes() {
            assert!(
                size >= b && size <= 3 * b,
                "seed {seed}: group size {size} vs b {b}"
            );
        }
        for (v, &in_t) in in_tree.iter().enumerate() {
            if in_t {
                let (r, w) = sc
                    .joined(v)
                    .unwrap_or_else(|| panic!("seed {seed}: vertex {v} unassigned"));
                if r != v {
                    assert!(
                        sc.edges_at(r).contains(&(v, w)),
                        "seed {seed}: edge ({r}, {v}, {w}) unknown at center"
                    );
                }
            } else {
                assert!(
                    sc.joined(v).is_none(),
                    "seed {seed}: off-tree vertex {v} assigned"
                );
            }
        }
    }
}
