//! Property tests: the distributed protocols agree with their centralized
//! reference implementations on arbitrary random graphs.

use proptest::prelude::*;
use usnae_congest::Simulator;
use usnae_core::distributed::forest::BfsForest;
use usnae_core::distributed::popular::PopularDetect;
use usnae_core::distributed::supercluster::Supercluster;
use usnae_graph::bfs::{bfs, multi_source_bfs};
use usnae_graph::{generators, Graph};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (10usize..70, 1u64..300, 10u32..50).prop_map(|(n, seed, density)| {
        generators::gnp_connected(n, density as f64 / 10.0 / n as f64, seed)
            .expect("valid gnp parameters")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// With a cap larger than n, PopularDetect is plain synchronized BFS:
    /// every vertex knows every source within δ at the exact distance.
    #[test]
    fn uncapped_detection_is_bfs(g in arb_graph(), delta in 1u64..6, stride in 1usize..4) {
        let n = g.num_vertices();
        let sources: Vec<usize> = (0..n).step_by(stride).collect();
        let mut sim = Simulator::new(&g);
        let mut det = PopularDetect::new(n, &sources, n + 1, delta);
        sim.run(&mut det, 1 << 30).unwrap();
        for &s in &sources {
            let exact = bfs(&g, s);
            for v in 0..n {
                let expect = exact[v].filter(|&d| d <= delta && v != s);
                let got = det.known(v).get(&s).copied().filter(|_| v != s);
                prop_assert_eq!(got, expect, "vertex {} source {}", v, s);
            }
        }
    }

    /// The distributed BFS forest equals the centralized multi-source BFS.
    #[test]
    fn forest_protocol_matches_reference(g in arb_graph(), depth in 1u64..10, stride in 2usize..6) {
        let n = g.num_vertices();
        let roots: Vec<usize> = (0..n).step_by(stride).collect();
        let mut sim = Simulator::new(&g);
        let mut forest = BfsForest::new(n, &roots, depth);
        sim.run(&mut forest, 1 << 30).unwrap();
        let reference = multi_source_bfs(&g, &roots, depth);
        for v in 0..n {
            let got = forest.slot(v).map(|s| (s.root, s.depth));
            let expect = reference.root[v].map(|r| (r, reference.dist[v]));
            prop_assert_eq!(got, expect, "vertex {}", v);
        }
    }

    /// Superclustering assigns every in-tree center exactly once, weights
    /// are tree distances through the consumer, the assignment is mutually
    /// known, and group sizes stay within the Fig. 7 window.
    #[test]
    fn supercluster_protocol_invariants(g in arb_graph(), cap in 1usize..6, depth in 2u64..8) {
        let n = g.num_vertices();
        let roots = vec![0usize];
        let mut sim = Simulator::new(&g);
        let mut forest = BfsForest::new(n, &roots, depth);
        sim.run(&mut forest, 1 << 30).unwrap();
        let slots: Vec<_> = (0..n).map(|v| forest.slot(v)).collect();
        let in_tree: Vec<bool> = slots.iter().map(|s| s.is_some()).collect();
        let mut sc = Supercluster::new(slots, vec![true; n], cap, depth);
        sim.run(&mut sc, 1 << 30).unwrap();
        let b = sc.hub_threshold();
        for &size in sc.group_sizes() {
            prop_assert!(size >= b && size <= 3 * b, "group size {} vs b {}", size, b);
        }
        for v in 0..n {
            if in_tree[v] {
                let (r, w) = sc.joined(v)
                    .ok_or_else(|| TestCaseError::fail(format!("vertex {v} unassigned")))?;
                if r != v {
                    prop_assert!(
                        sc.edges_at(r).contains(&(v, w)),
                        "edge ({}, {}, {}) unknown at center", r, v, w
                    );
                }
            } else {
                prop_assert!(sc.joined(v).is_none(), "off-tree vertex {} assigned", v);
            }
        }
    }
}
