//! Clusters and partial partitions `P_i`.
//!
//! Each phase `i` of the SAI construction operates on a *partial partition*
//! `P_i` of `V` — a family of pairwise-disjoint vertex sets, each with a
//! designated center `r_C ∈ C`. Phase 0 starts from singletons; each
//! superclustering step merges clusters into disjoint superclusters
//! (Lemma 2.2), so the history forms a laminar family (Lemma 2.9).

use usnae_graph::VertexId;

/// A cluster `C`: a designated center plus its member vertices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    /// The designated center `r_C ∈ C`.
    pub center: VertexId,
    /// All members, including the center.
    pub members: Vec<VertexId>,
}

impl Cluster {
    /// A singleton cluster `{v}` centered at `v`.
    pub fn singleton(v: VertexId) -> Self {
        Cluster {
            center: v,
            members: vec![v],
        }
    }

    /// Number of member vertices.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Clusters are never empty (they contain their center).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `v` belongs to this cluster.
    pub fn contains(&self, v: VertexId) -> bool {
        self.members.contains(&v)
    }
}

/// A partial partition of `V`: pairwise-disjoint clusters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Partition {
    clusters: Vec<Cluster>,
}

impl Partition {
    /// `P_0`: the partition of `V` into singletons.
    pub fn singletons(n: usize) -> Self {
        Partition {
            clusters: (0..n).map(Cluster::singleton).collect(),
        }
    }

    /// Builds from explicit clusters.
    ///
    /// # Panics
    ///
    /// Debug-asserts pairwise disjointness and center membership.
    pub fn from_clusters(clusters: Vec<Cluster>) -> Self {
        #[cfg(debug_assertions)]
        {
            let mut seen = std::collections::HashSet::new();
            for c in &clusters {
                debug_assert!(c.members.contains(&c.center), "center must be a member");
                for &v in &c.members {
                    debug_assert!(seen.insert(v), "clusters must be disjoint (vertex {v})");
                }
            }
        }
        Partition { clusters }
    }

    /// The clusters, in index order.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Number of clusters `|P_i|`.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether the partition has no clusters.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Cluster at `idx`.
    pub fn cluster(&self, idx: usize) -> &Cluster {
        &self.clusters[idx]
    }

    /// Centers of all clusters, in cluster order.
    pub fn centers(&self) -> Vec<VertexId> {
        self.clusters.iter().map(|c| c.center).collect()
    }

    /// Total number of clustered vertices.
    pub fn num_covered(&self) -> usize {
        self.clusters.iter().map(|c| c.len()).sum()
    }

    /// Map from center vertex to cluster index.
    pub fn center_index(&self) -> std::collections::HashMap<VertexId, usize> {
        self.clusters
            .iter()
            .enumerate()
            .map(|(i, c)| (c.center, i))
            .collect()
    }

    /// Map from every covered vertex to its cluster index (`None` entries
    /// for uncovered vertices); `n` is the universe size.
    pub fn vertex_to_cluster(&self, n: usize) -> Vec<Option<usize>> {
        let mut map = vec![None; n];
        for (i, c) in self.clusters.iter().enumerate() {
            for &v in &c.members {
                map[v] = Some(i);
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_cluster() {
        let c = Cluster::singleton(3);
        assert_eq!(c.center, 3);
        assert_eq!(c.len(), 1);
        assert!(c.contains(3));
        assert!(!c.contains(0));
        assert!(!c.is_empty());
    }

    #[test]
    fn singleton_partition_covers_everything() {
        let p = Partition::singletons(5);
        assert_eq!(p.len(), 5);
        assert_eq!(p.num_covered(), 5);
        assert_eq!(p.centers(), vec![0, 1, 2, 3, 4]);
        assert!(!p.is_empty());
    }

    #[test]
    fn vertex_to_cluster_maps_members() {
        let p = Partition::from_clusters(vec![
            Cluster {
                center: 0,
                members: vec![0, 1],
            },
            Cluster {
                center: 4,
                members: vec![4],
            },
        ]);
        let map = p.vertex_to_cluster(6);
        assert_eq!(map[1], Some(0));
        assert_eq!(map[4], Some(1));
        assert_eq!(map[5], None);
        assert_eq!(p.num_covered(), 3);
    }

    #[test]
    fn center_index_inverts_centers() {
        let p = Partition::from_clusters(vec![
            Cluster {
                center: 2,
                members: vec![2, 3],
            },
            Cluster {
                center: 5,
                members: vec![5],
            },
        ]);
        let idx = p.center_index();
        assert_eq!(idx[&2], 0);
        assert_eq!(idx[&5], 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "disjoint")]
    fn overlapping_clusters_rejected_in_debug() {
        let _ = Partition::from_clusters(vec![
            Cluster {
                center: 0,
                members: vec![0, 1],
            },
            Cluster {
                center: 1,
                members: vec![1],
            },
        ]);
    }
}
