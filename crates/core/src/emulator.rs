//! The emulator object `H` with per-edge provenance.
//!
//! Beyond the weighted graph itself, every edge remembers which phase added
//! it, whether it was an interconnection / superclustering / buffer-join
//! edge (the three arrows of the paper's Figures 1, 2 and 4), and which
//! vertex it was *charged* to — the raw material of the Lemma 2.4 size
//! argument, re-checked at runtime by [`charging`](crate::charging).

use usnae_graph::dijkstra;
use usnae_graph::{Dist, VertexId, WeightedEdge, WeightedGraph};

/// The role an edge played when it entered the emulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Added when an *unpopular* center was considered (Fig. 1); charged to
    /// that center.
    Interconnection,
    /// Added when a cluster joined a freshly formed supercluster (Fig. 2);
    /// charged to the joining cluster's center.
    Superclustering,
    /// Added at phase end when a buffered (`N_i`) cluster fell back to the
    /// supercluster that buffered it (Fig. 4); charged to the joiner.
    BufferJoin,
}

impl EdgeKind {
    /// Stable wire code for fingerprints and the snapshot codec (the
    /// discriminant order is a serialization contract, frozen at v1).
    pub fn code(self) -> u8 {
        match self {
            EdgeKind::Interconnection => 0,
            EdgeKind::Superclustering => 1,
            EdgeKind::BufferJoin => 2,
        }
    }

    /// Inverse of [`code`](Self::code); `None` for unknown bytes (a
    /// corrupted snapshot, not a panic).
    pub fn from_code(code: u8) -> Option<EdgeKind> {
        match code {
            0 => Some(EdgeKind::Interconnection),
            1 => Some(EdgeKind::Superclustering),
            2 => Some(EdgeKind::BufferJoin),
            _ => None,
        }
    }
}

impl std::fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeKind::Interconnection => write!(f, "interconnection"),
            EdgeKind::Superclustering => write!(f, "superclustering"),
            EdgeKind::BufferJoin => write!(f, "buffer-join"),
        }
    }
}

/// FNV-1a fingerprint of an exact insertion stream — every edge with its
/// weight and full provenance, in insertion order. This is the one
/// fingerprint definition in the workspace:
/// [`BuildOutput::stream_fingerprint`](crate::api::BuildOutput::stream_fingerprint)
/// computes it over a live build and the snapshot codec recomputes it over
/// decoded records, so a warm cache hit can be *proven* byte-identical to
/// the build that produced it.
pub fn stream_fingerprint(records: &[(WeightedEdge, EdgeProvenance)]) -> u64 {
    let mut h = usnae_graph::metrics::Fnv64::new();
    for (e, p) in records {
        h.write_u64(e.u as u64);
        h.write_u64(e.v as u64);
        h.write_u64(e.weight);
        h.write_u64(p.phase as u64);
        h.write_u64(u64::from(p.kind.code()));
        h.write_u64(p.charged_to as u64);
    }
    h.finish()
}

/// Where an emulator edge came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeProvenance {
    /// Phase index `i ∈ [0, ℓ]`.
    pub phase: usize,
    /// Interconnection / superclustering / buffer-join.
    pub kind: EdgeKind,
    /// The vertex this edge is charged to in the size analysis (§2.2.1).
    pub charged_to: VertexId,
}

/// A near-additive emulator under construction or completed.
///
/// # Example
///
/// ```
/// use usnae_core::{EdgeKind, EdgeProvenance, Emulator};
///
/// let mut h = Emulator::new(4);
/// h.add_edge(0, 2, 3, EdgeProvenance {
///     phase: 0,
///     kind: EdgeKind::Interconnection,
///     charged_to: 0,
/// });
/// assert_eq!(h.num_edges(), 1);
/// assert_eq!(h.distance(0, 2), Some(3));
/// ```
#[derive(Debug, Clone)]
pub struct Emulator {
    graph: WeightedGraph,
    provenance: Vec<(WeightedEdge, EdgeProvenance)>,
}

impl Emulator {
    /// An empty emulator over `n` vertices.
    pub fn new(n: usize) -> Self {
        Emulator {
            graph: WeightedGraph::new(n),
            provenance: Vec::new(),
        }
    }

    /// Replays a recorded insertion stream over `n` vertices — the snapshot
    /// codec's load path. Because [`add_edge`](Self::add_edge) is
    /// deterministic in the stream order, the rebuilt emulator is
    /// byte-identical (graph *and* provenance) to the one that recorded the
    /// stream.
    pub fn from_provenance(
        n: usize,
        records: impl IntoIterator<Item = (WeightedEdge, EdgeProvenance)>,
    ) -> Self {
        let mut h = Emulator::new(n);
        for (e, p) in records {
            h.add_edge(e.u, e.v, e.weight, p);
        }
        h
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of distinct edges `|H|` — the quantity bounded by `n^(1+1/κ)`.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Adds edge `(u, v)` with `weight` and provenance. Duplicate pairs keep
    /// the lighter weight; the provenance record is appended either way so
    /// the charge ledger sees every insertion the algorithm performed.
    ///
    /// Returns `true` when a genuinely new edge was created.
    pub fn add_edge(
        &mut self,
        u: VertexId,
        v: VertexId,
        weight: Dist,
        provenance: EdgeProvenance,
    ) -> bool {
        let created = self.graph.add_edge(u, v, weight);
        self.provenance
            .push((WeightedEdge::new(u, v, weight), provenance));
        created
    }

    /// The underlying weighted graph.
    pub fn graph(&self) -> &WeightedGraph {
        &self.graph
    }

    /// Every insertion with its provenance, in insertion order. May contain
    /// more records than [`num_edges`](Self::num_edges) when the same pair
    /// was inserted in several phases.
    pub fn provenance(&self) -> &[(WeightedEdge, EdgeProvenance)] {
        &self.provenance
    }

    /// Distance in `H` alone (no `G` edges): the emulator must certify its
    /// stretch by itself.
    pub fn distance(&self, u: VertexId, v: VertexId) -> Option<Dist> {
        dijkstra::distance(&self.graph, u, v)
    }

    /// Single-source distances in `H`.
    pub fn distances_from(&self, u: VertexId) -> Vec<Option<Dist>> {
        dijkstra::dijkstra(&self.graph, u)
    }

    /// Edge count per kind, for the anatomy reports (experiments F1/F2).
    pub fn kind_histogram(&self) -> std::collections::HashMap<EdgeKind, usize> {
        let mut hist = std::collections::HashMap::new();
        for (_, p) in &self.provenance {
            *hist.entry(p.kind).or_insert(0) += 1;
        }
        hist
    }

    /// Edge insertions per phase.
    pub fn phase_histogram(&self) -> Vec<usize> {
        let phases = self
            .provenance
            .iter()
            .map(|(_, p)| p.phase)
            .max()
            .map_or(0, |m| m + 1);
        let mut hist = vec![0usize; phases];
        for (_, p) in &self.provenance {
            hist[p.phase] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prov(phase: usize, kind: EdgeKind, charged_to: VertexId) -> EdgeProvenance {
        EdgeProvenance {
            phase,
            kind,
            charged_to,
        }
    }

    #[test]
    fn add_and_count() {
        let mut h = Emulator::new(5);
        assert!(h.add_edge(0, 1, 2, prov(0, EdgeKind::Interconnection, 0)));
        assert!(h.add_edge(1, 2, 4, prov(1, EdgeKind::Superclustering, 2)));
        assert!(!h.add_edge(0, 1, 9, prov(1, EdgeKind::BufferJoin, 1))); // duplicate pair
        assert_eq!(h.num_edges(), 2);
        assert_eq!(h.provenance().len(), 3);
    }

    #[test]
    fn distance_uses_min_weight_of_duplicates() {
        let mut h = Emulator::new(3);
        h.add_edge(0, 1, 9, prov(0, EdgeKind::Interconnection, 0));
        h.add_edge(0, 1, 4, prov(1, EdgeKind::Interconnection, 0));
        assert_eq!(h.distance(0, 1), Some(4));
    }

    #[test]
    fn histograms() {
        let mut h = Emulator::new(4);
        h.add_edge(0, 1, 1, prov(0, EdgeKind::Interconnection, 0));
        h.add_edge(1, 2, 1, prov(0, EdgeKind::Superclustering, 2));
        h.add_edge(2, 3, 1, prov(1, EdgeKind::Superclustering, 3));
        let kinds = h.kind_histogram();
        assert_eq!(kinds[&EdgeKind::Interconnection], 1);
        assert_eq!(kinds[&EdgeKind::Superclustering], 2);
        assert_eq!(h.phase_histogram(), vec![2, 1]);
    }

    #[test]
    fn unreachable_distance_is_none() {
        let h = Emulator::new(3);
        assert_eq!(h.distance(0, 2), None);
    }

    #[test]
    fn kind_display() {
        assert_eq!(EdgeKind::Interconnection.to_string(), "interconnection");
        assert_eq!(EdgeKind::Superclustering.to_string(), "superclustering");
        assert_eq!(EdgeKind::BufferJoin.to_string(), "buffer-join");
    }
}
