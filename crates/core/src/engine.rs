//! The exploration engine: one object that decides *where* a
//! construction's sharded exploration phases run.
//!
//! Every sharded construction (centralized / fast-centralized / spanner
//! and the EP01/EN17a/EM19 baselines) funnels its bulk graph work through
//! three primitives — sorted distance balls, full BFS explorations with
//! parents, and ruling-set carving. [`Engine`] owns the dispatch:
//!
//! * **Inproc** (the default): the primitives run against the build's
//!   [`GraphView`] via the `usnae_graph::par` fan-out — the shared
//!   adjacency array or local CSR shards, exactly as before.
//! * **Channel / Process** ([`TransportKind`]): the engine spawns a
//!   [`WorkerPool`] over the partitioned layout and ships each shard's
//!   work to its owning worker, exchanging cut-edge frontiers as typed
//!   messages. The pool's rank protocol reproduces the sequential FIFO
//!   BFS exactly, so the primitives return **byte-identical** results —
//!   the pool only changes where the work runs and adds **measured**
//!   [`MessageStats`] to the build's report.
//!
//! Worker failures never corrupt a build: on the first transport error the
//! engine stashes the typed [`WorkerError`], drops the pool, finishes the
//! build in-process (keeping the inner phase loops infallible), and
//! surfaces the error from [`Engine::finish`] so callers fail loudly
//! instead of silently reporting a worker build that did not happen.

use std::cell::RefCell;

use crate::api::{BuildConfig, BuildError};
use crate::emulator::EdgeProvenance;
use crate::sai::{self, Exploration};
use usnae_graph::partition::{GraphView, ShardView, ShardedCsr};
use usnae_graph::{par, AdjStorage, Dist, GraphCore, HeapAdj, VertexId, WeightedEdge};
use usnae_workers::{
    MessageStats, OutputRecord, ShardInit, TransportKind, WorkerError, WorkerPool,
};

/// What [`Engine::finish`] hands back to the build driver: the transport
/// that actually ran, its measured message statistics (worker transports
/// only), and the per-shard layout timings.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// The transport the exploration phases ran on.
    pub transport: TransportKind,
    /// Measured exchange statistics (`Some` iff a worker pool ran).
    pub messages: Option<MessageStats>,
    /// Per-shard layout records (empty for shared-array builds).
    pub shards: Vec<usnae_graph::partition::ShardTiming>,
}

/// Dispatches a construction's exploration primitives to the in-process
/// fan-out or a [`WorkerPool`], per [`BuildConfig::transport`].
///
/// Interior mutability (`RefCell`) keeps the primitive methods `&self`, so
/// the exec functions thread one shared `&Engine` through their phase
/// loops exactly like they used to thread `(threads, &GraphView)`.
pub struct Engine<'g, S: AdjStorage = HeapAdj> {
    view: GraphView<'g, S>,
    threads: usize,
    kind: TransportKind,
    pool: RefCell<Option<WorkerPool>>,
    error: RefCell<Option<WorkerError>>,
}

impl<'g, S: AdjStorage> Engine<'g, S> {
    /// Builds the engine for one construction run: partitions the graph
    /// per `cfg` and, for a worker transport on a partitioned layout,
    /// spawns the pool. A pool that cannot be spawned (e.g. the worker
    /// binary is missing) stashes its error and the build runs in-process;
    /// [`finish`](Self::finish) surfaces the failure.
    pub fn new(g: &'g GraphCore<S>, cfg: &BuildConfig) -> Engine<'g, S> {
        let view = cfg.graph_view(g);
        let mut engine = Engine {
            view,
            threads: cfg.threads,
            kind: TransportKind::Inproc,
            pool: RefCell::new(None),
            error: RefCell::new(None),
        };
        if cfg.transport != TransportKind::Inproc {
            if let Some(sharded) = engine.view.as_sharded() {
                let inits = shard_inits(sharded, g.num_vertices());
                match WorkerPool::new(cfg.transport, inits) {
                    Ok(pool) => {
                        engine.kind = cfg.transport;
                        engine.pool = RefCell::new(Some(pool));
                    }
                    Err(e) => engine.error = RefCell::new(Some(e)),
                }
            }
        }
        engine
    }

    /// A plain in-process engine over the shared adjacency array — the
    /// sequential wrappers' entry point.
    pub fn inproc(g: &'g GraphCore<S>, threads: usize) -> Engine<'g, S> {
        Engine {
            view: GraphView::shared(g),
            threads,
            kind: TransportKind::Inproc,
            pool: RefCell::new(None),
            error: RefCell::new(None),
        }
    }

    /// Worker threads of the in-process fan-out.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` against the pool if one is live; on a worker error the
    /// pool is dropped and the error stashed for [`finish`](Self::finish),
    /// returning `None` so the caller falls back in-process.
    fn with_pool<T>(&self, f: impl FnOnce(&mut WorkerPool) -> Result<T, WorkerError>) -> Option<T> {
        let mut slot = self.pool.borrow_mut();
        let pool = slot.as_mut()?;
        match f(pool) {
            Ok(out) => Some(out),
            Err(e) => {
                *slot = None; // the transport is unusable after an error
                *self.error.borrow_mut() = Some(e);
                None
            }
        }
    }

    /// Sorted distance balls of every source (the [`par::balls`]
    /// contract): per source, every `(v, dist)` with `dist <= depth`,
    /// ascending by vertex id, the source included at distance 0.
    pub fn balls(&self, sources: &[VertexId], depth: Dist) -> Vec<Vec<(VertexId, Dist)>> {
        if let Some(out) = self.with_pool(|pool| pool.balls(sources, depth)) {
            return out;
        }
        par::balls(&self.view, sources, depth, self.threads)
    }

    /// Full bounded explorations of every source — the
    /// [`Exploration::run`] contract, FIFO-exact BFS parents included.
    pub fn explorations(&self, sources: &[VertexId], depth: Dist) -> Vec<Exploration> {
        let n = self.view.num_vertices();
        if let Some(outcomes) = self.with_pool(|pool| pool.explorations(sources, depth)) {
            return sources
                .iter()
                .zip(outcomes)
                .map(|(&source, outcome)| {
                    let mut dist = vec![None; n];
                    let mut parent = vec![None; n];
                    for (v, d, p) in outcome.settled {
                        dist[v] = Some(d);
                        parent[v] = p;
                    }
                    Exploration {
                        source,
                        dist,
                        parent,
                    }
                })
                .collect();
        }
        // Capture only the view: the closure must be Sync, the RefCells
        // in `self` are not.
        let view = &self.view;
        par::map_indexed(self.threads, sources.len(), move |idx| {
            Exploration::run(view, sources[idx], depth)
        })
    }

    /// Deterministic greedy ruling-set carving (the
    /// [`sai::ruling_set_par`] contract), with the candidate balls
    /// computed wherever this engine runs them.
    pub fn ruling_set(&self, w: &[VertexId], delta: Dist) -> Vec<VertexId> {
        sai::ruling_set_impl(
            self.view.num_vertices(),
            w,
            delta,
            self.threads,
            |batch, depth| self.balls(batch, depth),
        )
    }

    /// Tears the engine down: shuts the pool down (collecting the final
    /// [`MessageStats`]) and reports transport + shard timings.
    ///
    /// # Errors
    ///
    /// [`BuildError::Worker`] when the pool could not be spawned, a
    /// transport exchange failed mid-build, or shutdown was unclean — the
    /// in-process fallback keeps the phases running, but the requested
    /// worker build did not happen, so the build must not succeed
    /// silently.
    pub fn finish(self) -> Result<EngineReport, BuildError> {
        let shards = self.view.shard_timings();
        if let Some(e) = self.error.into_inner() {
            return Err(BuildError::Worker(e));
        }
        let messages = match self.pool.into_inner() {
            Some(pool) => Some(pool.shutdown().map_err(BuildError::Worker)?),
            None => None,
        };
        Ok(EngineReport {
            transport: self.kind,
            messages,
            shards,
        })
    }

    /// Like [`finish`](Self::finish), but instead of shutting the pool
    /// down it ships the build's finished insertion stream to the workers
    /// ([`WorkerPool::retain_outputs`]) and keeps the pool alive inside
    /// the returned [`HeldOutputs`] — the handle a
    /// [`RemotePartitionedBackend`](crate::api::RemotePartitionedBackend)
    /// consumes to merge the worker-held partitions lazily. In-process
    /// builds (no pool) return `None` and behave exactly like `finish`.
    ///
    /// The report's `messages` are a snapshot *including* the retain
    /// traffic; the backend folds in the fetch traffic and final shutdown
    /// when it materializes (see [`finalize_worker_build`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`finish`](Self::finish): a stashed mid-build
    /// [`WorkerError`] or a retain failure surfaces as
    /// [`BuildError::Worker`].
    pub fn finish_retaining(
        self,
        records: &[(WeightedEdge, EdgeProvenance)],
    ) -> Result<(EngineReport, Option<HeldOutputs>), BuildError> {
        let shards = self.view.shard_timings();
        if let Some(e) = self.error.into_inner() {
            return Err(BuildError::Worker(e));
        }
        let Some(mut pool) = self.pool.into_inner() else {
            return Ok((
                EngineReport {
                    transport: self.kind,
                    messages: None,
                    shards,
                },
                None,
            ));
        };
        let wire: Vec<OutputRecord> = records
            .iter()
            .enumerate()
            .map(|(i, (e, p))| OutputRecord {
                index: i as u64,
                u: e.u as u64,
                v: e.v as u64,
                weight: e.weight,
                phase: p.phase as u64,
                kind: p.kind.code(),
                charged_to: p.charged_to as u64,
            })
            .collect();
        pool.retain_outputs(&wire).map_err(BuildError::Worker)?;
        let messages = Some(pool.message_stats());
        Ok((
            EngineReport {
                transport: self.kind,
                messages,
                shards,
            },
            Some(HeldOutputs {
                pool,
                count: wire.len(),
            }),
        ))
    }
}

/// A live [`WorkerPool`] whose workers hold a finished build's output
/// partitions (shipped by [`Engine::finish_retaining`]), plus the total
/// record count across all partitions. Opaque outside the crate; consumed
/// by [`RemotePartitionedBackend`](crate::api::RemotePartitionedBackend).
pub struct HeldOutputs {
    pub(crate) pool: WorkerPool,
    pub(crate) count: usize,
}

impl std::fmt::Debug for HeldOutputs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeldOutputs")
            .field("count", &self.count)
            .finish_non_exhaustive()
    }
}

/// Per-shard init payloads from the partitioned layout: each worker gets
/// its owned vertex range plus the shard's local CSR (which stores owned
/// neighbor lists verbatim, preserving the global adjacency order the
/// rank protocol depends on).
fn shard_inits(sharded: &ShardedCsr, num_vertices: usize) -> Vec<ShardInit> {
    let shards = sharded.shards();
    shards
        .iter()
        .enumerate()
        .map(|(i, shard)| {
            let range = shard.range();
            let mut offsets = Vec::with_capacity(range.len() + 1);
            let mut adjacency = Vec::new();
            offsets.push(0);
            for v in range.clone() {
                adjacency.extend_from_slice(shard.neighbors(v));
                offsets.push(adjacency.len());
            }
            ShardInit {
                shard: i,
                num_shards: shards.len(),
                num_vertices,
                start: range.start,
                end: range.end,
                offsets,
                adjacency,
            }
        })
        .collect()
}

/// Cross-checks a worker build's output partitions: routes the finished
/// stream through [`PartitionedBackend`](crate::api::PartitionedBackend)
/// under the build's own layout and materializes the merge. Only runs for
/// worker builds (`stats.messages` present) — the shared-array path is
/// already covered by the partition-conformance suite.
///
/// # Errors
///
/// [`BuildError::Worker`] with a [`WorkerError::Corrupt`] payload when the
/// merged partitions do not reproduce the built stream.
pub fn verify_partitioned_merge(
    out: &crate::api::BuildOutput,
    cfg: &BuildConfig,
) -> Result<(), BuildError> {
    use crate::api::OutputBackend;
    if out.stats.messages.is_none() {
        return Ok(());
    }
    crate::api::PartitionedBackend::from_output(out, cfg.partition, cfg.shards.max(1))
        .materialize()
        .map(|_| ())
        .map_err(|e| {
            BuildError::Worker(WorkerError::Corrupt {
                reason: format!("worker build failed the partitioned merge check: {e}"),
            })
        })
}

/// Finishes a worker build whose output stayed sharded across the pool
/// ([`Engine::finish_retaining`]): routes the worker-held partitions
/// through a [`RemotePartitionedBackend`](crate::api::RemotePartitionedBackend)
/// and materializes the lazy merge — streaming every record back over the
/// live transport and proving the merge byte-identical to the built
/// stream by fingerprint — then folds the final [`MessageStats`]
/// (retain and fetch traffic included) into `out.stats.messages` and
/// runs the in-memory [`verify_partitioned_merge`] check. In-process builds
/// (`held` is `None`) skip straight to the in-memory check.
///
/// # Errors
///
/// [`BuildError::Worker`] — the worker's own typed error (a dead peer
/// surfaces as `WorkerExited` / `Disconnected`, a bad merge as `Corrupt`
/// or a fingerprint mismatch).
pub fn finalize_worker_build(
    out: &mut crate::api::BuildOutput,
    held: Option<HeldOutputs>,
    cfg: &BuildConfig,
) -> Result<(), BuildError> {
    use crate::api::OutputBackend;
    if let Some(held) = held {
        let backend = crate::api::RemotePartitionedBackend::from_held(out, held);
        match backend.materialize() {
            Ok(_) => {}
            Err(e) => {
                // Surface the transport's own typed error when there is
                // one (a dead worker mid-fetch), not its stringified echo.
                return Err(BuildError::Worker(backend.take_worker_error().unwrap_or(
                    WorkerError::Corrupt {
                        reason: format!("worker-held partition merge failed: {e}"),
                    },
                )));
            }
        }
        if let Some(stats) = backend.final_stats() {
            out.stats.messages = Some(stats);
        }
    }
    verify_partitioned_merge(out, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use usnae_graph::generators;
    use usnae_graph::partition::PartitionPolicy;

    fn config(kind: TransportKind, shards: usize) -> BuildConfig {
        BuildConfig {
            transport: kind,
            shards,
            threads: 2,
            ..BuildConfig::default()
        }
    }

    #[test]
    fn inproc_engine_matches_the_direct_primitives() {
        let g = generators::gnp_connected(80, 0.06, 9).unwrap();
        let engine = Engine::inproc(&g, 2);
        let sources = [0, 7, 33];
        assert_eq!(engine.balls(&sources, 3), par::balls(&g, &sources, 3, 2));
        let explorations = engine.explorations(&sources, 4);
        for (&s, e) in sources.iter().zip(&explorations) {
            let reference = Exploration::run(&g, s, 4);
            assert_eq!(e.source, reference.source);
            assert_eq!(e.dist, reference.dist);
            assert_eq!(e.parent, reference.parent);
        }
        let w: Vec<VertexId> = (0..80).step_by(3).collect();
        assert_eq!(engine.ruling_set(&w, 2), sai::ruling_set(&g, &w, 2));
        let report = engine.finish().unwrap();
        assert_eq!(report.transport, TransportKind::Inproc);
        assert!(report.messages.is_none());
    }

    #[test]
    fn channel_engine_is_byte_identical_and_measures_messages() {
        let g = generators::gnp_connected(90, 0.05, 21).unwrap();
        let cfg = BuildConfig {
            partition: PartitionPolicy::DegreeBalanced,
            ..config(TransportKind::Channel, 3)
        };
        let engine = Engine::new(&g, &cfg);
        let sources = [1, 40, 77];
        assert_eq!(engine.balls(&sources, 4), par::balls(&g, &sources, 4, 2));
        let explorations = engine.explorations(&sources, 5);
        for (&s, e) in sources.iter().zip(&explorations) {
            let reference = Exploration::run(&g, s, 5);
            assert_eq!(
                (e.source, &e.dist, &e.parent),
                (s, &reference.dist, &reference.parent)
            );
        }
        let w: Vec<VertexId> = (0..90).step_by(2).collect();
        assert_eq!(engine.ruling_set(&w, 2), sai::ruling_set(&g, &w, 2));
        let report = engine.finish().unwrap();
        assert_eq!(report.transport, TransportKind::Channel);
        let stats = report.messages.expect("worker build measures messages");
        assert!(stats.rounds > 0 && stats.messages > 0 && stats.bytes > 0);
        assert_eq!(report.shards.len(), 3);
    }

    #[test]
    fn unsharded_worker_request_stays_inproc() {
        // `validate()` rejects this config, but the engine itself must not
        // spawn a pool without a partitioned layout.
        let g = generators::path(12).unwrap();
        let cfg = config(TransportKind::Channel, 0);
        let engine = Engine::new(&g, &cfg);
        assert_eq!(engine.balls(&[0], 2), par::balls(&g, &[0], 2, 2));
        let report = engine.finish().unwrap();
        assert_eq!(report.transport, TransportKind::Inproc);
        assert!(report.messages.is_none());
    }

    #[test]
    fn missing_worker_binary_surfaces_at_finish() {
        // The only test in this binary touching the worker-bin env var, so
        // no cross-test race.
        let g = generators::path(16).unwrap();
        let cfg = config(TransportKind::Process, 2);
        let previous = std::env::var_os(usnae_workers::process::WORKER_BIN_ENV);
        std::env::set_var(
            usnae_workers::process::WORKER_BIN_ENV,
            "/nonexistent/usnae-worker",
        );
        let engine = Engine::new(&g, &cfg);
        match previous {
            Some(v) => std::env::set_var(usnae_workers::process::WORKER_BIN_ENV, v),
            None => std::env::remove_var(usnae_workers::process::WORKER_BIN_ENV),
        }
        // The build still completes in-process...
        assert_eq!(engine.balls(&[0, 9], 3), par::balls(&g, &[0, 9], 3, 2));
        // ...but finish refuses to pretend the worker build happened.
        match engine.finish() {
            Err(BuildError::Worker(WorkerError::Io(_))) => {}
            other => panic!("expected a worker spawn error, got {other:?}"),
        }
    }
}
