//! Distributed CONGEST-model construction (§3) — module root.
//!
//! The full pipeline per phase `i`:
//!
//! 1. **Task 1** ([`popular`]): capped Bellman-Ford exploration (Algorithm 2)
//!    detects popular clusters and teaches unpopular centers their
//!    neighborhoods.
//! 2. **Task 2** ([`ruling`]): deterministic min-id ball-carving ruling set
//!    over the popular centers (substitution S1 for \[SEW13, KMW18\]).
//! 3. **Task 3** ([`supercluster`]): BFS ruling forest plus backtracking
//!    with *hub-vertex splitting*, so no vertex ever forwards more than
//!    `2·deg_i + 2` messages per stride and both endpoints of every
//!    emulator edge learn of it.
//! 4. **Interconnection** ([`popular`] re-run from `U_i`): unclustered
//!    centers connect to all neighboring centers; bidirectional knowledge
//!    comes from combining both runs (§3.1.3).
//!
//! [`driver`] orchestrates the phases on a [`usnae_congest::Simulator`],
//! accumulating an honest round count, and assembles the emulator from the
//! *per-node* knowledge maps — asserting the paper's headline distributed
//! property: for every emulator edge `(u, v)`, **both** `u` and `v` know it.
//!
//! The whole pipeline is deterministic end to end: the simulator schedules
//! messages in a defined order (see `usnae_congest::simulator` docs), all
//! per-node state here is index-keyed (`Vec`) or id-ordered (`BTreeMap`),
//! and both drivers emit their emulator/spanner edges in ascending
//! center/neighbor id — so the built edge *stream* is identical run to
//! run, which the registry-wide parity suite certifies exactly.

pub mod driver;
pub mod forest;
pub mod popular;
pub mod ruling;
pub mod spanner_driver;
pub mod supercluster;

#[allow(deprecated)]
pub use driver::build_emulator_distributed;
pub use driver::{DistributedBuild, DistributedPhaseTrace};
