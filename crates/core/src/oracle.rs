//! The distance-oracle query engine: the serving half of the product.
//!
//! The paper motivates near-additive emulators through approximate
//! shortest-path computation: answering `d(u, v)` queries from a structure
//! with `n + o(n)` edges instead of the full graph. This module turns a
//! built structure into a query server:
//!
//! * [`QueryEngine`] — wraps any build result (a live
//!   [`BuildOutput`](crate::api::BuildOutput) or an opened
//!   [`OutputBackend`](crate::api::OutputBackend), e.g. a stored snapshot)
//!   and answers distance queries with a **certified** `(α, β)` bound
//!   threaded from the construction's proof object: every answer `d̂`
//!   satisfies `d_G(u,v) ≤ d̂ ≤ α·d_G(u,v) + β`.
//! * Batched queries ([`QueryEngine::distances`]) share SSSP trees across
//!   the batch: pairs are oriented toward their most-frequent endpoint, so
//!   `k` queries from one hub cost one Dijkstra, not `k`.
//! * The per-source tree cache is a **bounded, deterministic LRU**
//!   ([`TreeCache`]): capacity is by entries, eviction is oldest-recently-
//!   used first, and iteration order is defined (LRU → MRU) — a many-source
//!   workload can no longer grow the cache without bound, and two runs of
//!   the same query stream evict identically.
//! * [`LandmarkIndex`] — a deterministic precomputed landmark set
//!   (highest-degree-first, ties broken by ascending id) giving O(#landmarks)
//!   approximate answers with a *certified* `(α, β + 2R)` bound, where `R`
//!   is the measured covering radius of the landmark set on `H`.
//!
//! Answers are a pure function of the underlying emulator: shortest-path
//! distances are unique, so batching, caching, eviction, thread count of
//! the producing build, and the backend the structure was loaded from can
//! never change an answer — `tests/query_conformance.rs` enforces this
//! registry-wide, byte-identical across backends and repeat runs.

use crate::api::backend::OutputBackend;
use crate::api::BuildOutput;
use crate::cache::{MappedEmulator, SnapshotError};
use crate::centralized::{build_centralized, ProcessingOrder};
use crate::emulator::Emulator;
use crate::error::ParamError;
use crate::params::CentralizedParams;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap, VecDeque};
use usnae_graph::{Dist, Graph, VertexId};

/// A query answer carrying the certified stretch bound it was served
/// under: `d_G ≤ value ≤ α·d_G + β` (for connected pairs; `value` is
/// `None` when the pair is disconnected in `H`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Certified<T> {
    /// The answer.
    pub value: T,
    /// Certified multiplicative stretch of this answer.
    pub alpha: f64,
    /// Certified additive stretch of this answer (`f64::INFINITY` when the
    /// producing construction certifies none).
    pub beta: f64,
}

impl Certified<Option<Dist>> {
    /// Checks this answer against an exact distance: lower bound
    /// `exact ≤ value`, upper bound `value ≤ α·exact + β`, and agreement on
    /// disconnection. The conformance suite calls this on every golden
    /// query.
    pub fn holds_against(&self, exact: Option<Dist>) -> bool {
        match (exact, self.value) {
            (None, None) => true,
            // `H` must never connect what `G` does not, and a finite exact
            // distance with an unreachable answer violates the upper bound
            // (unless no bound is certified).
            (None, Some(_)) => false,
            (Some(_), None) => !self.beta.is_finite(),
            (Some(d), Some(a)) => (a >= d) && (a as f64 <= self.alpha * d as f64 + self.beta),
        }
    }
}

/// Bounded per-source SSSP tree cache with deterministic LRU eviction.
///
/// The capacity bounds the number of retained trees (each is `O(n)`), so a
/// many-source workload holds at most `capacity · n` distance words —
/// previously the cache was an unbounded `HashMap` that was cleared
/// wholesale on overflow. Recency is tracked in an explicit queue, so
/// eviction order is a pure function of the access sequence (no map
/// iteration order anywhere).
#[derive(Debug)]
pub struct TreeCache {
    trees: HashMap<VertexId, Vec<Option<Dist>>>,
    /// Access order, least-recently-used first.
    order: VecDeque<VertexId>,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl TreeCache {
    /// An empty cache retaining at most `capacity` trees (min 1).
    pub fn new(capacity: usize) -> Self {
        TreeCache {
            trees: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Number of trees currently retained.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether no tree is retained.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `(hits, misses, evictions)` counters since construction.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// Cached sources in deterministic order, least-recently-used first.
    pub fn sources(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.order.iter().copied()
    }

    fn touch(&mut self, source: VertexId) {
        if let Some(pos) = self.order.iter().position(|&s| s == source) {
            self.order.remove(pos);
            self.order.push_back(source);
        }
    }

    /// The tree for `source`, refreshing its recency on a hit.
    pub fn get(&mut self, source: VertexId) -> Option<&Vec<Option<Dist>>> {
        if self.trees.contains_key(&source) {
            self.hits += 1;
            self.touch(source);
            self.trees.get(&source)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Peeks without counting or refreshing (batch planning).
    pub fn peek(&self, source: VertexId) -> Option<&Vec<Option<Dist>>> {
        self.trees.get(&source)
    }

    /// Inserts a freshly computed tree as most-recently-used, evicting the
    /// least-recently-used entries while over capacity.
    pub fn insert(&mut self, source: VertexId, tree: Vec<Option<Dist>>) {
        if self.trees.insert(source, tree).is_some() {
            self.touch(source);
            return;
        }
        self.order.push_back(source);
        while self.trees.len() > self.capacity {
            let victim = self.order.pop_front().expect("order tracks every entry");
            self.trees.remove(&victim);
            self.evictions += 1;
        }
    }
}

/// Where a [`QueryEngine`]'s structure lives: on this process's heap (the
/// default — every live build) or served straight from a mapped v4
/// snapshot file ([`MappedEmulator`]), which is how
/// [`QueryEngine::open`] over a
/// [`MappedBackend`](crate::api::MappedBackend) answers certified queries
/// without ever materializing the structure. Both stores answer every
/// query identically — shortest distances are unique, so the storage
/// layout cannot change an answer.
#[derive(Debug)]
pub enum EmStore {
    /// A live in-memory emulator.
    Heap(Emulator),
    /// A served v4 snapshot (Dijkstra over the mapped CSR section).
    Mapped(MappedEmulator),
}

impl EmStore {
    /// Vertex count of the structure.
    pub fn num_vertices(&self) -> usize {
        match self {
            EmStore::Heap(h) => h.num_vertices(),
            EmStore::Mapped(m) => m.num_vertices(),
        }
    }

    /// Distinct-edge count of the structure.
    pub fn num_edges(&self) -> usize {
        match self {
            EmStore::Heap(h) => h.num_edges(),
            EmStore::Mapped(m) => m.num_edges(),
        }
    }

    /// Degree of `v` (distinct neighbors — identical across stores).
    pub fn degree(&self, v: VertexId) -> usize {
        match self {
            EmStore::Heap(h) => h.graph().degree(v),
            EmStore::Mapped(m) => m.degree(v),
        }
    }

    /// Single-source distances in `H`.
    pub fn distances_from(&self, source: VertexId) -> Vec<Option<Dist>> {
        match self {
            EmStore::Heap(h) => h.distances_from(source),
            EmStore::Mapped(m) => m.distances_from(source),
        }
    }

    /// The live emulator, when this store holds one on the heap.
    pub fn as_heap(&self) -> Option<&Emulator> {
        match self {
            EmStore::Heap(h) => Some(h),
            EmStore::Mapped(_) => None,
        }
    }
}

/// Deterministic landmark index over an emulator: `k` landmarks chosen
/// highest-degree-first (ties broken by ascending vertex id — the seeded,
/// reproducible tie-break), one precomputed SSSP tree each, and the
/// measured covering radius `R = max_v min_L d_H(L, v)`.
///
/// An approximate answer `min_L d_H(u,L) + d_H(L,v)` routes through the
/// best landmark in `O(k)` time; the triangle inequality certifies
/// `d̂ ≤ d_H(u,v) + 2R`, so the index serves answers under the certified
/// pair `(α, β + 2R)` whenever the emulator certifies `(α, β)` and every
/// vertex is covered by some landmark.
#[derive(Debug, Clone)]
pub struct LandmarkIndex {
    landmarks: Vec<VertexId>,
    trees: Vec<Vec<Option<Dist>>>,
    /// `None` when some vertex is unreachable from every landmark (then no
    /// additive bound can be certified for uncovered pairs).
    radius: Option<Dist>,
}

impl LandmarkIndex {
    /// Builds the index: picks `min(k, n)` landmarks by descending
    /// emulator degree (ascending id on ties) and runs one Dijkstra each.
    pub fn build(h: &Emulator, k: usize) -> Self {
        Self::build_store(&EmStore::Heap(h.clone()), k)
    }

    /// [`build`](Self::build) over either store. Degrees and distances are
    /// identical across stores, so so is the index.
    pub(crate) fn build_store(store: &EmStore, k: usize) -> Self {
        let n = store.num_vertices();
        let mut by_degree: Vec<VertexId> = (0..n).collect();
        by_degree.sort_by_key(|&v| (std::cmp::Reverse(store.degree(v)), v));
        let landmarks: Vec<VertexId> = by_degree.into_iter().take(k).collect();
        let trees: Vec<Vec<Option<Dist>>> =
            landmarks.iter().map(|&l| store.distances_from(l)).collect();
        let mut radius: Option<Dist> = Some(0);
        for v in 0..n {
            let nearest = trees.iter().filter_map(|t| t[v]).min();
            match (nearest, &mut radius) {
                (Some(d), Some(r)) => *r = (*r).max(d),
                _ => radius = None,
            }
            if radius.is_none() {
                break;
            }
        }
        if landmarks.is_empty() {
            radius = None;
        }
        LandmarkIndex {
            landmarks,
            trees,
            radius,
        }
    }

    /// The chosen landmarks, selection order (degree-descending).
    pub fn landmarks(&self) -> &[VertexId] {
        &self.landmarks
    }

    /// Measured covering radius `R` of the landmark set on `H`, when every
    /// vertex is reachable from some landmark.
    pub fn radius(&self) -> Option<Dist> {
        self.radius
    }

    /// `min_L d_H(u,L) + d_H(L,v)` — `None` when no landmark reaches both.
    pub fn estimate(&self, u: VertexId, v: VertexId) -> Option<Dist> {
        if u == v {
            return Some(0);
        }
        self.trees.iter().filter_map(|t| Some(t[u]? + t[v]?)).min()
    }
}

/// Aggregate counters of one engine's lifetime (diagnostics and the CLI
/// `query --report` line).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryStats {
    /// Distance queries answered (batched queries count individually).
    pub queries: u64,
    /// SSSP trees computed (the expensive step).
    pub tree_builds: u64,
    /// Queries answered from a cached tree.
    pub cache_hits: u64,
    /// Trees evicted by the LRU bound.
    pub evictions: u64,
    /// Queries answered through the landmark index.
    pub landmark_queries: u64,
}

/// Default per-source tree retention of a fresh engine.
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

/// The `(α, β)`-certified distance-oracle query engine.
///
/// Construct one from a live build ([`QueryEngine::from_output`], builder
/// [`query_engine`](crate::api::EmulatorBuilder::query_engine)) or from any
/// opened [`OutputBackend`] ([`QueryEngine::open`]) — e.g. a
/// [`SnapshotBackend`](crate::api::SnapshotBackend) over a stored cache
/// entry, so a serving process never re-runs the construction.
///
/// # Example
///
/// ```
/// use usnae_core::api::{Algorithm, Emulator};
/// use usnae_graph::generators;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::gnp_connected(200, 0.05, 3)?;
/// let engine = Emulator::builder(&g)
///     .epsilon(0.5)
///     .kappa(4)
///     .algorithm(Algorithm::Centralized)
///     .query_engine()?;
/// let (alpha, beta) = engine.guarantee();
/// let answers = engine.distances(&[(0, 100), (0, 150), (7, 100)]);
/// for a in &answers {
///     let d = a.value.expect("connected");
///     assert!(d >= 1 && alpha >= 1.0 && beta >= 0.0);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct QueryEngine {
    store: EmStore,
    algorithm: String,
    alpha: f64,
    beta: f64,
    cache: RefCell<TreeCache>,
    landmarks: Option<LandmarkIndex>,
    queries: Cell<u64>,
    tree_builds: Cell<u64>,
    landmark_queries: Cell<u64>,
}

impl QueryEngine {
    /// An engine over an emulator with its certified stretch pair (`None`
    /// = uncertified: `α = 1`, `β = ∞` — the lower bound still holds, every
    /// emulator here is distance-nondecreasing).
    pub fn new(
        emulator: Emulator,
        algorithm: impl Into<String>,
        certified: Option<(f64, f64)>,
    ) -> Self {
        QueryEngine::from_store(EmStore::Heap(emulator), algorithm, certified)
    }

    /// An engine over either store — how [`open`](Self::open) serves a
    /// mapped snapshot without materializing it.
    pub fn from_store(
        store: EmStore,
        algorithm: impl Into<String>,
        certified: Option<(f64, f64)>,
    ) -> Self {
        let (alpha, beta) = certified.unwrap_or((1.0, f64::INFINITY));
        QueryEngine {
            store,
            algorithm: algorithm.into(),
            alpha,
            beta,
            cache: RefCell::new(TreeCache::new(DEFAULT_CACHE_CAPACITY)),
            landmarks: None,
            queries: Cell::new(0),
            tree_builds: Cell::new(0),
            landmark_queries: Cell::new(0),
        }
    }

    /// Wraps a build result, borrowing its certification (the emulator is
    /// cloned; use [`BuildOutput::into_query_engine`] to avoid the copy).
    pub fn from_output(out: &BuildOutput) -> Self {
        QueryEngine::new(out.emulator.clone(), out.algorithm, out.certified)
    }

    /// Opens an engine over any output backend, threading through the
    /// backend's certified pair. Heap-style backends materialize the
    /// emulator once (for a
    /// [`SnapshotBackend`](crate::api::SnapshotBackend) this decodes and
    /// verifies the stored snapshot; the construction itself never
    /// re-runs); a [`MappedBackend`](crate::api::MappedBackend) is served
    /// straight from its snapshot file — certified answers with **no full
    /// materialization** (see [`OutputBackend::serve`]).
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when a persistent backend cannot be read back.
    pub fn open(backend: &dyn OutputBackend) -> Result<Self, SnapshotError> {
        Ok(QueryEngine::from_store(
            backend.serve()?,
            backend.algorithm().to_string(),
            backend.certified(),
        ))
    }

    /// Sets how many SSSP trees the LRU cache retains (min 1).
    pub fn with_cache_capacity(self, capacity: usize) -> Self {
        self.cache.borrow_mut().capacity = capacity.max(1);
        {
            // Shrink immediately if the new bound is tighter.
            let mut cache = self.cache.borrow_mut();
            while cache.trees.len() > cache.capacity {
                let victim = cache.order.pop_front().expect("order tracks entries");
                cache.trees.remove(&victim);
                cache.evictions += 1;
            }
        }
        self
    }

    /// Precomputes a [`LandmarkIndex`] of `k` landmarks (0 removes it).
    pub fn with_landmarks(mut self, k: usize) -> Self {
        self.landmarks = (k > 0).then(|| LandmarkIndex::build_store(&self.store, k));
        self
    }

    /// The certified `(α, β)` of every exact-path answer.
    pub fn guarantee(&self) -> (f64, f64) {
        (self.alpha, self.beta)
    }

    /// The certified pair of landmark answers: `(α, β + 2R)` when a
    /// landmark index with a finite covering radius exists, the exact-path
    /// pair otherwise (landmark-less engines answer exactly).
    pub fn landmark_guarantee(&self) -> (f64, f64) {
        match self.landmarks.as_ref().and_then(LandmarkIndex::radius) {
            Some(r) => (self.alpha, self.beta + 2.0 * r as f64),
            None => (self.alpha, self.beta),
        }
    }

    /// Registry name of the construction that produced the structure.
    pub fn algorithm(&self) -> &str {
        &self.algorithm
    }

    /// The underlying emulator, when this engine holds one on the heap
    /// (`None` for an engine served from a mapped snapshot — the whole
    /// point is that no live emulator exists).
    pub fn emulator(&self) -> Option<&Emulator> {
        self.store.as_heap()
    }

    /// Where the structure answering queries lives.
    pub fn store(&self) -> &EmStore {
        &self.store
    }

    /// Vertex count of the structure answering queries.
    pub fn num_vertices(&self) -> usize {
        self.store.num_vertices()
    }

    /// Size of the structure answering queries (`|H|`).
    pub fn num_edges(&self) -> usize {
        self.store.num_edges()
    }

    /// The landmark index, when one was precomputed.
    pub fn landmark_index(&self) -> Option<&LandmarkIndex> {
        self.landmarks.as_ref()
    }

    /// Number of cached SSSP trees (diagnostics).
    pub fn cached_sources(&self) -> usize {
        self.cache.borrow().len()
    }

    /// Lifetime counters of this engine.
    pub fn stats(&self) -> QueryStats {
        let cache = self.cache.borrow();
        let (hits, _misses, evictions) = cache.counters();
        QueryStats {
            queries: self.queries.get(),
            tree_builds: self.tree_builds.get(),
            cache_hits: hits,
            evictions,
            landmark_queries: self.landmark_queries.get(),
        }
    }

    fn sssp_tree(&self, source: VertexId) -> Vec<Option<Dist>> {
        self.tree_builds.set(self.tree_builds.get() + 1);
        self.store.distances_from(source)
    }

    fn certified(&self, value: Option<Dist>) -> Certified<Option<Dist>> {
        Certified {
            value,
            alpha: self.alpha,
            beta: self.beta,
        }
    }

    /// Approximate distance between `u` and `v` under the certified pair.
    ///
    /// The first query from a source runs one Dijkstra on the emulator and
    /// caches the tree (bounded LRU); later queries from `u` *or toward* a
    /// cached source are lookups.
    pub fn distance(&self, u: VertexId, v: VertexId) -> Certified<Option<Dist>> {
        self.queries.set(self.queries.get() + 1);
        if u == v {
            return self.certified(Some(0));
        }
        {
            let mut cache = self.cache.borrow_mut();
            if let Some(tree) = cache.get(u) {
                let d = tree[v];
                return self.certified(d);
            }
            if let Some(tree) = cache.get(v) {
                let d = tree[u];
                return self.certified(d);
            }
        }
        let tree = self.sssp_tree(u);
        let answer = tree[v];
        self.cache.borrow_mut().insert(u, tree);
        self.certified(answer)
    }

    /// Batched queries: one answer per input pair, in input order, sharing
    /// SSSP trees across the batch.
    ///
    /// Pairs answered by an already-cached endpoint cost a lookup; the
    /// rest are oriented toward their most-frequent endpoint in the batch
    /// (ties toward the smaller id), grouped, and each distinct source
    /// costs exactly one Dijkstra. Answers are identical to issuing the
    /// queries one by one — shortest distances are unique.
    pub fn distances(&self, pairs: &[(VertexId, VertexId)]) -> Vec<Certified<Option<Dist>>> {
        self.queries.set(self.queries.get() + pairs.len() as u64);
        let mut answers: Vec<Option<Certified<Option<Dist>>>> = vec![None; pairs.len()];

        // Batch planning: frequency of each endpoint over the whole batch.
        let mut frequency: BTreeMap<VertexId, usize> = BTreeMap::new();
        for &(u, v) in pairs {
            if u != v {
                *frequency.entry(u).or_insert(0) += 1;
                *frequency.entry(v).or_insert(0) += 1;
            }
        }

        // Pass 1: identities and pairs served by an already-cached tree.
        let mut pending: BTreeMap<VertexId, Vec<(usize, VertexId)>> = BTreeMap::new();
        {
            let mut cache = self.cache.borrow_mut();
            for (idx, &(u, v)) in pairs.iter().enumerate() {
                if u == v {
                    answers[idx] = Some(self.certified(Some(0)));
                    continue;
                }
                if let Some(tree) = cache.get(u) {
                    let d = tree[v];
                    answers[idx] = Some(self.certified(d));
                    continue;
                }
                if let Some(tree) = cache.get(v) {
                    let d = tree[u];
                    answers[idx] = Some(self.certified(d));
                    continue;
                }
                // Orient toward the endpoint more useful to the batch.
                let (fu, fv) = (frequency[&u], frequency[&v]);
                let source = if fu > fv || (fu == fv && u < v) { u } else { v };
                let target = if source == u { v } else { u };
                pending.entry(source).or_default().push((idx, target));
            }
        }

        // Pass 2: one Dijkstra per distinct remaining source, ascending
        // source id (deterministic tree-build and eviction order).
        for (source, targets) in pending {
            let tree = self.sssp_tree(source);
            for (idx, target) in targets {
                answers[idx] = Some(self.certified(tree[target]));
            }
            self.cache.borrow_mut().insert(source, tree);
        }

        answers
            .into_iter()
            .map(|a| a.expect("every pair answered"))
            .collect()
    }

    /// O(#landmarks) approximate distance through the landmark index,
    /// certified at [`landmark_guarantee`](Self::landmark_guarantee).
    /// Falls back to [`distance`](Self::distance) (a stronger bound) when
    /// no landmark index was precomputed.
    pub fn approx_distance(&self, u: VertexId, v: VertexId) -> Certified<Option<Dist>> {
        let Some(index) = &self.landmarks else {
            return self.distance(u, v);
        };
        self.queries.set(self.queries.get() + 1);
        self.landmark_queries.set(self.landmark_queries.get() + 1);
        let (alpha, beta) = self.landmark_guarantee();
        Certified {
            value: index.estimate(u, v),
            alpha,
            beta,
        }
    }
}

impl BuildOutput {
    /// Consumes this build result into a [`QueryEngine`] (no emulator
    /// copy). The builder's
    /// [`query_engine`](crate::api::EmulatorBuilder::query_engine) is the
    /// fluent form.
    pub fn into_query_engine(self) -> QueryEngine {
        QueryEngine::new(self.emulator, self.algorithm, self.certified)
    }
}

/// A `(1+ε, β)`-approximate distance oracle over the centralized
/// construction — the historical convenience wrapper, now a thin shell
/// around [`QueryEngine`] (bounded deterministic LRU included).
///
/// # Example
///
/// ```
/// use usnae_core::oracle::ApproxDistanceOracle;
/// use usnae_graph::generators;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::gnp_connected(200, 0.05, 3)?;
/// let oracle = ApproxDistanceOracle::build(&g, 0.5, 4)?;
/// let (alpha, beta) = oracle.guarantee();
/// let d = oracle.query(0, 100).expect("connected");
/// assert!(d as f64 >= 1.0 && alpha >= 1.0 && beta >= 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ApproxDistanceOracle {
    engine: QueryEngine,
}

impl ApproxDistanceOracle {
    /// Builds the centralized emulator (Algorithm 1) and wraps it.
    ///
    /// # Errors
    ///
    /// Propagates [`ParamError`] from parameter validation.
    pub fn build(g: &Graph, epsilon: f64, kappa: u32) -> Result<Self, ParamError> {
        let params = CentralizedParams::new(epsilon, kappa)?;
        let (alpha, beta) = params.certified_stretch();
        let (emulator, _) = build_centralized(g, &params, ProcessingOrder::ById);
        Ok(Self::from_emulator(emulator, alpha, beta))
    }

    /// Wraps an existing emulator with its certified stretch pair.
    pub fn from_emulator(emulator: Emulator, alpha: f64, beta: f64) -> Self {
        ApproxDistanceOracle {
            engine: QueryEngine::new(emulator, "centralized", Some((alpha, beta))),
        }
    }

    /// Sets how many SSSP trees the cache retains before evicting.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.engine = self.engine.with_cache_capacity(capacity);
        self
    }

    /// The certified `(α, β)` guarantee of every answer.
    pub fn guarantee(&self) -> (f64, f64) {
        self.engine.guarantee()
    }

    /// The underlying emulator (oracles always build on the heap).
    pub fn emulator(&self) -> &Emulator {
        self.engine
            .emulator()
            .expect("oracle engines are heap-backed")
    }

    /// The engine answering this oracle's queries.
    pub fn engine(&self) -> &QueryEngine {
        &self.engine
    }

    /// Size of the structure answering queries (`|H|`).
    pub fn num_edges(&self) -> usize {
        self.engine.num_edges()
    }

    /// Approximate distance between `u` and `v` (`None` if disconnected).
    pub fn query(&self, u: VertexId, v: VertexId) -> Option<Dist> {
        self.engine.distance(u, v).value
    }

    /// Number of cached SSSP trees (diagnostics).
    pub fn cached_sources(&self) -> usize {
        self.engine.cached_sources()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Algorithm, BuildConfig, Emulator as ApiEmulator};
    use usnae_graph::distance::Apsp;
    use usnae_graph::generators;

    #[test]
    fn answers_match_emulator_distances() {
        let g = generators::gnp_connected(100, 0.07, 5).unwrap();
        let oracle = ApproxDistanceOracle::build(&g, 0.5, 4).unwrap();
        for (u, v) in usnae_graph::distance::sample_pairs(&g, 40, 3) {
            assert_eq!(oracle.query(u, v), oracle.emulator().distance(u, v));
        }
    }

    #[test]
    fn answers_respect_guarantee() {
        let g = generators::gnp_connected(120, 0.06, 7).unwrap();
        let oracle = ApproxDistanceOracle::build(&g, 0.5, 4).unwrap();
        let (alpha, beta) = oracle.guarantee();
        let apsp = Apsp::new(&g);
        for (u, v) in usnae_graph::distance::sample_pairs(&g, 60, 9) {
            let exact = apsp.distance(u, v).unwrap();
            let approx = oracle.query(u, v).unwrap();
            assert!(approx >= exact);
            assert!(approx as f64 <= alpha * exact as f64 + beta);
        }
    }

    #[test]
    fn identity_and_disconnected_queries() {
        let g = usnae_graph::Graph::from_edges(4, &[(0, 1)]).unwrap();
        let oracle = ApproxDistanceOracle::build(&g, 0.5, 2).unwrap();
        assert_eq!(oracle.query(2, 2), Some(0));
        assert_eq!(oracle.query(0, 3), None);
        assert_eq!(oracle.query(0, 1), Some(1));
    }

    #[test]
    fn caching_symmetric_and_bounded() {
        let g = generators::grid2d(8, 8).unwrap();
        let oracle = ApproxDistanceOracle::build(&g, 0.5, 3)
            .unwrap()
            .with_cache_capacity(2);
        let a = oracle.query(0, 63);
        assert_eq!(oracle.cached_sources(), 1);
        // Reverse direction answered from the cached tree of 0.
        let b = oracle.query(63, 0);
        assert_eq!(a, b);
        assert_eq!(oracle.cached_sources(), 1);
        oracle.query(5, 6);
        oracle.query(7, 8); // exceeds capacity: LRU-evicts the oldest tree
        assert_eq!(oracle.cached_sources(), 2, "bounded, not cleared");
    }

    #[test]
    fn lru_eviction_is_deterministic_and_bounded() {
        let mut cache = TreeCache::new(2);
        cache.insert(1, vec![Some(0)]);
        cache.insert(2, vec![Some(0)]);
        // Touch 1: now 2 is the LRU entry.
        assert!(cache.get(1).is_some());
        cache.insert(3, vec![Some(0)]);
        assert_eq!(cache.len(), 2);
        assert!(cache.peek(2).is_none(), "LRU entry evicted");
        assert_eq!(cache.sources().collect::<Vec<_>>(), vec![1, 3]);
        let (hits, misses, evictions) = cache.counters();
        assert_eq!((hits, evictions), (1, 1));
        assert_eq!(misses, 0);
        // Re-inserting an existing source refreshes, never grows.
        cache.insert(1, vec![Some(0)]);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.sources().collect::<Vec<_>>(), vec![3, 1]);
    }

    #[test]
    fn many_source_workload_stays_bounded() {
        let g = generators::gnp_connected(80, 0.08, 11).unwrap();
        let engine = ApiEmulator::builder(&g)
            .kappa(4)
            .query_engine()
            .unwrap()
            .with_cache_capacity(8);
        // 80 distinct sources — the old unbounded map would hold all 80.
        for u in 0..80 {
            engine.distance(u, (u + 13) % 80);
        }
        assert!(engine.cached_sources() <= 8);
        let stats = engine.stats();
        assert_eq!(stats.queries, 80);
        assert!(stats.evictions > 0, "the bound actually evicted");
    }

    #[test]
    fn batched_answers_equal_individual_answers() {
        let g = generators::gnp_connected(90, 0.07, 13).unwrap();
        let cfg = BuildConfig::default();
        let out = Algorithm::Centralized
            .construction()
            .build(&g, &cfg)
            .unwrap();
        let batch_engine = QueryEngine::from_output(&out);
        let single_engine = QueryEngine::from_output(&out).with_cache_capacity(1);
        let pairs = usnae_graph::distance::sample_pairs(&g, 60, 5);
        let batched = batch_engine.distances(&pairs);
        for (i, &(u, v)) in pairs.iter().enumerate() {
            assert_eq!(batched[i].value, single_engine.distance(u, v).value);
        }
        // The batch shared trees: strictly fewer Dijkstras than queries.
        assert!(batch_engine.stats().tree_builds < pairs.len() as u64);
    }

    #[test]
    fn batch_shares_trees_across_a_hub() {
        let g = generators::grid2d(7, 7).unwrap();
        let engine = ApiEmulator::builder(&g).kappa(3).query_engine().unwrap();
        // 10 queries all touching vertex 0: one tree suffices.
        let pairs: Vec<(usize, usize)> = (1..11).map(|v| (v, 0)).collect();
        let answers = engine.distances(&pairs);
        assert!(answers.iter().all(|a| a.value.is_some()));
        assert_eq!(engine.stats().tree_builds, 1, "hub tree shared");
    }

    #[test]
    fn landmark_index_is_deterministic_and_certified() {
        let g = generators::gnp_connected(100, 0.08, 17).unwrap();
        let out = Algorithm::Centralized
            .construction()
            .build(&g, &BuildConfig::default())
            .unwrap();
        let e1 = QueryEngine::from_output(&out).with_landmarks(8);
        let e2 = QueryEngine::from_output(&out).with_landmarks(8);
        assert_eq!(
            e1.landmark_index().unwrap().landmarks(),
            e2.landmark_index().unwrap().landmarks(),
            "landmark choice is deterministic"
        );
        let (la, lb) = e1.landmark_guarantee();
        let (a, b) = e1.guarantee();
        assert_eq!(la, a);
        assert!(lb >= b, "landmark bound is the exact bound plus 2R");
        let apsp = Apsp::new(&g);
        for (u, v) in usnae_graph::distance::sample_pairs(&g, 50, 23) {
            let exact = apsp.distance(u, v);
            let approx = e1.approx_distance(u, v);
            assert!(
                approx.holds_against(exact),
                "({u},{v}): {approx:?} vs {exact:?}"
            );
            // The landmark answer never undershoots the exact engine path.
            assert!(approx.value.unwrap() >= e1.distance(u, v).value.unwrap());
        }
        assert!(e1.stats().landmark_queries > 0);
    }

    #[test]
    fn landmarkless_approx_falls_back_to_exact() {
        let g = generators::grid2d(5, 5).unwrap();
        let engine = ApiEmulator::builder(&g).kappa(3).query_engine().unwrap();
        assert!(engine.landmark_index().is_none());
        assert_eq!(
            engine.approx_distance(0, 24).value,
            engine.distance(0, 24).value
        );
        assert_eq!(engine.landmark_guarantee(), engine.guarantee());
    }

    #[test]
    fn certified_holds_against_semantics() {
        let c = Certified {
            value: Some(10u64),
            alpha: 1.5,
            beta: 4.0,
        };
        assert!(c.holds_against(Some(10)));
        assert!(c.holds_against(Some(7))); // 1.5*7+4 = 14.5 >= 10 >= 7
        assert!(!c.holds_against(Some(11))); // undershoots the exact distance
        assert!(!c.holds_against(Some(3))); // 1.5*3+4 = 8.5 < 10
        assert!(!c.holds_against(None));
        let unreachable = Certified {
            value: None,
            alpha: 1.5,
            beta: 4.0,
        };
        assert!(unreachable.holds_against(None));
        assert!(!unreachable.holds_against(Some(2)));
        let uncertified = Certified {
            value: None,
            alpha: 1.0,
            beta: f64::INFINITY,
        };
        assert!(
            uncertified.holds_against(Some(2)),
            "no upper bound certified"
        );
    }

    #[test]
    fn engine_over_uncertified_output_still_lower_bounds() {
        let g = generators::gnp_connected(60, 0.1, 7).unwrap();
        let h = Emulator::from_provenance(
            60,
            Algorithm::Centralized
                .construction()
                .build(&g, &BuildConfig::default())
                .unwrap()
                .emulator
                .provenance()
                .to_vec(),
        );
        let engine = QueryEngine::new(h, "anonymous", None);
        let (alpha, beta) = engine.guarantee();
        assert_eq!(alpha, 1.0);
        assert!(beta.is_infinite());
        let apsp = Apsp::new(&g);
        for (u, v) in usnae_graph::distance::sample_pairs(&g, 30, 3) {
            assert!(engine.distance(u, v).holds_against(apsp.distance(u, v)));
        }
    }
}
