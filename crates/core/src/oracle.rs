//! Approximate distance oracle on top of an emulator.
//!
//! The paper motivates near-additive emulators through approximate
//! shortest-path computation: answering `d(u, v)` queries from a structure
//! with `n + o(n)` edges instead of the full graph. This module packages an
//! emulator with its certified `(α, β)` guarantee and a per-source SSSP
//! cache, so repeated queries amortize to a lookup.

use crate::centralized::{build_centralized, ProcessingOrder};
use crate::emulator::Emulator;
use crate::error::ParamError;
use crate::params::CentralizedParams;
use std::collections::HashMap;
use usnae_graph::{Dist, Graph, VertexId};

/// A `(1+ε, β)`-approximate distance oracle.
///
/// Every answer `d̂` satisfies `d_G(u,v) ≤ d̂ ≤ α·d_G(u,v) + β` where
/// `(α, β)` is the certified stretch of the underlying emulator.
///
/// # Example
///
/// ```
/// use usnae_core::oracle::ApproxDistanceOracle;
/// use usnae_graph::generators;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::gnp_connected(200, 0.05, 3)?;
/// let oracle = ApproxDistanceOracle::build(&g, 0.5, 4)?;
/// let (alpha, beta) = oracle.guarantee();
/// let d = oracle.query(0, 100).expect("connected");
/// assert!(d as f64 >= 1.0 && alpha >= 1.0 && beta >= 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ApproxDistanceOracle {
    emulator: Emulator,
    alpha: f64,
    beta: f64,
    cache: std::cell::RefCell<HashMap<VertexId, Vec<Option<Dist>>>>,
    cache_capacity: usize,
}

impl ApproxDistanceOracle {
    /// Builds the centralized emulator (Algorithm 1) and wraps it.
    ///
    /// # Errors
    ///
    /// Propagates [`ParamError`] from parameter validation.
    pub fn build(g: &Graph, epsilon: f64, kappa: u32) -> Result<Self, ParamError> {
        let params = CentralizedParams::new(epsilon, kappa)?;
        let (alpha, beta) = params.certified_stretch();
        let (emulator, _) = build_centralized(g, &params, ProcessingOrder::ById);
        Ok(Self::from_emulator(emulator, alpha, beta))
    }

    /// Wraps an existing emulator with its certified stretch pair.
    pub fn from_emulator(emulator: Emulator, alpha: f64, beta: f64) -> Self {
        ApproxDistanceOracle {
            emulator,
            alpha,
            beta,
            cache: std::cell::RefCell::new(HashMap::new()),
            cache_capacity: 64,
        }
    }

    /// Sets how many SSSP trees the cache retains before being cleared.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity.max(1);
        self
    }

    /// The certified `(α, β)` guarantee of every answer.
    pub fn guarantee(&self) -> (f64, f64) {
        (self.alpha, self.beta)
    }

    /// The underlying emulator.
    pub fn emulator(&self) -> &Emulator {
        &self.emulator
    }

    /// Size of the structure answering queries (`|H|`).
    pub fn num_edges(&self) -> usize {
        self.emulator.num_edges()
    }

    /// Approximate distance between `u` and `v` (`None` if disconnected).
    ///
    /// The first query from a source runs one Dijkstra on the emulator and
    /// caches the tree; subsequent queries from `u` *or toward* a cached
    /// source are lookups.
    pub fn query(&self, u: VertexId, v: VertexId) -> Option<Dist> {
        if u == v {
            return Some(0);
        }
        {
            let cache = self.cache.borrow();
            if let Some(tree) = cache.get(&u) {
                return tree[v];
            }
            if let Some(tree) = cache.get(&v) {
                return tree[u];
            }
        }
        let tree = self.emulator.distances_from(u);
        let answer = tree[v];
        let mut cache = self.cache.borrow_mut();
        if cache.len() >= self.cache_capacity {
            cache.clear();
        }
        cache.insert(u, tree);
        answer
    }

    /// Number of cached SSSP trees (diagnostics).
    pub fn cached_sources(&self) -> usize {
        self.cache.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usnae_graph::distance::Apsp;
    use usnae_graph::generators;

    #[test]
    fn answers_match_emulator_distances() {
        let g = generators::gnp_connected(100, 0.07, 5).unwrap();
        let oracle = ApproxDistanceOracle::build(&g, 0.5, 4).unwrap();
        for (u, v) in usnae_graph::distance::sample_pairs(&g, 40, 3) {
            assert_eq!(oracle.query(u, v), oracle.emulator().distance(u, v));
        }
    }

    #[test]
    fn answers_respect_guarantee() {
        let g = generators::gnp_connected(120, 0.06, 7).unwrap();
        let oracle = ApproxDistanceOracle::build(&g, 0.5, 4).unwrap();
        let (alpha, beta) = oracle.guarantee();
        let apsp = Apsp::new(&g);
        for (u, v) in usnae_graph::distance::sample_pairs(&g, 60, 9) {
            let exact = apsp.distance(u, v).unwrap();
            let approx = oracle.query(u, v).unwrap();
            assert!(approx >= exact);
            assert!(approx as f64 <= alpha * exact as f64 + beta);
        }
    }

    #[test]
    fn identity_and_disconnected_queries() {
        let g = usnae_graph::Graph::from_edges(4, &[(0, 1)]).unwrap();
        let oracle = ApproxDistanceOracle::build(&g, 0.5, 2).unwrap();
        assert_eq!(oracle.query(2, 2), Some(0));
        assert_eq!(oracle.query(0, 3), None);
        assert_eq!(oracle.query(0, 1), Some(1));
    }

    #[test]
    fn caching_symmetric_and_bounded() {
        let g = generators::grid2d(8, 8).unwrap();
        let oracle = ApproxDistanceOracle::build(&g, 0.5, 3)
            .unwrap()
            .with_cache_capacity(2);
        let a = oracle.query(0, 63);
        assert_eq!(oracle.cached_sources(), 1);
        // Reverse direction answered from the cached tree of 0.
        let b = oracle.query(63, 0);
        assert_eq!(a, b);
        assert_eq!(oracle.cached_sources(), 1);
        oracle.query(5, 6);
        oracle.query(7, 8); // exceeds capacity: cache cleared then refilled
        assert!(oracle.cached_sources() <= 2);
    }
}
